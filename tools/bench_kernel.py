#!/usr/bin/env python
"""Kernel benchmark harness: the repo's perf trajectory.

Runs canonical paper workload cells (the fig4 configuration: workload A,
20 servers, 30 clients, replication disabled) through the real
``run_experiment`` path and measures **kernel events per wall-clock
second** — the unit every optimization PR must move, committed to
``BENCH_kernel.json`` so regressions are visible in CI.

Three modes:

* ``--update`` appends a labelled entry to ``BENCH_kernel.json``;
* ``--check`` re-runs the benches and fails (exit 1) if events/sec fell
  below ``tolerance × baseline`` for the same bench+scale (wall time is
  machine-dependent, so the committed baseline is only a floor with a
  generous default tolerance);
* ``--profile-json`` additionally runs the first bench under cProfile
  and dumps the per-function rows as JSON — the hot-set input for the
  profile-guided lint rules (``python -m repro.analyze --perf``).

Determinism note: the benches measure *wall time only*.  Simulated
results are pinned separately by the determinism digests
(``tests/analyze/test_determinism.py``); this harness asserts the op
count so a silently-shrunk workload cannot fake a speedup.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_kernel.json")
SCHEMA = 1

# Canonical cells.  ``fig4`` is the paper's Fig. 4a workload-A column
# (the most contended cell: 50 % updates through the log-append lock);
# ``fig4_debug`` is the same cell with the runtime sanitizers attached,
# tracking the cost of ``Simulator(debug=True)``.  ``fig4_sweep`` runs
# the same cell across seeds through the parallel sweep runner
# (repro.experiments.sweep) — aggregate events/sec over all workers, so
# it tracks the multi-process speedup on top of the kernel's.
# ``fig_index`` is the secondary-index cell: the lookup-heavy mix over
# a 2-indexlet index, exercising the Search fan-out and the index
# maintenance on the write path.
BENCHES = ("fig4", "fig4_debug", "fig4_sweep", "fig_index")


def _build_spec(servers: int, clients: int, ops: Optional[int],
                scale_name: str, indexed: bool = False):
    from repro.cluster import ClusterSpec, ExperimentSpec
    from repro.experiments.scale import _SCALES
    from repro.ramcloud.config import ServerConfig
    from repro.ycsb.workload import WORKLOAD_A, WORKLOAD_LOOKUP_HEAVY

    scale = _SCALES[scale_name]
    base = WORKLOAD_LOOKUP_HEAVY if indexed else WORKLOAD_A
    workload = base.scaled(num_records=scale.num_records,
                           ops_per_client=scale.ops_per_client)
    if ops is not None:
        workload = workload.scaled(num_records=scale.num_records,
                                   ops_per_client=ops)
    return ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=clients, seed=1,
            server_config=ServerConfig(replication_factor=0)),
        workload=workload,
    )


def run_bench(name: str, scale: str, servers: int, clients: int,
              ops: Optional[int]) -> Dict[str, float]:
    """Run one bench cell and return its measurement row."""
    from repro.cluster import run_experiment

    debug = name.endswith("_debug")
    spec = _build_spec(servers, clients, ops, scale,
                       indexed=name == "fig_index")
    previous = os.environ.get("REPRO_SIM_DEBUG")  # simlint: disable=DET002 bench harness pins+restores the knob like the sweep does
    os.environ["REPRO_SIM_DEBUG"] = "1" if debug else "0"  # simlint: disable=DET002 bench harness pins+restores the knob like the sweep does
    try:
        # The wall clock is the measurand here, not simulation state.
        start = time.perf_counter()  # simlint: disable=SIM003 benchmarking wall time
        result = run_experiment(spec)
        wall = time.perf_counter() - start  # simlint: disable=SIM003 benchmarking wall time
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_DEBUG", None)  # simlint: disable=DET002 restoring the snapshot taken above
        else:
            os.environ["REPRO_SIM_DEBUG"] = previous  # simlint: disable=DET002 restoring the snapshot taken above
    expected = spec.workload.ops_per_client * clients
    if result.total_ops + result.client_errors < expected:
        raise RuntimeError(
            f"{name}: completed {result.total_ops} + {result.client_errors} "
            f"errors < expected {expected} ops — bench workload shrank")
    return {
        "bench": name,
        "scale": scale,
        "servers": servers,
        "clients": clients,
        "ops": result.total_ops,
        "events": result.sim_events,
        "wall_s": round(wall, 4),
        "events_per_s": round(result.sim_events / wall, 1),
    }


def run_sweep_bench(scale: str, servers: int, clients: int,
                    ops: Optional[int], seeds: int = 4,
                    workers: Optional[int] = None) -> Dict[str, float]:
    """Run the fig4 cell across ``seeds`` seeds through the parallel
    sweep runner; events/sec is the aggregate over every worker."""
    from repro.experiments.scale import _SCALES
    from repro.experiments.sweep import run_sweep
    from repro.experiments.workloads import fig4_sweep_plan

    sc = _SCALES[scale]
    if ops is not None:
        sc = sc.with_(ops_per_client=ops)
    plan = fig4_sweep_plan(sc, seeds=tuple(range(1, seeds + 1)),
                           client_counts=(clients,), servers=servers,
                           workload_names=("A",))
    previous = os.environ.get("REPRO_SIM_DEBUG")  # simlint: disable=DET002 bench harness pins+restores the knob like the sweep does
    os.environ["REPRO_SIM_DEBUG"] = "0"  # simlint: disable=DET002 bench harness pins+restores the knob like the sweep does
    try:
        # The wall clock is the measurand here, not simulation state.
        start = time.perf_counter()  # simlint: disable=SIM003 benchmarking wall time
        report = run_sweep(plan, workers=workers, retries=0)
        wall = time.perf_counter() - start  # simlint: disable=SIM003 benchmarking wall time
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_DEBUG", None)  # simlint: disable=DET002 restoring the snapshot taken above
        else:
            os.environ["REPRO_SIM_DEBUG"] = previous  # simlint: disable=DET002 restoring the snapshot taken above
    failed = report.failed()
    if failed:
        raise RuntimeError(f"fig4_sweep: {len(failed)} cells failed")
    events = sum(r.outcome.events for r in report.results)
    total_ops = sum(r.outcome.ops for r in report.results)
    errors = sum(int(r.outcome.metrics["client_errors"])
                 for r in report.results)
    expected = sc.ops_per_client * clients * seeds
    if total_ops + errors < expected:
        raise RuntimeError(
            f"fig4_sweep: completed {total_ops} + {errors} errors < "
            f"expected {expected} ops — bench workload shrank")
    return {
        "bench": "fig4_sweep",
        "scale": scale,
        "servers": servers,
        "clients": clients,
        "seeds": seeds,
        "workers": report.workers,
        "ops": total_ops,
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall, 1),
    }


def profile_bench(name: str, scale: str, servers: int, clients: int,
                  ops: Optional[int], out_path: str,
                  top: int = 120) -> None:
    """Run one bench under cProfile and dump the hot rows as JSON.

    Rows are ordered by ``tottime`` (self time) — the quantity the
    PERF rules care about — and carry enough identity (path, function
    name, first line) for :mod:`repro.analyze.profilehot` to map them
    back onto source files.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_bench(name, scale, servers, clients, ops)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    total_tt = 0.0
    rows: List[Dict] = []
    for (path, line, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        total_tt += tt
        if path.startswith("<") or func.startswith("<module>"):
            continue
        rows.append({
            "path": path.replace(os.sep, "/"),
            "func": func,
            "line": line,
            "ncalls": nc,
            "tottime": round(tt, 6),
            "cumtime": round(ct, 6),
        })
    rows.sort(key=lambda r: (-r["tottime"], r["path"], r["line"]))
    payload = {
        "schema": SCHEMA,
        "bench": name,
        "scale": scale,
        "total_tottime": round(total_tt, 6),
        "total_calls": stats.total_calls,
        "rows": rows[:top],
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"wrote profile ({len(payload['rows'])} rows) to {out_path}")


# -- the committed trajectory -----------------------------------------


def load_baseline(path: str = BENCH_JSON) -> Dict:
    if not os.path.exists(path):
        return {"schema": SCHEMA, "entries": []}
    with open(path) as fh:
        return json.load(fh)


def latest_row(baseline: Dict, bench: str, scale: str) -> Optional[Dict]:
    """The most recent committed measurement for one bench+scale cell."""
    for entry in reversed(baseline.get("entries", [])):
        for row in entry.get("rows", []):
            if row["bench"] == bench and row["scale"] == scale:
                return row
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_kernel",
        description="measure kernel events/sec on canonical fig workloads")
    parser.add_argument("--scale", default="default",
                        choices=("smoke", "default", "full"))
    parser.add_argument("--bench", action="append", choices=BENCHES,
                        help="bench cell(s) to run (default: all)")
    parser.add_argument("--servers", type=int, default=20)
    parser.add_argument("--clients", type=int, default=30)
    parser.add_argument("--ops", type=int, default=None,
                        help="override ops per client (tests only)")
    parser.add_argument("--sweep-seeds", type=int, default=4,
                        help="seeds for the fig4_sweep bench (default 4)")
    parser.add_argument("--sweep-workers", type=int, default=None,
                        help="workers for the fig4_sweep bench "
                             "(default: min(cells, cpus))")
    parser.add_argument("--profile-json", metavar="PATH",
                        help="also profile the first bench, dump hot rows")
    parser.add_argument("--update", metavar="LABEL",
                        help="append a labelled entry to BENCH_kernel.json")
    parser.add_argument("--check", action="store_true",
                        help="fail if events/sec regressed vs the baseline")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="--check floor as a fraction of baseline "
                             "(default 0.5: fail below half baseline speed)")
    parser.add_argument("--json", default=BENCH_JSON,
                        help="trajectory file (default: repo BENCH_kernel.json)")
    args = parser.parse_args(argv)

    # fig4_sweep is opt-in (it multiplies the workload by the seed
    # count); the default set stays the single-process cells.
    benches = args.bench or [b for b in BENCHES if b != "fig4_sweep"]
    rows = []
    for name in benches:
        if name == "fig4_sweep":
            row = run_sweep_bench(args.scale, args.servers, args.clients,
                                  args.ops, seeds=args.sweep_seeds,
                                  workers=args.sweep_workers)
        else:
            row = run_bench(name, args.scale, args.servers, args.clients,
                            args.ops)
        rows.append(row)
        print(f"{name:12s} scale={args.scale:8s} events={row['events']:>9d} "
              f"wall={row['wall_s']:8.3f}s  "
              f"events/s={row['events_per_s']:>10.0f}")

    if args.profile_json:
        # cProfile can't see into sweep workers; profile the equivalent
        # single-process cell instead.
        profiled = next((b for b in benches if b != "fig4_sweep"), "fig4")
        profile_bench(profiled, args.scale, args.servers, args.clients,
                      args.ops, args.profile_json)

    status = 0
    if args.check:
        baseline = load_baseline(args.json)
        for row in rows:
            base = latest_row(baseline, row["bench"], row["scale"])
            if base is None:
                print(f"{row['bench']}: no baseline for scale "
                      f"{row['scale']!r}, skipping check")
                continue
            floor = args.tolerance * base["events_per_s"]
            verdict = "ok" if row["events_per_s"] >= floor else "REGRESSED"
            print(f"{row['bench']}: {row['events_per_s']:.0f} ev/s vs "
                  f"baseline {base['events_per_s']:.0f} "
                  f"(floor {floor:.0f}) — {verdict}")
            if row["events_per_s"] < floor:
                status = 1

    if args.update is not None:
        baseline = load_baseline(args.json)
        baseline["schema"] = SCHEMA
        baseline.setdefault("entries", []).append(
            {"label": args.update, "rows": rows})
        with open(args.json, "w") as fh:
            json.dump(baseline, fh, indent=1)
            fh.write("\n")
        print(f"appended entry {args.update!r} to {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(main())
