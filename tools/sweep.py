#!/usr/bin/env python
"""Parallel multi-seed sweep CLI (ROADMAP item 1; docs/BENCH.md).

Fans one worker process per (experiment, config-point, seed) cell,
streams per-cell determinism digests as they complete, and prints the
merged aggregate statistics — bit-identical to what the serial runners
compute for the same cells.

Examples:

    python tools/sweep.py --experiment fig4 --seeds 8
    python tools/sweep.py --experiment fig11 --scale full --json out.json
    python tools/sweep.py --experiment fig4 --seeds 2 --scale smoke \\
        --serial-check 2          # CI: prove parallel == serial

``--serial-check K`` reruns K completed cells in-process and exits 2 if
any digest differs from the worker's — the guarantee that parallelism
can never silently fork behaviour.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def main(argv: Optional[List[str]] = None) -> int:
    from repro.experiments.scale import _SCALES
    from repro.experiments.sweep import (
        SerialEquivalenceError,
        list_experiments,
        plan_for,
        run_sweep,
        write_report,
    )

    parser = argparse.ArgumentParser(
        prog="sweep",
        description="parallel multi-seed experiment sweeps with "
                    "serial-equivalence digests")
    parser.add_argument("--experiment", default="fig4",
                        help="registered experiment (see --list); "
                             "default fig4")
    parser.add_argument("--seeds", type=int, default=4, metavar="N",
                        help="sweep seeds 1..N (default 4)")
    parser.add_argument("--seed-list", metavar="S1,S2,…",
                        help="explicit seeds (overrides --seeds)")
    parser.add_argument("--scale", default="default",
                        choices=("smoke", "default", "full"))
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: min(cells, cpus))")
    parser.add_argument("--serial", action="store_true",
                        help="run the serial reference path instead")
    parser.add_argument("--serial-check", type=int, default=0, metavar="K",
                        help="rerun K cells in-process and assert "
                             "digest equality (exit 2 on mismatch)")
    parser.add_argument("--retries", type=int, default=1,
                        help="retries per cell after a worker crash "
                             "(default 1)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the merged report as JSON")
    parser.add_argument("--list", action="store_true",
                        help="list registered experiments and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in list_experiments():
            print(name)
        return 0

    if args.seed_list:
        seeds = tuple(int(s) for s in args.seed_list.split(","))
    else:
        seeds = tuple(range(1, args.seeds + 1))
    plan = plan_for(args.experiment, _SCALES[args.scale], seeds=seeds)
    cells = plan.cells()
    mode = "serial" if args.serial else "parallel"
    print(f"sweep {plan.experiment}: {len(plan.points)} points x "
          f"{len(plan.seeds)} seeds = {len(cells)} cells "
          f"({mode}, scale={args.scale})")

    done = [0]

    def on_cell(result):
        done[0] += 1
        cell = result.cell
        if result.ok:
            print(f"  [{done[0]:>3d}/{len(cells)}] {cell.point.label} / "
                  f"seed {cell.seed}  digest={result.outcome.digest[:16]}  "
                  f"(attempt {result.attempts})", flush=True)
        else:
            print(f"  [{done[0]:>3d}/{len(cells)}] {cell.point.label} / "
                  f"seed {cell.seed}  FAILED after {result.attempts} "
                  f"attempts: {result.error}", flush=True)

    # Wall clock is the measurand of the parallel speedup, nothing else.
    start = time.perf_counter()  # simlint: disable=SIM003 wall-clock report
    try:
        report = run_sweep(plan, parallel=not args.serial,
                           workers=args.workers, retries=args.retries,
                           serial_check=args.serial_check, on_cell=on_cell)
    except SerialEquivalenceError as exc:
        print(f"SERIAL-EQUIVALENCE FAILURE: {exc}", file=sys.stderr)
        return 2
    wall = time.perf_counter() - start  # simlint: disable=SIM003 wall-clock report

    print(f"\nmerged aggregates ({len(plan.seeds)} seeds per point):")
    for label, metrics in report.aggregates().items():
        throughput = metrics.get("throughput")
        parts = []
        if throughput is not None:
            parts.append(f"throughput {throughput.mean / 1000.0:8.1f}K "
                         f"±{throughput.stddev / 1000.0:.1f}")
        for key in ("avg_power_per_server", "energy_efficiency",
                    "recovery_time"):
            agg = metrics.get(key)
            if agg is not None:
                parts.append(f"{key} {agg.mean:.2f}")
        print(f"  {label:40s} {'  '.join(parts)}")

    failed = report.failed()
    checked = (f", serial-checked {len(report.serial_checked)} cells: ok"
               if report.serial_checked else "")
    print(f"\n{len(cells) - len(failed)}/{len(cells)} cells ok in "
          f"{wall:.1f}s ({report.workers} workers{checked})")
    print(f"merged digest: {report.merged_digest()}")
    if args.json:
        write_report(report, args.json)
        print(f"wrote {args.json}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
