"""Fig. 13 — client-side request throttling (§IX).

Rate-limited clients (200 and 500 req/s) against 10 servers at RF 2:
aggregated throughput grows linearly with the client count because the
cluster is never pushed into the timeout regime.
"""

from repro.experiments.throttling import run_fig13_throttling


def test_fig13_throttled_linear_scaling(run_once, scale):
    table = run_once(run_fig13_throttling, scale)
    ops = {r.label: r.measured for r in table.rows}

    for rate in (200, 500):
        series = [ops[f"rate {rate}/s / {c} clients"] for c in (10, 30, 60)]
        # Linear in the client count (±15 %).
        assert series[1] > 2.5 * series[0]
        assert series[2] > 1.7 * series[1]
        # And pinned to the configured rate.
        assert abs(series[0] - rate * 10) < 0.15 * rate * 10
    # 500 req/s clients deliver 2.5x the 200 req/s clients.
    assert (ops["rate 500/s / 60 clients"]
            > 2.0 * ops["rate 200/s / 60 clients"])
