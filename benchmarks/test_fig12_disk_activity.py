"""Fig. 12 — aggregate disk activity during recovery (§VII).

A read burst (backups streaming the lost segments off their disks)
followed by a larger, overlapping write burst (re-replication of the
replayed data) — the overlap is the head contention the paper blames
for slow small-cluster recovery.
"""

from repro.experiments.recovery import run_fig12_disk_activity


def test_fig12_disk_activity(run_once, scale):
    table, result = run_once(run_fig12_disk_activity, scale)
    rows = {r.label: r.measured for r in table.rows}

    assert rows["peak aggregate read"] > 0.0
    assert rows["peak aggregate write"] > 0.0
    # Writes dominate reads in volume: RF copies are written for every
    # byte read (paper's dark-green overlap region).
    assert rows["write/read volume ratio"] > 1.5
    assert rows["seconds with overlapping read+write"] >= 1.0
    # No disk traffic before the kill (the cluster idles).
    pre = [v for t, v in result.disk_write_mbps.items()
           if t < result.spec.kill_at]
    assert max(pre, default=0.0) == 0.0
