"""Fig. 10 — per-operation latency around a crash (§VII).

Two clients run read-only against the same cluster; one requests only
the data held by the (deliberately chosen) victim, the other only live
data.  Paper: the lost-data client blocks for the whole recovery
(≈40 s at RF 4); the live-data client sees 1.4–2.4x average latency
during recovery.
"""

from repro.experiments.recovery import run_fig10_latency_crash


def test_fig10_latency_during_crash(run_once, scale):
    table, result = run_once(run_fig10_latency_crash, scale)
    rows = {r.label: r.measured for r in table.rows}

    # The lost-data client's worst op lasted essentially the recovery.
    blocked = rows["lost-data client blocked for"]
    assert blocked > 0.5 * result.recovery_time
    # The live-data client slowed down but stayed in the microsecond
    # regime (its worst op is orders of magnitude below the outage).
    slowdown = rows.get("live-data slowdown during recovery")
    assert slowdown is not None and slowdown > 1.1
    assert rows["live-data client latency during recovery"] < 1e6  # < 1 s
