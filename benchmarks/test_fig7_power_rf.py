"""Fig. 7 — average power per node vs replication factor (§VI).

40 servers at 60 clients: replication work (send CPU at masters, buffer
CPU at backups, flush I/O) raises every node's draw from ≈103 W at RF1
toward ≈115 W at RF4.
"""

from repro.experiments.replication import run_fig7_power_rf


def test_fig7_power_vs_rf(run_once, scale):
    table = run_once(run_fig7_power_rf, scale)
    watts = [r.measured for r in table.rows]

    # Inside the paper's 103–115 W band (±10 W).
    assert all(93.0 < w < 125.0 for w in watts)
    # Known deviation (EXPERIMENTS.md): the paper's +12 W slope over RF
    # is much weaker here (≈flat): replication adds per-op work, but the
    # throughput drop it causes sheds almost as much load per node.  We
    # require only that RF 4 does not draw meaningfully LESS than RF 1.
    assert watts[-1] > watts[0] - 4.0
