"""Fig. 2 — energy efficiency of the read-only grid (§IV).

Finding 1's energy half: efficiency is highest with a single server and
many clients; adding servers without adding load wastes joules (the
paper measures a 7.6x gap between 1 and 10 servers at 30 clients).
"""

from repro.experiments.peak import run_fig2_efficiency


def test_fig2_energy_efficiency(run_once, scale):
    table = run_once(run_fig2_efficiency, scale)
    eff = {r.label: r.measured for r in table.rows}

    # Efficiency rises with load for a fixed cluster...
    assert (eff["1 servers / 30 clients"] > eff["1 servers / 10 clients"]
            > eff["1 servers / 1 clients"])
    # ...and falls as servers are added at fixed load.
    assert (eff["1 servers / 30 clients"] > eff["5 servers / 30 clients"]
            > eff["10 servers / 30 clients"])
    # The paper's 7.6x headline ratio, loosely.
    ratio = eff["1 servers / 30 clients"] / eff["10 servers / 30 clients"]
    assert 2.0 < ratio < 20.0
