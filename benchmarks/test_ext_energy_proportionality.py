"""§X extension — energy proportionality under adaptive power management.

The paper's negative result (Figs. 1–4, Table I): a busy-polling
dispatch core pins an idle 4-core server at 25 % CPU and ≈75 W, so the
cluster is nowhere near energy-proportional.  This benchmark sweeps the
repro.powermgmt governors (docs/POWER.md) over an idle→peak load curve
and checks what each knob buys — and what it costs in tail latency —
plus the cluster-level power cap built on the Fig. 13 throttling path.
"""

import pytest

from repro.experiments.energy_proportionality import (
    PAPER_IDLE_CPU,
    PAPER_IDLE_WATTS,
    run_energy_proportionality,
    run_power_cap,
)


def test_energy_proportionality_sweep(run_once, scale):
    table, result = run_once(run_energy_proportionality, scale)

    static_idle = result.point("static", 0.0)
    static_peak = result.point("static", 1.0)
    adaptive_idle = result.point("poll-adaptive", 0.0)
    adaptive_peak = result.point("poll-adaptive", 1.0)

    # The static arm IS the paper's machine: the idle row reproduces
    # Table I row 0 through the power model's calibration anchors.
    assert static_idle.cpu_pct == pytest.approx(PAPER_IDLE_CPU, abs=0.5)
    assert static_idle.watts_per_server == pytest.approx(PAPER_IDLE_WATTS,
                                                         rel=0.01)
    # ... and never exercises a single power knob (strictly opt-in).
    for point in result.by_governor("static"):
        assert point.dispatch_sleeps == 0
        assert point.core_parks == 0

    # poll-adaptive collapses the idle floor: the dispatch thread blocks
    # instead of busy-polling (25 % CPU → ~0) and idle watts drop
    # measurably below the 57.5 + 0.69·25 baseline.
    assert adaptive_idle.cpu_pct < 2.0
    assert adaptive_idle.watts_per_server < PAPER_IDLE_WATTS - 5.0
    assert adaptive_idle.dispatch_sleeps > 0

    # Peak throughput survives the governor: within 5 % of busy-poll.
    assert adaptive_peak.throughput >= 0.95 * static_peak.throughput

    # The price: wake latency is visible in the light-load p99.
    light = min(p.load_fraction for p in result.points
                if p.load_fraction > 0.0)
    static_light = result.point("static", light)
    adaptive_light = result.point("poll-adaptive", light)
    assert adaptive_light.core_parks > 0
    assert adaptive_light.p99_latency > 1.5 * static_light.p99_latency

    # Both managed governors beat the paper's flat curve on the
    # proportionality index.
    assert result.ep_index["poll-adaptive"] > result.ep_index["static"]
    assert result.ep_index["ondemand"] > result.ep_index["static"]
    # ondemand's DVFS also undercuts the static idle floor (the
    # dispatch core still polls, but at the lowest P-state).
    ondemand_idle = result.point("ondemand", 0.0)
    assert ondemand_idle.watts_per_server < PAPER_IDLE_WATTS - 5.0


def test_energy_report_deterministic(scale):
    # Acceptance: same seed → same digest, covering >= 3 governors.  A
    # compact sweep keeps the rerun affordable.
    kwargs = dict(servers=2, clients=3, fractions=(0.5,))
    _table, first = run_energy_proportionality(scale, **kwargs)
    _table, second = run_energy_proportionality(scale, **kwargs)
    assert len(first.ep_index) >= 3
    assert first.digest() == second.digest()
    # Guard the digest: a different seed must actually diverge.
    _table, other = run_energy_proportionality(scale, seed=2, **kwargs)
    assert other.digest() != first.digest()


def test_power_cap_held(run_once, scale):
    _table, result = run_once(run_power_cap, scale)
    # Demand alone would blow the budget...
    assert result.uncapped_watts > result.cap_watts + 10.0
    # ...but the controller holds the fleet inside the hysteresis band
    # (its own measurement, the signal it regulates on).
    assert result.held
    assert result.settled_mean_watts == pytest.approx(result.cap_watts,
                                                      abs=10.0)
    # The cap engaged the admission throttle at a finite rate, and the
    # cluster still made forward progress.
    assert result.admitted_rate != float("inf")
    assert result.throughput > 0
