"""Fig. 9a/9b — CPU and power timeline around a crash (§VII).

10 idle servers with RF 4; a random server is killed.  The paper
measures: idle 25 % CPU (the polling core), a jump to ≈92 % cluster
CPU during recovery, and ≈8 % extra power per node.
"""

from repro.experiments.recovery import run_fig9_crash_timeline


def test_fig9_crash_timeline(run_once, scale):
    table, result = run_once(run_fig9_crash_timeline, scale)
    rows = {r.label: r.measured for r in table.rows}

    assert abs(rows["idle cluster CPU"] - 25.0) < 2.0
    assert rows["peak cluster CPU during recovery"] > 70.0
    # Power rises during recovery over the idle ≈75 W baseline.
    assert rows["peak surviving-node power"] > 90.0
    assert result.recovery_time > 1.0
    # After recovery, CPU returns toward idle.
    end = result.recovery.finished_at
    tail = [v for t, v in result.cluster_cpu.items() if t > end + 5.0]
    if tail:
        assert min(tail) < 40.0
