"""Fig. 5 — throughput vs replication factor, 20 servers (§VI).

Finding 3's first half: every replication-factor step costs throughput
(the paper measures 78→43 Kop/s for RF 1→4 at 10 clients: a 45 % drop),
because the master answers the client only after every backup acked.
"""

from repro.experiments.replication import run_fig5_replication


def test_fig5_replication_throughput(run_once, scale):
    table = run_once(run_fig5_replication, scale)
    kops = {r.label: r.measured for r in table.rows}

    for clients in (10, 30, 60):
        series = [kops[f"{clients} clients / RF {rf}"] for rf in (1, 2, 3, 4)]
        # Monotone (within noise) decline with the replication factor.
        assert series[0] > series[-1]
        assert all(series[i] >= series[i + 1] * 0.9 for i in range(3))
    # The 10-client drop RF1→RF4 is substantial (paper: 45 %).
    drop = 1.0 - kops["10 clients / RF 4"] / kops["10 clients / RF 1"]
    assert drop > 0.2
