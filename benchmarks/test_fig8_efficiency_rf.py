"""Fig. 8 — energy efficiency vs replication factor (§VI).

Finding 4's robust half reproduces: efficiency declines as RF rises for
every cluster size, and update-heavy clusters keep usable efficiency at
larger sizes (unlike read-only, where Fig. 2 showed a 7.6x penalty for
over-provisioning).

Known deviation (recorded in EXPERIMENTS.md): the paper reports
efficiency *strictly increasing* with server count at fixed RF
(1500→2300 op/J for 20→40 servers).  In our model it is flat-to-slightly
-decreasing, because our 20-server cluster degrades less catastrophically
under 60 update-heavy clients than the authors' testbed did.  Note the
paper's Fig. 6a/6b numbers imply ≈74 op/J for the same runs Fig. 8
reports as 1500 op/J, so the absolute scale of Fig. 8 cannot be
reconciled with its siblings either way.
"""

from repro.experiments.replication import run_fig8_efficiency_rf


def test_fig8_efficiency_vs_rf(run_once, scale):
    table = run_once(run_fig8_efficiency_rf, scale)
    eff = {r.label: r.measured for r in table.rows}

    # Efficiency declines as RF rises, for every cluster size.
    for servers in (20, 30, 40):
        assert (eff[f"{servers} servers / RF 4"]
                < eff[f"{servers} servers / RF 1"])
    # Unlike the read-only case (Fig. 2: 7.6x penalty for 10x servers),
    # update-heavy efficiency is nearly size-independent: scaling out
    # for performance costs little efficiency.
    rf1 = [eff[f"{s} servers / RF 1"] for s in (20, 30, 40)]
    assert max(rf1) < 1.5 * min(rf1)
    rf4 = [eff[f"{s} servers / RF 4"] for s in (20, 30, 40)]
    assert max(rf4) < 2.0 * min(rf4)
