"""Fig. 1a/1b — read-only peak throughput and per-server power (§IV).

Regenerates the aggregated throughput and average power per server for
1/5/10 RAMCloud servers under 1/10/30 read-only clients, replication
disabled, as in the paper's peak-performance methodology (§IV-A).
"""

from repro.experiments.peak import run_fig1_peak


def test_fig1_peak_throughput_and_power(run_once, scale):
    throughput, power = run_once(run_fig1_peak, scale)

    # Shape assertions (who wins, where it saturates):
    by_label = {r.label: r.measured for r in throughput.rows}
    # A single server saturates around the paper's 372 Kop/s.
    single_30 = by_label["1 servers / 30 clients"]
    assert 250 <= single_30 <= 500
    # 5 servers beat 1 server at 30 clients...
    assert by_label["5 servers / 30 clients"] > single_30 * 1.3
    # ...but 10 servers bring no further improvement (client-limited).
    assert (by_label["10 servers / 30 clients"]
            <= by_label["5 servers / 30 clients"] * 1.1)

    watts = {r.label: r.measured for r in power.rows}
    # Non-proportionality: power is flat-ish across very different
    # throughputs at the same client count.
    assert abs(watts["1 servers / 1 clients"] - 92.0) < 6.0
    assert watts["1 servers / 30 clients"] > watts["1 servers / 1 clients"]
