"""§IX ablation — recovery time vs segment size.

"while tuning the segment size from 1MB to 32MB we find that 8MB, as
hard-coded in RAMCloud, gives the best recovery times with our
machines": small segments parallelize recovery but pay a disk seek per
segment on HDDs; huge segments serialize the pipeline.
"""

from repro.experiments.ablations import run_segment_size_ablation


def test_ablation_segment_size(run_once, scale):
    table = run_once(run_segment_size_ablation, scale)
    seconds = {r.label: r.measured for r in table.rows}

    assert all(v is not None and v > 0 for v in seconds.values())
    # 1 MB segments pay many more seeks than 8 MB on the HDD model:
    # they must not beat 8 MB.
    assert seconds["8 MB segments"] <= seconds["1 MB segments"] * 1.1
