"""Fig. 6a/6b — replication vs cluster size at 60 clients (§VI).

More servers absorb the replication load (Fig. 6a: RF1 throughput grows
128→237 Kop/s from 10 to 40 servers), while raising the replication
factor multiplies total energy (Fig. 6b: 3.5x from RF1 to RF4 at 20
servers).  The paper could not run 10 servers beyond RF2 at 60 clients
(crashes from excessive timeouts).
"""

from repro.experiments.replication import run_fig6_replication_scale


def test_fig6_replication_vs_cluster_size(run_once, scale):
    throughput, energy = run_once(run_fig6_replication_scale, scale)
    kops = {r.label: r.measured for r in throughput.rows}

    # At RF1, throughput grows with the server count.
    rf1 = [kops[f"{s} servers / RF 1"] for s in (10, 20, 30, 40)]
    assert rf1 == sorted(rf1)
    assert rf1[-1] > 1.5 * rf1[0]
    # At every size, RF4 is well below RF1.
    for servers in (20, 30, 40):
        assert (kops[f"{servers} servers / RF 4"]
                < 0.8 * kops[f"{servers} servers / RF 1"])

    ratios = {r.label: r.measured for r in energy.rows}
    # Energy multiplies with RF (paper: 3.5x at 20 servers).
    assert ratios["20 servers energy ratio RF4/RF1"] > 1.5
    assert ratios["40 servers energy ratio RF4/RF1"] > 1.5
