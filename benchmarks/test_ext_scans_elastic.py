"""§X/§IX extensions — scans and elastic sizing.

Workload E ("one could think of scans to assess the indexing
mechanism", §X) over RAMCloud's MultiRead, and the §IX coordinator-
driven scale-down with live tablet migration.
"""

from repro.experiments.extensions import (
    run_elastic_sizing_extension,
    run_scan_extension,
)


def test_ext_scans(run_once, scale):
    table = run_once(run_scan_extension, scale)
    ops = {r.label: r.measured for r in table.rows}
    # Longer scans take longer per op...
    series = [ops[f"max scan length {n}"] for n in (10, 100, 500)]
    assert series[0] > series[1] > series[2]
    # ...but never cost as much as reading every record individually:
    # 10x the scan length must cost far less than 10x the time.
    assert series[0] / series[1] < 6.0


def test_ext_elastic_sizing(run_once, scale):
    table = run_once(run_elastic_sizing_extension, scale)
    rows = {r.label: r.measured for r in table.rows}
    # Halving the fleet halves the power under light load...
    assert rows["power saved"] > 35.0
    # ...at (almost) no throughput cost: the load was client-limited.
    assert rows["throughput after"] > 0.85 * rows["throughput before"]
