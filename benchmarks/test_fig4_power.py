"""Fig. 4a/4b — power per node and total energy by workload (§V).

More updates mean more power per node (Fig. 4a ordering A > B > C at
high client counts) and, because update-heavy runs take far longer for
the same op count, workload A consumes ≈4.9x the total energy of
read-only at 90 clients (Fig. 4b).
"""

from repro.experiments.workloads import run_fig4_power


def test_fig4_power_and_energy(run_once, scale):
    power, energy = run_once(run_fig4_power, scale)
    watts = {r.label: r.measured for r in power.rows}

    # Workload A's power curve tracks the paper closely (89–101 W vs the
    # paper's 90–110 W) and rises with the client count.
    a_series = [watts[f"workload A / {c} clients"] for c in (10, 30, 60, 90)]
    assert a_series == sorted(a_series)
    assert abs(a_series[0] - 90.0) < 8.0
    # Known deviation (EXPERIMENTS.md): the paper's Fig. 4a shows C at
    # 82–93 W even at 4.5 clients/server, which contradicts its own
    # Table I (4–5 clients ≈ 90 % CPU ⇒ ≈120 W).  Our model follows
    # Table I, so C saturates high; we only require C to rise with load.
    c_series = [watts[f"workload C / {c} clients"] for c in (10, 30, 60, 90)]
    assert c_series == sorted(c_series)

    ratios = {r.label: r.measured for r in energy.rows}
    # Workload A burns several times the energy of C for the same ops.
    assert ratios["workload A energy ratio vs C"] > 2.5
    # Workload B costs more than C but far less than A.
    assert 1.0 <= ratios["workload B energy ratio vs C"] < \
        ratios["workload A energy ratio vs C"]
