"""Table II — throughput of 10 servers under workloads A/B/C (§V).

The paper's Finding 2: read-only scales to ≈2 Mop/s at 90 clients,
read-heavy loses ≈57 % vs read-only, update-heavy collapses ≈97 %
(replication disabled in all cases).
"""

from repro.experiments.workloads import run_table2_throughput


def test_table2_workload_throughput(run_once, scale):
    table, measured = run_once(run_table2_throughput, scale)

    # Read-only scales close to linearly with clients.
    assert measured[("C", 90)] > 6 * measured[("C", 10)]
    # Read-heavy collapses between 30 and 60 clients: far below C.
    assert measured[("B", 90)] < 0.5 * measured[("C", 90)]
    # Update-heavy plateaus: 90 clients is no better than 30.
    assert measured[("A", 90)] < 1.3 * measured[("A", 30)]
    # Finding 2's 97 % headline: A vs C at 90 clients.
    degradation = 1.0 - measured[("A", 90)] / measured[("C", 90)]
    assert degradation > 0.90
