"""Benchmark harness configuration.

Each benchmark reproduces one of the paper's tables or figures and
prints a paper-vs-measured comparison table.  Every experiment runs
once per benchmark invocation (``rounds=1``) — the interesting output
is the comparison, not the harness's own timing statistics.

Scale with ``REPRO_SCALE=smoke|default|full`` (see
:mod:`repro.experiments.scale`).  Set ``REPRO_BENCH_REPORT=<path>`` to
also append every comparison table to a markdown report file.
"""

import os

import pytest

from repro.experiments.scale import active_scale


@pytest.fixture(scope="session")
def scale():
    s = active_scale()
    print(f"\n[repro] running benchmarks at scale {s.name!r} "
          f"(REPRO_SCALE to change)")
    return s


@pytest.fixture
def run_once(benchmark):
    """Run the experiment exactly once under pytest-benchmark, print the
    resulting comparison table(s), and return them."""

    def runner(fn, *args, **kwargs):
        tables = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        report_path = os.environ.get("REPRO_BENCH_REPORT")
        for table in _iter_tables(tables):
            print()
            print(table.render())
            if report_path:
                with open(report_path, "a") as fh:
                    fh.write(table.render_markdown())
                    fh.write("\n\n")
        return tables

    return runner


def _iter_tables(result):
    from repro.experiments.reporting import ComparisonTable
    if isinstance(result, ComparisonTable):
        yield result
        return
    if isinstance(result, tuple):
        for item in result:
            if isinstance(item, ComparisonTable):
                yield item
