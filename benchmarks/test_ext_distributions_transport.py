"""§X extensions — the paper's named future work, implemented.

Request-distribution sensitivity (uniform vs zipfian vs latest) and the
Infiniband-vs-Ethernet transport comparison.
"""

from repro.experiments.extensions import (
    run_request_distribution_extension,
    run_transport_extension,
)


def test_ext_request_distributions(run_once, scale):
    table = run_once(run_request_distribution_extension, scale)
    kops = {r.label: r.measured for r in table.rows}
    # Read-only at saturation: skew imbalances load, uniform wins.
    assert kops["workload C / zipfian"] <= kops["workload C / uniform"] * 1.02
    # Read-heavy: all three distributions produce sane throughput.
    for dist in ("uniform", "zipfian", "latest"):
        assert kops[f"workload B / {dist}"] > 0


def test_ext_transport_comparison(run_once, scale):
    table = run_once(run_transport_extension, scale)
    kops = {r.label: r.measured for r in table.rows}
    # Infiniband's 2 µs one-way latency clearly beats Ethernet's 30 µs
    # in a closed loop.
    assert kops["infiniband-20g"] > 1.3 * kops["gigabit-ethernet"]
