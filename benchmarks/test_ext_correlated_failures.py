"""§X extension — correlated failures.

"An interesting aspect to consider then would be correlated failures
[33]": two servers dying together (a rack/PDU event) defeat random
replica placement whenever a segment's master and every backup land on
the dead pair — the Copysets problem the paper cites [28].
"""

from repro.experiments.extensions import run_correlated_failures_extension


def test_ext_correlated_failures(run_once, scale):
    table = run_once(run_correlated_failures_extension, scale)
    rows = {r.label: r.measured for r in table.rows}

    # RF 1 with three simultaneous deaths essentially always loses data.
    assert rows["RF 1: trials with data loss"] >= 50.0
    # Raising RF monotonically shrinks the number of lost segments...
    lost = [rows[f"RF {rf}: segments lost"] for rf in (1, 2, 3)]
    assert lost[0] >= lost[1] >= lost[2]
    assert lost[2] < lost[0]
    # ...and RF 3 cannot lose anything to a 3-machine event (4 copies).
    assert lost[2] == 0.0
