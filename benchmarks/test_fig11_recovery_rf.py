"""Fig. 11a/11b — recovery time and energy vs replication factor (§VII).

Finding 6, the paper's most counterintuitive result: raising the
replication factor makes recovery SLOWER (10 s at RF1 → 55 s at RF5 for
≈1.085 GB) and costlier in energy, because replay re-inserts data
through the normal replicated write path.
"""

from repro.experiments.recovery import run_fig11_recovery_rf


def test_fig11_recovery_vs_rf(run_once, scale):
    time_table, energy_table = run_once(run_fig11_recovery_rf, scale)
    seconds = {r.label: r.measured for r in time_table.rows
               if r.label.startswith("RF")}
    joules = {r.label: r.measured for r in energy_table.rows}

    # Monotone growth of recovery time with RF.
    series = [seconds[f"RF {rf}"] for rf in (1, 2, 3, 4, 5)]
    assert all(series[i] < series[i + 1] for i in range(4))
    # Substantial overall growth (paper: 5.5x; shape, not exact match).
    assert series[-1] > 2.0 * series[0]
    # Energy grows ~with duration (power is roughly flat in recovery).
    energy_series = [joules[f"RF {rf}"] for rf in (1, 2, 3, 4, 5)]
    assert all(energy_series[i] < energy_series[i + 1] for i in range(4))
