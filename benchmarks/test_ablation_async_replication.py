"""§IX ablation — relaxing the consistency level.

"we can think of simply sending the response to the client after an
update request, without waiting for the acknowledgement from the
backups, if the application tolerates inconsistencies": quantifies the
throughput and energy-efficiency gain the paper predicts.
"""

from repro.experiments.ablations import run_async_replication_ablation


def test_ablation_async_replication(run_once, scale):
    table = run_once(run_async_replication_ablation, scale)
    rows = {r.label: r.measured for r in table.rows}

    gain = rows["throughput gain from relaxing consistency"]
    assert gain > 1.1  # meaningfully faster without ack waits
    assert (rows["asynchronous (no ack wait): energy efficiency"]
            > rows["synchronous (wait for acks): energy efficiency"])
