"""§IX ablation — relaxing the consistency level.

"we can think of simply sending the response to the client after an
update request, without waiting for the acknowledgement from the
backups, if the application tolerates inconsistencies": quantifies the
throughput and energy-efficiency gain the paper predicts.

The original ``async_replication=True`` knob is now a deprecated alias
for ``default_consistency=ASYNC_BOUNDED`` (docs/CONSISTENCY.md); the
digest-pinning test below proves the alias behavior-preserving.
"""

from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
from repro.experiments.ablations import run_async_replication_ablation
from repro.experiments.sweep import experiment_digest
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.consistency import ASYNC_BOUNDED, SYNC_RF
from repro.ycsb.workload import WORKLOAD_A


def test_ablation_async_replication(run_once, scale):
    table = run_once(run_async_replication_ablation, scale)
    rows = {r.label: r.measured for r in table.rows}

    gain = rows["throughput gain from relaxing consistency"]
    assert gain > 1.1  # meaningfully faster without ack waits
    assert (rows["asynchronous (no ack wait): energy efficiency"]
            > rows["synchronous (wait for acks): energy efficiency"])


def _ablation_spec(config: ServerConfig) -> ExperimentSpec:
    return ExperimentSpec(
        cluster=ClusterSpec(num_servers=4, num_clients=2,
                            server_config=config, seed=1),
        workload=WORKLOAD_A.scaled(num_records=500, ops_per_client=100),
    )


def test_async_replication_alias_is_behavior_preserving():
    """``async_replication=True`` and an explicit cluster-wide
    ASYNC_BOUNDED default must run the *same simulation*: byte-exact
    digest equality, not statistics within noise."""
    alias = ServerConfig(replication_factor=2, async_replication=True)
    explicit = ServerConfig(replication_factor=2,
                            default_consistency=ASYNC_BOUNDED)
    assert alias.default_consistency == ASYNC_BOUNDED
    assert (experiment_digest(run_experiment(_ablation_spec(alias)))
            == experiment_digest(run_experiment(_ablation_spec(explicit))))


def test_alias_does_not_override_explicit_level():
    """An explicitly relaxed default wins over the legacy flag — the
    alias only upgrades the SYNC_RF *default*."""
    config = ServerConfig(async_replication=True,
                          default_consistency="eventual")
    assert config.default_consistency == "eventual"
    assert ServerConfig().default_consistency == SYNC_RF
