"""Table I — per-node CPU usage under the read-only grid (§IV).

The signature observations: an idle server already burns 25 % CPU (the
pinned dispatch core), each client pins roughly one more worker core,
and servers reach their maximum CPU usage before reaching peak
throughput (the root of Finding 1's non-proportionality).
"""

from repro.experiments.peak import run_table1_cpu


def test_table1_cpu_usage(run_once, scale):
    table = run_once(run_table1_cpu, scale)
    cpu = {r.label: r.measured for r in table.rows}

    # Idle = exactly the pinned polling core.
    assert abs(cpu["1 servers / 0 clients"] - 25.0) < 1.0
    # One client ≈ dispatch + one hot worker ≈ 50 %.
    assert abs(cpu["1 servers / 1 clients"] - 50.0) < 5.0
    # Saturation by 10 clients.
    assert cpu["1 servers / 10 clients"] > 90.0
    assert cpu["1 servers / 30 clients"] > 95.0
    # More servers at the same client count: same or lower per-node CPU
    # (the paper's small min–max spread across nodes).
    assert cpu["10 servers / 30 clients"] <= cpu["1 servers / 30 clients"]
