"""Extension — the consistency/durability frontier.

Per-request tunable consistency (docs/CONSISTENCY.md) exposes what the
paper's §IX only speculates about: the latency/throughput/energy
frontier between full synchronous replication and relaxed
acknowledgements, plus the measured crash-loss each level actually
risks.
"""

from repro.experiments.durability import (
    run_consistency_frontier,
    run_durability_gap_table,
)
from repro.ramcloud.consistency import ASYNC_BOUNDED, EVENTUAL, SYNC_RF


def test_consistency_frontier(run_once, scale):
    table = run_once(run_consistency_frontier, scale,
                     servers=4, clients=4)
    rows = {r.label: r.measured for r in table.rows}
    # Relaxing the ack point must not make the write path slower.
    assert (rows[f"{ASYNC_BOUNDED} throughput"]
            >= rows[f"{SYNC_RF} throughput"])
    assert (rows[f"{ASYNC_BOUNDED} mean latency"]
            <= rows[f"{SYNC_RF} mean latency"])
    assert (rows[f"{EVENTUAL} efficiency"]
            >= rows[f"{SYNC_RF} efficiency"])


def test_durability_gap_frontier(run_once, scale):
    table = run_once(run_durability_gap_table, scale)
    rows = {r.label: r.measured for r in table.rows}
    # The headline guarantee: a synchronous ack never lies.
    assert rows[f"{SYNC_RF} acked-write loss"] == 0.0
    # Relaxed levels acked everything too — loss, if any, is bounded
    # by what one staleness bound can hold in flight.
    for level in (ASYNC_BOUNDED, EVENTUAL):
        assert rows[f"{level} acked writes"] > 0
        assert (rows[f"{level} acked-write loss"]
                <= rows[f"{level} acked writes"] * 0.25)
