"""§IX ablation — the degree of concurrency.

"The concurrency level, i.e., number of servicing threads can play a
role in performance. Sometimes having more threads than needed can lead
to useless context switching": read-only throughput grows with worker
threads (up to the core count), update-heavy does not — its work
serializes on the log anyway.
"""

from repro.experiments.ablations import run_worker_threads_ablation


def test_ablation_worker_threads(run_once, scale):
    table = run_once(run_worker_threads_ablation, scale)
    kops = {r.label: r.measured for r in table.rows}

    # Read-only benefits from more workers (1 → 3).
    assert (kops["workload C (read-only) / 3 workers"]
            > 1.5 * kops["workload C (read-only) / 1 workers"])
    # Update-heavy gains far less from the same change.
    update_gain = (kops["workload A (update-heavy) / 3 workers"]
                   / kops["workload A (update-heavy) / 1 workers"])
    read_gain = (kops["workload C (read-only) / 3 workers"]
                 / kops["workload C (read-only) / 1 workers"])
    assert update_gain < read_gain
    # Oversubscribing beyond the cores buys nothing for updates.
    assert (kops["workload A (update-heavy) / 6 workers"]
            < 1.2 * kops["workload A (update-heavy) / 3 workers"])
