"""Fig. 3 — scalability factor vs a 10-client baseline (§V).

Read-only tracks the perfect-scalability line, read-heavy flattens,
update-heavy stays at factor ≈1 (or below) at every client count.
"""

from repro.experiments.workloads import run_fig3_scalability


def test_fig3_scalability_factors(run_once, scale):
    table = run_once(run_fig3_scalability, scale)
    factors = {r.label: r.measured for r in table.rows}

    # Read-only at 90 clients is close to the perfect 9x.
    assert factors["workload C / 90 clients"] > 6.0
    # Read-heavy flattens well below perfect.
    assert factors["workload B / 90 clients"] < 0.7 * 9.0
    # Update-heavy never scales.
    assert factors["workload A / 90 clients"] < 2.0
    # Ordering at every measured point: C >= B >= A.
    for clients in (20, 30, 60, 90):
        assert (factors[f"workload C / {clients} clients"]
                >= factors[f"workload B / {clients} clients"]
                >= factors[f"workload A / {clients} clients"] * 0.95)
