#!/usr/bin/env python3
"""Elastic scale-down: the §IX coordinator the paper asks for.

"a smart approach can be considered at the coordinator level ... which
can decide whether to add or remove nodes depending on the workload.
These types of approaches have shown their effectiveness in Cloud
environments [Sierra, Rabbit]."

This example runs a light read-only load on an over-provisioned
cluster, then has the coordinator drain and power off half the servers
(live tablet migration — no recovery, no lost data) and measures the
power the fleet stopped burning.

Run:  python examples/elastic_scaling.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.ramcloud import ServerConfig
from repro.sim.distributions import RandomStream
from repro.ycsb import WORKLOAD_C, YcsbClient

SERVERS = 6
CLIENTS = 2
RECORDS = 6000


def run_load(cluster, table_id, tag):
    clients = []
    for i, rc in enumerate(cluster.clients):
        workload = WORKLOAD_C.scaled(num_records=RECORDS,
                                     ops_per_client=2000)
        clients.append(YcsbClient(cluster.sim, rc, table_id, workload,
                                  RandomStream(3, f"{tag}{i}")))
    procs = [cluster.sim.process(c.run(), name=f"{tag}{i}")
             for i, c in enumerate(clients)]
    done = cluster.sim.all_of(procs)
    while not done.triggered:
        cluster.sim.step()
    total = sum(c.stats.total_ops for c in clients)
    makespan = (max(c.stats.finished_at for c in clients)
                - min(c.stats.started_at for c in clients))
    return total / makespan


def fleet_power(cluster, over):
    """Average fleet draw over the last `over` seconds of samples."""
    now = cluster.sim.now
    total = 0.0
    for node in cluster.server_nodes:
        window = node.power.series.window(now - over, now)
        total += window.mean() if len(window) else 0.0
    return total


def main():
    cluster = Cluster(ClusterSpec(
        num_servers=SERVERS, num_clients=CLIENTS,
        server_config=ServerConfig(replication_factor=0), seed=3))
    table_id = cluster.create_table("cache")
    cluster.preload(table_id, RECORDS, 1024)
    cluster.start_metering(interval=0.05)

    print(f"over-provisioned: {SERVERS} servers, {CLIENTS} light "
          "read-only clients")
    before_thr = run_load(cluster, table_id, "warm")
    cluster.run(until=cluster.sim.now + 2.0)
    before_power = fleet_power(cluster, over=1.0)
    print(f"  throughput {before_thr:,.0f} op/s, "
          f"fleet draw {before_power:.0f} W")

    victims = [f"server{i}" for i in range(SERVERS // 2, SERVERS)]
    print(f"\ncoordinator drains and powers off {victims} ...")

    def orchestrate():
        moved = 0
        for server_id in victims:
            moved += yield from cluster.coordinator.decommission_server(
                server_id)
        return moved

    proc = cluster.sim.process(orchestrate(), name="autoscaler")
    while proc.is_alive:
        cluster.sim.step()
    print(f"  migrated {proc.value} tablet shards live "
          f"(no recovery, no data loss) by t={cluster.sim.now:.2f} s")

    after_thr = run_load(cluster, table_id, "post")
    cluster.run(until=cluster.sim.now + 2.0)
    after_power = fleet_power(cluster, over=1.0)
    print(f"\nright-sized: {SERVERS - len(victims)} servers")
    print(f"  throughput {after_thr:,.0f} op/s, "
          f"fleet draw {after_power:.0f} W")

    saved = before_power - after_power
    print(f"\nsaved {saved:.0f} W ({100 * saved / before_power:.0f} % of "
          f"the fleet) at {100 * (1 - after_thr / before_thr):.0f} % "
          "throughput cost —")
    print("idle RAMCloud servers burn a polling core (Finding 1), so "
          "power only comes back when machines are actually turned off.")


if __name__ == "__main__":
    main()
