#!/usr/bin/env python3
"""Capacity planning: how many servers should a workload get?

The paper's headline tension (Findings 1 vs 4): for read-only traffic
the most energy-efficient cluster is the *smallest* one that meets the
load, but for update-heavy traffic with replication enabled, *more*
servers are both faster and more efficient.  This example sweeps the
cluster size for both traffic profiles and prints the trade-off table a
capacity planner would use.

Run:  python examples/capacity_planning.py
"""

from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
from repro.ramcloud import ServerConfig
from repro.ycsb import WORKLOAD_A, WORKLOAD_C

CLIENTS = 48
SIZES = (4, 8, 16)


def sweep(label, workload, replication_factor):
    print(f"\n== {label} ==")
    print(f"{'servers':>8} {'throughput':>12} {'W/server':>9} "
          f"{'op/joule':>9} {'energy (J)':>11}")
    rows = []
    for servers in SIZES:
        spec = ExperimentSpec(
            cluster=ClusterSpec(
                num_servers=servers,
                num_clients=CLIENTS,
                server_config=ServerConfig(
                    replication_factor=replication_factor),
                seed=7,
            ),
            workload=workload.scaled(num_records=10_000, ops_per_client=500),
        )
        result = run_experiment(spec)
        rows.append((servers, result))
        print(f"{servers:>8} {result.throughput:>11,.0f}/s "
              f"{result.avg_power_per_server:>8.1f}W "
              f"{result.energy_efficiency:>8.0f} "
              f"{result.total_energy_joules:>11.1f}")
    best = max(rows, key=lambda r: r[1].energy_efficiency)
    print(f"most energy-efficient size: {best[0]} servers "
          f"({best[1].energy_efficiency:.0f} op/joule)")
    return best[0]


def main():
    read_best = sweep(
        f"read-only cache traffic ({CLIENTS} clients, replication off)",
        WORKLOAD_C, replication_factor=0)
    update_best = sweep(
        f"session-store traffic ({CLIENTS} clients, 50% updates, RF 3)",
        WORKLOAD_A, replication_factor=3)

    print("\n== planner's conclusion ==")
    print(f"read-only: the small cluster ({read_best} servers) is "
          "dramatically more efficient — idle polling cores make every "
          "extra server pure overhead (paper Finding 1).")
    print(f"update-heavy with replication: throughput keeps growing with "
          "servers while efficiency stays roughly flat, so scale out for "
          "performance at little energy cost (the operational half of "
          "paper Finding 4).")
    print("either way: the right cluster size depends on the workload — "
          "there is no single energy-optimal deployment.")


if __name__ == "__main__":
    main()
