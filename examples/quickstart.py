#!/usr/bin/env python3
"""Quickstart: build a RAMCloud cluster, store and read data, kill a
server and watch the cluster recover.

Everything runs inside the discrete-event simulator: the "cluster" is a
faithful model of the paper's testbed (4-core nodes, HDDs,
Infiniband, per-node power meters) running a from-scratch RAMCloud
implementation (coordinator, log-structured masters, collocated
backups, primary-backup replication, distributed crash recovery).

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.ramcloud import ServerConfig


def main():
    # 1. A small cluster: 5 storage servers (master+backup collocated),
    #    2 client machines, replication factor 3 — plus the coordinator.
    spec = ClusterSpec(
        num_servers=5,
        num_clients=2,
        server_config=ServerConfig(replication_factor=3),
        failure_detection=True,
        seed=42,
    )
    cluster = Cluster(spec)
    sim = cluster.sim

    # 2. Create a table spanning every server (the paper's ServerSpan
    #    setting) and talk to it through a client.
    table_id = cluster.create_table("accounts")
    client = cluster.clients[0]

    def workload():
        yield from client.refresh_map()
        # Store a few objects (value payloads are optional: pass real
        # bytes, or just a size to simulate the space/time).
        for i in range(10):
            version = yield from client.write(
                table_id, f"account-{i}", value_size=256,
                value=f"balance={i * 100}".encode())
            print(f"  wrote account-{i} (version {version}) "
                  f"at t={sim.now * 1e6:.1f} µs")
        value, version, _size = yield from client.read(table_id, "account-7")
        print(f"  read account-7 -> {value!r} (version {version})")
        yield from client.delete(table_id, "account-3")
        print("  deleted account-3")

    print("== writing and reading ==")
    sim.run_process(sim.process(workload()))

    # 3. Kill a server and let the coordinator recover it.
    print("\n== crash and recovery ==")
    cluster.run(until=5.0)
    victim = cluster.kill_server()
    print(f"  killed {victim.server_id} at t={sim.now:.1f} s")
    cluster.run(until=60.0)
    recovery = cluster.coordinator.recoveries[0]
    print(f"  recovery of {recovery.crashed_id}: "
          f"{recovery.segments} segment(s), "
          f"{recovery.bytes_to_recover} bytes, "
          f"{recovery.duration:.2f} s across "
          f"{len(recovery.recovery_masters)} recovery masters")

    # 4. The data survived: read an object the victim used to own.
    def verify():
        yield from client.refresh_map()
        found = 0
        for i in range(10):
            if i == 3:
                continue  # deleted above
            _value, _version, _size = yield from client.read(
                table_id, f"account-{i}")
            found += 1
        return found

    found = sim.run_process(sim.process(verify()))
    print(f"  verified {found}/9 surviving objects after recovery")


if __name__ == "__main__":
    main()
