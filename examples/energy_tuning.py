#!/usr/bin/env python3
"""Energy tuning: which power governor should a deployment run?

The paper's machines are flat-out non-proportional — ≈75 W and 25 %
CPU with zero load (Table I, Figs. 1-4) — because the dispatch thread
busy-polls a pinned core.  `repro.powermgmt` (docs/POWER.md) adds the
standard toolbox: `ondemand` DVFS, and `poll-adaptive` blocking
dispatch with core parking.  This example sweeps the three governors
across three load points and prints the table an operator would tune
from: watts, ops/joule, and the p99 latency each watt saved costs.

Run:  python examples/energy_tuning.py          (REPRO_SCALE=smoke for
      a quicker pass)
"""

from repro.experiments.energy_proportionality import run_energy_proportionality
from repro.experiments.scale import active_scale

GOVERNORS = ("static", "ondemand", "poll-adaptive")


def main():
    scale = active_scale()
    # Idle, a light 30 % of peak, and full load: the three operating
    # points that separate the governors.
    _table, result = run_energy_proportionality(
        scale, governors=GOVERNORS, servers=2, clients=4, fractions=(0.3,))

    print("== governor sweep: watts vs ops/joule vs p99 ==")
    header = (f"{'governor':<14} {'load':>6} {'Kop/s':>8} {'W/server':>9} "
              f"{'op/joule':>9} {'p99 (µs)':>9}")
    print(header)
    print("-" * len(header))
    for governor in GOVERNORS:
        for p in result.by_governor(governor):
            label = ("idle" if p.load_fraction == 0.0
                     else f"{p.load_fraction:.0%}")
            p99 = p.p99_latency * 1e6 if p.p99_latency else float("nan")
            print(f"{governor:<14} {label:>6} {p.throughput / 1000:>8.1f} "
                  f"{p.watts_per_server:>9.1f} {p.ops_per_joule:>9.0f} "
                  f"{p99:>9.1f}")
        print()

    print("== energy-proportionality index (1 = perfect, 0 = flat) ==")
    for governor in GOVERNORS:
        print(f"  {governor:<14} {result.ep_index[governor]:.2f}")

    static_idle = result.point("static", 0.0)
    adaptive_idle = result.point("poll-adaptive", 0.0)
    saved = static_idle.watts_per_server - adaptive_idle.watts_per_server
    print("\n== operator's conclusion ==")
    print(f"poll-adaptive erases the busy-poll floor: {saved:.0f} W/server "
          "saved at idle (the paper's 25 % idle CPU drops to ~0) at the "
          "price of wake latency in the light-load tail.")
    print("ondemand keeps latency flat but only trims the DVFS-scalable "
          "part of the floor; the polling core still burns at every "
          "P-state.")
    print("run latency-critical fleets on static or ondemand; park "
          "everything else on poll-adaptive.")


if __name__ == "__main__":
    main()
