#!/usr/bin/env python3
"""Recreate the paper's §VII figures as terminal charts.

Runs a (scaled-down) version of the paper's crash experiment — idle
replicated cluster, one server killed — and renders Fig. 9a (cluster
CPU), Fig. 9b (surviving-node power), Fig. 12 (disk activity) and
Fig. 10 (the two clients' latencies) as ASCII charts, plus the Table-I
style CPU ladder and the energy-proportionality index behind Finding 1.

Run:  python examples/paper_figures.py
"""

from repro.analysis import (
    cpu_usage_table,
    crash_timeline_report,
    energy_proportionality_index,
)
from repro.cluster import (
    ClusterSpec,
    CrashExperimentSpec,
    ExperimentSpec,
    run_crash_experiment,
    run_experiment,
)
from repro.hardware.specs import MB
from repro.ramcloud import ServerConfig
from repro.ycsb import WORKLOAD_C


def crash_figures():
    data_per_server = 96 * MB  # scaled from the paper's ~1 GB
    servers = 8
    record_size = 8 * 1024
    num_records = data_per_server * servers // record_size
    spec = CrashExperimentSpec(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=2,
            server_config=ServerConfig(replication_factor=4),
            seed=17),
        num_records=num_records,
        record_size=record_size,
        kill_at=10.0,
        run_until=240.0,
        sample_interval=0.5,
        victim_index=2,
        split_clients_by_victim=True,
        foreground=WORKLOAD_C.scaled(
            num_records=num_records, ops_per_client=10_000_000,
            record_size=record_size).throttled(1500.0),
    )
    result = run_crash_experiment(spec)
    print(crash_timeline_report(result))


def table1_and_epi():
    rows = {}
    loads, watts = [], []
    for clients in (0, 1, 2, 3):
        if clients == 0:
            from repro.cluster import Cluster
            cluster = Cluster(ClusterSpec(
                num_servers=1, num_clients=0,
                server_config=ServerConfig(replication_factor=0)))
            cluster.start_metering()
            cluster.run(until=5.0)
            rows["idle server"] = {
                "server0": cluster.server_nodes[0].cpu.utilization_between(
                    0.0, 5.0)}
            loads.append(0.0)
            watts.append(cluster.average_power_per_server())
            continue
        spec = ExperimentSpec(
            cluster=ClusterSpec(
                num_servers=1, num_clients=clients,
                server_config=ServerConfig(replication_factor=0)),
            workload=WORKLOAD_C.scaled(num_records=5000,
                                       ops_per_client=1000),
        )
        result = run_experiment(spec)
        rows[f"{clients} client(s)"] = result.cpu_util_per_node
        loads.append(result.throughput)
        watts.append(result.avg_power_per_server)
    print("per-node CPU usage, single read-only server  [Table I]")
    print(cpu_usage_table(rows))
    epi = energy_proportionality_index(loads, watts)
    print(f"\nenergy-proportionality index: {epi:.2f} "
          "(1 = proportional; Finding 1: RAMCloud is far from it)")


def main():
    print("=" * 70)
    table1_and_epi()
    print()
    print("=" * 70)
    crash_figures()


if __name__ == "__main__":
    main()
