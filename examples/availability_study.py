#!/usr/bin/env python3
"""Availability study: what does a replication factor buy — and cost?

An SRE's question about RAMCloud-style in-memory stores: raising the
replication factor protects against more simultaneous disk failures,
but (paper Finding 6) it makes crash recovery *slower* — and recovery
time IS the client-visible outage, because the single primary replica
means lost data is unavailable until replay finishes.

This example measures, for each replication factor: the outage duration
seen by a client pinned to the lost data, the latency collateral on
clients reading live data, and the energy bill of the recovery.

Run:  python examples/availability_study.py
"""

from repro.cluster import ClusterSpec, CrashExperimentSpec, run_crash_experiment
from repro.hardware.specs import MB
from repro.ramcloud import ServerConfig
from repro.ycsb import WORKLOAD_C

SERVERS = 8
DATA_PER_SERVER = 96 * MB  # scaled-down (paper: 1.085 GB/server)
RECORD_SIZE = 8 * 1024


def measure(rf):
    num_records = DATA_PER_SERVER * SERVERS // RECORD_SIZE
    # Throttled probes: the latency trace needs samples, not load.
    foreground = WORKLOAD_C.scaled(num_records=num_records,
                                   ops_per_client=10_000_000,
                                   record_size=RECORD_SIZE,
                                   ).throttled(2000.0)
    spec = CrashExperimentSpec(
        cluster=ClusterSpec(
            num_servers=SERVERS, num_clients=2,
            server_config=ServerConfig(replication_factor=rf),
            seed=11),
        num_records=num_records,
        record_size=RECORD_SIZE,
        kill_at=5.0,
        run_until=5.0 + 30.0 + 30.0 * rf,
        victim_index=2,
        split_clients_by_victim=True,
        foreground=foreground,
    )
    return run_crash_experiment(spec)


def main():
    print(f"cluster: {SERVERS} servers, "
          f"{DATA_PER_SERVER // MB} MB/server to protect\n")
    print(f"{'RF':>3} {'outage (s)':>11} {'live p99 during (µs)':>21} "
          f"{'recovery energy/node (J)':>25}")
    outages = {}
    for rf in (1, 2, 3, 4):
        result = measure(rf)
        outage = result.recovery_time
        outages[rf] = outage
        live = result.client_latencies[1]
        start = result.recovery.started_at
        end = result.recovery.finished_at
        during = sorted(lat for t, lat in live if start < t <= end)
        p99 = during[int(0.99 * (len(during) - 1))] * 1e6 if during else 0.0
        energy = result.energy_per_node_during_recovery()
        print(f"{rf:>3} {outage:>11.2f} {p99:>21.1f} {energy:>25.1f}")

    print("\nthe durability/availability trade-off (paper §IX):")
    print(f"  RF 1 -> RF 4 multiplies the outage by "
          f"{outages[4] / outages[1]:.1f}x.")
    print("  every extra replica shrinks the chance of data loss but")
    print("  lengthens the window in which the data is unavailable —")
    print("  'it is better to have a lower replication factor for")
    print("  availability' (Finding 6 discussion).")


if __name__ == "__main__":
    main()
