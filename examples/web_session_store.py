#!/usr/bin/env python3
"""A web session store on RAMCloud, with an energy bill.

The paper's motivation: "large popular web applications ... strongly
rely on main memory storage" with read-dominated traffic (§I, [3]
reports GET/SET ≈ 30:1).  This example models that application
directly: a fleet of web frontends doing session lookups with
occasional session updates, and asks what the paper's instrumentation
would show — throughput, tail latency, watts, and joules per million
requests.

It also demonstrates the custom-workload API: a 30:1 read/update mix
with zipfian popularity (hot sessions), rather than the standard
YCSB A/B/C presets.

Run:  python examples/web_session_store.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.ramcloud import ServerConfig
from repro.sim.distributions import RandomStream
from repro.ycsb import WorkloadSpec, YcsbClient

FRONTENDS = 12
SERVERS = 6
SESSIONS = 15_000
SESSION_SIZE = 1024  # the paper's 1 KB records

# The Facebook-style mix: GET/SET 30:1, hot sessions via zipfian.
SESSION_WORKLOAD = WorkloadSpec(
    name="session-store",
    read_proportion=30 / 31,
    update_proportion=1 / 31,
    num_records=SESSIONS,
    record_size=SESSION_SIZE,
    ops_per_client=1_500,
    request_distribution="zipfian",
)


def main():
    cluster = Cluster(ClusterSpec(
        num_servers=SERVERS,
        num_clients=FRONTENDS,
        server_config=ServerConfig(replication_factor=3),
        seed=2026,
    ))
    table_id = cluster.create_table("sessions")
    cluster.preload(table_id, SESSIONS, SESSION_SIZE)

    frontends = []
    for i, rc in enumerate(cluster.clients):
        client = YcsbClient(cluster.sim, rc, table_id, SESSION_WORKLOAD,
                            RandomStream(2026, f"frontend{i}"))
        frontends.append(client)

    # Scaled-down run (tens of milliseconds), so sample the PDUs at
    # 1 kHz instead of the paper's 1 Hz.
    cluster.start_metering(interval=0.001)
    procs = [cluster.sim.process(f.run(), name=f"frontend{i}")
             for i, f in enumerate(frontends)]
    done = cluster.sim.all_of(procs)
    while not done.triggered:
        cluster.sim.step()
    cluster.stop_metering()

    total_ops = sum(f.stats.total_ops for f in frontends)
    makespan = max(f.stats.finished_at for f in frontends)
    reads = [lat for f in frontends for _t, lat in f.stats.reads.samples]
    updates = [lat for f in frontends for _t, lat in f.stats.updates.samples]
    reads.sort()
    updates.sort()
    energy = cluster.total_energy_joules()

    print(f"session store: {SERVERS} servers (RF 3), "
          f"{FRONTENDS} frontends, {SESSIONS:,} sessions of "
          f"{SESSION_SIZE} B, GET/SET 30:1 zipfian\n")
    print(f"  served            {total_ops:,} requests in "
          f"{makespan * 1000:.1f} ms")
    print(f"  throughput        {total_ops / makespan:,.0f} req/s")
    print(f"  GET latency       p50 {reads[len(reads) // 2] * 1e6:.1f} µs   "
          f"p99 {reads[int(0.99 * len(reads))] * 1e6:.1f} µs")
    if updates:
        print(f"  SET latency       p50 "
              f"{updates[len(updates) // 2] * 1e6:.1f} µs   "
              f"p99 {updates[int(0.99 * len(updates))] * 1e6:.1f} µs")
    print(f"  power             {cluster.average_power_per_server():.1f} "
          f"W/server average")
    print(f"  energy            {energy:.1f} J total -> "
          f"{energy / total_ops * 1e6:,.0f} J per million requests")
    print(f"  server CPU        "
          + ", ".join(f"{n.cpu.utilization_between(0, makespan):.0f}%"
                      for n in cluster.server_nodes))
    print("\nnote the paper's Finding 1 at work: per-server power barely "
          "tracks load — the dispatch core polls at 100 % regardless.")


if __name__ == "__main__":
    main()
