"""A simulated machine: CPU + DRAM + disk + NIC + PDU.

Nodes are the unit of deployment: the cluster builder creates one node
per physical machine (coordinator node, server nodes running collocated
master+backup services, client nodes) exactly as the paper's testbed
does.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.power import PowerModel
from repro.hardware.specs import MachineSpec
from repro.sim.kernel import Process, Simulator
from repro.sim.resources import Container

__all__ = ["Node"]


class Node:
    """One machine in the simulated testbed."""

    def __init__(self, sim: Simulator, spec: MachineSpec, name: str):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.cpu = Cpu(sim, spec.cpu.cores, name=name)
        self.disk = Disk(sim, spec.disk, name=name)
        self.dram = Container(sim, float(spec.dram_bytes), name=f"{name}:dram")
        self.power = PowerModel(sim, spec.power, self.cpu, self.disk, name=name)
        self.crashed = False
        self._pdu_process: Optional[Process] = None
        self._pdu_interval = 1.0
        self._metering = False

    # -- power metering -------------------------------------------------

    def start_metering(self, interval: float = 1.0) -> None:
        """Start the 1 Hz PDU-polling script for this node.

        Records an immediate boundary sample so the power series starts
        at the metering instant — without it the first ``interval`` of
        the window falls outside :meth:`TimeSeries.integral`'s coverage
        (see its contract) and energy totals under-count.
        """
        if self._metering:
            return
        self._metering = True
        self._pdu_interval = interval
        self.cpu.mark()
        self.power.sample()
        self._pdu_process = self.sim.process(self._pdu_loop(),
                                             name=f"pdu:{self.name}")

    def stop_metering(self) -> None:
        """Stop the PDU sampler; recorded samples are kept.  A final
        boundary sample closes the window (unless the periodic loop
        already sampled at this instant) so the tail since the last
        tick still enters the energy integral."""
        if self._metering and self._pdu_process is not None:
            self._metering = False
            series = self.power.series
            if not series.times or series.times[-1] < self.sim.now:
                self.power.sample()
            self._pdu_process.interrupt("metering stopped")
            self._pdu_process = None

    def _pdu_loop(self):
        while self._metering:
            yield self.sim.timeout(self._pdu_interval)
            self.power.sample()

    # -- failure injection ------------------------------------------------

    def crash(self) -> None:
        """Mark the machine as dead.

        Services check this flag; the fabric refuses delivery to crashed
        nodes.  Power metering continues (the PDU is external to the
        machine) but CPU utilization naturally collapses because the
        services' processes are interrupted by whoever called us.
        """
        self.crashed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"<Node {self.name} {state}>"
