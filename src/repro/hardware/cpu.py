"""The CPU model.

A :class:`Cpu` is a pool of cores with utilization accounting.  Two
behaviours matter for the reproduction:

* **Pinned cores** — RAMCloud's dispatch thread busy-polls the NIC and
  permanently occupies one core, which is why the paper measures 25 %
  CPU on an idle 4-core server (Table I, row 0).  :meth:`pin_core`
  removes a core from the schedulable pool and accounts it as 100 %
  busy forever.
* **Utilization windows** — the PDU power model and Table I both need
  per-interval utilization; the embedded
  :class:`~repro.sim.monitor.UtilizationTracker` provides it.

Two power-management extensions (opt-in, see docs/POWER.md):

* **DVFS** — :meth:`set_frequency` slows every subsequent
  :meth:`execute` by ``1/ratio`` (the X3440's single package-wide
  frequency domain).  Busy-time accounting runs in wall-clock seconds,
  so utilization rises at low frequency exactly as ``top`` would show.
* **Core parking / C-states** — :meth:`try_park_core` power-gates one
  idle core (the power model subtracts per-parked-core watts);
  :meth:`unpark_core` restores it.  The wake latency is charged by the
  *caller* (the worker that parked pays it before serving its next
  request), keeping the pool resize itself instantaneous and
  interrupt-safe.  :meth:`pinned_core_idle`/:meth:`pinned_core_busy`
  model a dispatch thread that blocks on interrupts instead of
  busy-polling: the core stays reserved (pinned) but stops counting as
  busy, which is what collapses the paper's 25 % idle-CPU floor.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.kernel import Simulator
from repro.sim.monitor import UtilizationTracker
from repro.sim.resources import Resource

__all__ = ["Cpu"]


class Cpu:
    """A multi-core CPU shared by all threads of a simulated machine."""

    __slots__ = ("sim", "cores", "name", "_pinned", "_pinned_idle",
                 "_active", "_spinning", "_parked", "_freq_ratio",
                 "_pool", "utilization")

    def __init__(self, sim: Simulator, cores: int, name: str = ""):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.sim = sim
        self.cores = cores
        self.name = name
        self._pinned = 0
        self._pinned_idle = 0  # pinned cores whose poller is blocked
        self._active = 0  # cores executing real work
        self._spinning = 0  # threads busy-polling while they wait
        self._parked = 0  # cores power-gated in a deep C-state
        self._freq_ratio = 1.0  # package DVFS ratio (1.0 = nominal)
        self._pool = Resource(sim, cores, name=f"{name}:cores")
        self.utilization = UtilizationTracker(sim, capacity=cores,
                                              name=f"{name}:util")

    def _update_busy(self) -> None:
        """Utilization = awake pinned pollers + executing work +
        spin-waiting threads, capped at the core count (a spinning
        thread yields the instant real work needs the core, so spins
        never add latency — they only burn watts, which is exactly what
        the paper's CPU and power figures observe).  A pinned core whose
        poller is blocked (adaptive dispatch asleep) stays reserved but
        counts as idle."""
        busy = min(float(self.cores),
                   (self._pinned - self._pinned_idle)
                   + self._active + self._spinning)
        self.utilization.set_busy(busy)

    @property
    def schedulable_cores(self) -> int:
        """Cores available to workers (total minus pinned)."""
        return self.cores - self._pinned

    @property
    def parked_cores(self) -> int:
        """Cores currently power-gated (deep C-state)."""
        return self._parked

    @property
    def frequency_ratio(self) -> float:
        """Current package frequency as a fraction of nominal."""
        return self._freq_ratio

    @property
    def busy_cores(self) -> float:
        """Currently-busy core count (pinned + executing + spinning)."""
        return self.utilization.busy

    @property
    def run_queue_length(self) -> int:
        """Threads runnable but not on a core."""
        return self._pool.queue_length

    def pin_core(self) -> None:
        """Permanently dedicate one core to a busy-polling thread.

        The core is accounted 100 % busy from now on (that is what
        ``top`` reports for RAMCloud's dispatch thread) and is no longer
        available to workers.
        """
        if self._pinned + self._parked >= self.cores - 1:
            raise ValueError(
                f"cannot pin {self._pinned + 1} of {self.cores} cores: "
                "at least one schedulable core must remain"
            )
        # Pinning must happen before workers pile in — which matches
        # reality: the dispatch thread is pinned at server start-up.
        if self._pool.count > self.cores - self._pinned - self._parked - 1:
            raise ValueError("pin_core() after workers already saturated the pool")
        self._pinned += 1
        self._pool.resize(self.cores - self._pinned - self._parked)
        self._update_busy()

    def unpin_core(self) -> None:
        """Release a pinned core (the dispatch thread exited, e.g. the
        RAMCloud process on this machine was killed)."""
        if self._pinned < 1:
            raise ValueError("no pinned cores to release")
        self._pinned -= 1
        # An unpinned core cannot stay in the blocked-poller state.
        self._pinned_idle = min(self._pinned_idle, self._pinned)
        self._update_busy()
        self._pool.resize(self.cores - self._pinned - self._parked)

    # -- power-management knobs (docs/POWER.md) ------------------------

    def pinned_core_idle(self) -> None:
        """A pinned poller blocked on interrupts: its core stays
        reserved but stops accruing busy time (adaptive dispatch going
        to sleep after its empty-poll threshold)."""
        if self._pinned_idle >= self._pinned:
            raise ValueError("no awake pinned core to idle")
        self._pinned_idle += 1
        self._update_busy()

    def pinned_core_busy(self) -> None:
        """The blocked poller woke up; its core is 100 % busy again.
        Lenient when no pinned core is idle (the unpin in ``kill()``
        may already have cleared the state before the sleeping dispatch
        thread's interrupt handler runs)."""
        if self._pinned_idle > 0:
            self._pinned_idle -= 1
            self._update_busy()

    def set_frequency(self, ratio: float) -> None:
        """Set the package DVFS ratio (1.0 = nominal frequency).

        Subsequent :meth:`execute` calls take ``seconds / ratio`` wall
        time; work already on a core finishes at the old speed (the
        granularity of a P-state transition is far below our cost
        quanta).  Busy-time integrates wall seconds, so utilization
        rises at low frequency — the power model compensates through
        :meth:`PowerSpec.watts`'s ``freq_ratio`` term.
        """
        if not 0.0 < ratio <= 1.5:
            raise ValueError(f"frequency ratio {ratio} outside (0, 1.5]")
        self._freq_ratio = ratio

    def try_park_core(self) -> bool:
        """Power-gate one schedulable core if the invariants allow it:
        at least one unparked schedulable core must always remain, and
        parking never strands a thread already running on a core.
        Returns True if a core was parked.

        The wake side (:meth:`unpark_core`) restores capacity
        immediately; the *caller* models the C-state exit by charging
        its wake latency before using the core again.
        """
        unparked = self.cores - self._pinned - self._parked
        if unparked <= 1:
            return False
        if self._pool.count > unparked - 1:
            return False  # every unparked core is running a thread
        self._parked += 1
        self._pool.resize(self.cores - self._pinned - self._parked)
        return True

    def unpark_core(self) -> None:
        """Bring one parked core back online (capacity is restored
        immediately; the caller pays the C-state exit latency)."""
        if self._parked < 1:
            raise ValueError("no parked cores to wake")
        self._parked -= 1
        self._pool.resize(self.cores - self._pinned - self._parked)

    def execute(self, seconds: float) -> Generator:
        """Run ``seconds`` of work on some core; queues if all are busy.

        Use as ``yield from cpu.execute(t)`` inside a process.  Safe
        against interrupts at any point (the core is released / the
        queue entry withdrawn).
        """
        if seconds < 0:
            raise ValueError(f"negative execution time: {seconds}")
        if self.schedulable_cores < 1:
            raise RuntimeError(f"{self.name}: no schedulable cores remain")
        req = self._pool.request()
        try:
            yield req
        except BaseException:
            if req.triggered and req.ok:
                self._pool.release(req)
            else:
                self._pool.cancel(req)
            raise
        self._active += 1
        self._update_busy()
        try:
            # DVFS: the same work takes 1/ratio longer at reduced
            # frequency (ratio 1.0 divides out bit-exactly).
            yield self.sim.timeout(seconds / self._freq_ratio)
        finally:
            self._active -= 1
            self._update_busy()
            self._pool.release(req)

    def spin_begin(self) -> None:
        """Account one more busy-polling thread (see :meth:`spinning`).

        The ``spin_begin()/try: yield ...: finally: spin_end()`` pair is
        the flattened form of ``yield from cpu.spinning(...)`` for
        waits on a *single event*: it burns no wrapper generator frame
        on each resume.  Use :meth:`spinning` when the wrapped wait is
        itself a multi-step generator (an RPC call pipeline).
        """
        self._spinning += 1
        self._update_busy()

    def spin_end(self) -> None:
        """End one :meth:`spin_begin` interval."""
        # Each += / -= is atomic within its step; the gauge is *meant*
        # to span the caller's yield (that is the spin interval).
        self._spinning -= 1  # simlint: disable=SIM006 gauge
        self._update_busy()

    def spinning(self, inner: Generator) -> Generator:
        """Run ``inner`` (usually an RPC wait) while this thread
        busy-polls: ``result = yield from cpu.spinning(call)``.

        RAMCloud threads spin rather than sleep while waiting for
        replies — during crash recovery this is what drives whole
        machines to >90 % CPU (paper Fig. 9a) even though much of it is
        polling, not useful work.  Spinning is accounting-only: it burns
        utilization (and therefore watts) but never delays real work.
        """
        self.spin_begin()
        try:
            result = yield from inner
        finally:
            self.spin_end()
        return result

    def execute_sliced(self, seconds: float, slice_seconds: float = 2e-3
                       ) -> Generator:
        """Run ``seconds`` of work as preemptible time slices.

        Long CPU bursts (recovery replay, cleaning) release the core
        between slices so short requests interleave — the OS scheduler's
        behaviour that keeps RAMCloud servicing reads (at degraded
        latency) during crash recovery (paper Fig. 10).
        """
        if slice_seconds <= 0:
            raise ValueError("slice must be positive")
        remaining = seconds
        while remaining > 0:
            chunk = min(remaining, slice_seconds)
            yield from self.execute(chunk)
            remaining -= chunk

    # -- measurement helpers -------------------------------------------

    def busy_core_seconds(self) -> float:
        """Cumulative core-seconds of work executed (including pinned
        cores).  Experiment harnesses difference two snapshots to get
        exact window utilization without samplers."""
        return self.utilization._cumulative()

    def mark(self) -> None:
        """Checkpoint for per-interval utilization (called by the PDU)."""
        self.utilization.mark()

    def utilization_since_mark(self) -> float:
        """Mean utilization (percent) since the last mark."""
        return self.utilization.utilization_since_mark()

    def utilization_between(self, start: float, end: float) -> float:
        """Mean utilization (percent) over a marked window."""
        return self.utilization.utilization_between(start, end)
