"""The HDD model.

A single disk head (``Resource`` of capacity 1) serves reads and writes
in queue order.  A seek penalty is charged whenever an operation is not
sequential with the previous one — so a backup streaming a segment to
disk pays one seek, while interleaved recovery reads and re-replication
writes keep paying seeks against each other.  That head contention is
the mechanism behind the paper's Fig. 12 discussion ("the probability of
disk-interference between the backup performing a recovery, i.e.
reading, and a server replaying data, i.e. writing, is high").

Per-direction byte counters feed the aggregate-I/O time series.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hardware.specs import DiskSpec
from repro.sim.kernel import Simulator
from repro.sim.resources import Container, PriorityResource

__all__ = ["Disk"]


class Disk:
    """A spinning disk with one head and sequential/seek cost model."""

    def __init__(self, sim: Simulator, spec: DiskSpec, name: str = ""):
        self.sim = sim
        self.spec = spec
        self.name = name
        self._head = PriorityResource(sim, 1, name=f"{name}:head")
        self.space = Container(sim, float(spec.capacity_bytes), name=f"{name}:space")
        # (direction, stream_id) of the last completed op: consecutive
        # ops from the same stream in the same direction are sequential.
        self._last_stream: Optional[tuple] = None
        # Fault injection: when set, sequential bandwidth is clamped to
        # this value (a failing spindle, a throttled rebuild).
        self._bandwidth_override: Optional[float] = None
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_seconds = 0.0
        self._busy = False

    @property
    def busy(self) -> bool:
        """True while an operation occupies the head (for the power adder)."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """I/O requests waiting for the head."""
        return self._head.queue_length

    @property
    def effective_bandwidth(self) -> float:
        """Sequential bandwidth in effect (degraded or nominal)."""
        if self._bandwidth_override is not None:
            return self._bandwidth_override
        return self.spec.sequential_bandwidth

    def degrade(self, bandwidth_bytes_per_s: float) -> None:
        """Clamp sequential bandwidth (fault injection).  In-flight
        operations keep their already-computed duration; every operation
        starting afterwards pays the degraded rate."""
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"degraded bandwidth must be positive: {bandwidth_bytes_per_s}")
        self._bandwidth_override = bandwidth_bytes_per_s

    def restore(self) -> None:
        """Lift a :meth:`degrade` clamp."""
        self._bandwidth_override = None

    def _transfer_time(self, nbytes: int, stream: tuple) -> float:
        seek = 0.0 if stream == self._last_stream else self.spec.seek_time
        return seek + nbytes / self.effective_bandwidth

    def _io(self, nbytes: int, direction: str, stream_id: object,
            priority: int) -> Generator:
        if nbytes < 0:
            raise ValueError(f"negative I/O size: {nbytes}")
        req = self._head.request(priority=priority)
        try:
            yield req
        except BaseException:
            if req.triggered and req.ok:
                self._head.release(req)
            else:
                self._head.cancel(req)
            raise
        stream = (direction, stream_id)
        self._busy = True
        started = self.sim.now
        try:
            yield self.sim.timeout(self._transfer_time(nbytes, stream))
            self._last_stream = stream
            if direction == "read":
                self.bytes_read += nbytes
            else:
                self.bytes_written += nbytes
        finally:
            self.busy_seconds += self.sim.now - started
            self._head.release(req)
            self._busy = self._head.count > 0

    def read(self, nbytes: int, stream_id: object = None,
             priority: int = 0) -> Generator:
        """``yield from disk.read(n)`` — read ``n`` bytes.

        Returns ``_io``'s generator directly (no ``yield from``
        trampoline): the caller drives it without an extra frame per
        resume.
        """
        return self._io(nbytes, "read", stream_id, priority)

    def write(self, nbytes: int, stream_id: object = None,
              priority: int = 0) -> Generator:
        """``yield from disk.write(n)`` — write ``n`` bytes (space is
        accounted separately by the caller via :attr:`space`).

        Returns ``_io``'s generator directly, like :meth:`read`.
        """
        return self._io(nbytes, "write", stream_id, priority)

    def io_counters(self) -> tuple:
        """Cumulative ``(bytes_read, bytes_written)`` — the PDU-style
        sampler differences successive snapshots to get MB/s."""
        return self.bytes_read, self.bytes_written
