"""Machine specifications and calibration constants.

``GRID5000_NANCY_NODE`` models the nodes the paper used (§III-B):
1 CPU Intel Xeon X3440 (4 cores), 16 GB RAM, 298 GB HDD, Infiniband-20G
and GigE NICs, and a per-machine PDU sampled at 1 Hz.

The power calibration is a linear fit through the paper's reported
(CPU-utilization, watts) anchor points — see DESIGN.md §4:

* ≈50 % CPU → 92 W   (Fig. 1b: 1 server / 1 client, Table I: 49.8 %)
* ≈98 % CPU → 125 W  (Fig. 1b: 10–30 clients, Table I: 98.4 %)

which gives ``P = 57.5 + 0.69 × util_percent`` watts, plus a small
adder when the disk is active (levels in Fig. 7 / Fig. 9b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CpuSpec",
    "DiskSpec",
    "NicSpec",
    "PowerSpec",
    "MachineSpec",
    "GRID5000_NANCY_NODE",
    "INFINIBAND_20G",
    "GIGABIT_ETHERNET",
    "KB",
    "MB",
    "GB",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class CpuSpec:
    """A multi-core CPU."""

    cores: int = 4

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")


@dataclass(frozen=True)
class DiskSpec:
    """A spinning disk (the paper's nodes have a 298 GB HDD).

    ``seek_time`` is charged per operation that is not sequential with
    the previous one, which is how interleaved recovery reads and
    re-replication writes contend (Fig. 12 discussion).
    """

    capacity_bytes: int = 298 * GB
    sequential_bandwidth: float = 120 * MB  # bytes/second
    seek_time: float = 8e-3  # seconds, per non-sequential op

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ValueError("disk capacity must be positive")
        if self.sequential_bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        if self.seek_time < 0:
            raise ValueError("seek time cannot be negative")


@dataclass(frozen=True)
class NicSpec:
    """A network transport: one-way latency plus serialization bandwidth."""

    name: str
    one_way_latency: float  # seconds
    bandwidth: float  # bytes/second

    def __post_init__(self):
        if self.one_way_latency < 0:
            raise ValueError("latency cannot be negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


# RAMCloud on Infiniband achieves ~5 µs round-trip reads; the paper uses
# the Infiniband transport exclusively (§III-B).
INFINIBAND_20G = NicSpec(name="infiniband-20g", one_way_latency=2.0e-6,
                         bandwidth=2.3 * GB)
GIGABIT_ETHERNET = NicSpec(name="gigabit-ethernet", one_way_latency=30.0e-6,
                           bandwidth=118 * MB)


@dataclass(frozen=True)
class PowerSpec:
    """Linear utilization→watts model with a disk-activity adder.

    ``watts(util_pct) = idle_watts + slope_watts_per_pct * util_pct``
    (+ ``disk_active_watts`` while the disk head is busy).
    """

    idle_watts: float = 57.5
    slope_watts_per_pct: float = 0.69
    disk_active_watts: float = 6.0

    def watts(self, util_pct: float, disk_active: bool = False) -> float:
        """Node power draw at the given CPU utilization."""
        if not 0.0 <= util_pct <= 100.0 + 1e-9:
            raise ValueError(f"utilization {util_pct} outside [0, 100]")
        base = self.idle_watts + self.slope_watts_per_pct * util_pct
        return base + (self.disk_active_watts if disk_active else 0.0)


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine: the unit the cluster is built from."""

    cpu: CpuSpec = field(default_factory=CpuSpec)
    dram_bytes: int = 16 * GB
    disk: DiskSpec = field(default_factory=DiskSpec)
    nic: NicSpec = INFINIBAND_20G
    power: PowerSpec = field(default_factory=PowerSpec)

    def __post_init__(self):
        if self.dram_bytes <= 0:
            raise ValueError("dram_bytes must be positive")


GRID5000_NANCY_NODE = MachineSpec()
