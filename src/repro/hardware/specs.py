"""Machine specifications and calibration constants.

``GRID5000_NANCY_NODE`` models the nodes the paper used (§III-B):
1 CPU Intel Xeon X3440 (4 cores), 16 GB RAM, 298 GB HDD, Infiniband-20G
and GigE NICs, and a per-machine PDU sampled at 1 Hz.

The power calibration is a linear fit through the paper's reported
(CPU-utilization, watts) anchor points — see DESIGN.md §4:

* ≈50 % CPU → 92 W   (Fig. 1b: 1 server / 1 client, Table I: 49.8 %)
* ≈98 % CPU → 125 W  (Fig. 1b: 10–30 clients, Table I: 98.4 %)

which gives ``P = 57.5 + 0.69 × util_percent`` watts, plus a small
adder when the disk is active (levels in Fig. 7 / Fig. 9b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CpuSpec",
    "DiskSpec",
    "NicSpec",
    "PowerSpec",
    "MachineSpec",
    "GRID5000_NANCY_NODE",
    "INFINIBAND_20G",
    "GIGABIT_ETHERNET",
    "KB",
    "MB",
    "GB",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class CpuSpec:
    """A multi-core CPU.

    ``freq_steps`` are the DVFS P-states as ratios of the nominal
    frequency, lowest first.  The paper's Xeon X3440 (Lynnfield) is
    nominally 2.53 GHz with SpeedStep P-states down to ≈1.2 GHz; all
    four cores share a single PLL/voltage domain, so frequency changes
    are package-wide — which is why :meth:`~repro.hardware.cpu.Cpu.set_frequency`
    takes one ratio for the whole CPU, not per core.
    """

    cores: int = 4
    nominal_freq_ghz: float = 2.53
    freq_steps: tuple = (0.47, 0.63, 0.79, 1.0)

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.nominal_freq_ghz <= 0:
            raise ValueError("nominal frequency must be positive")
        if not self.freq_steps:
            raise ValueError("need at least one frequency step")
        if tuple(sorted(self.freq_steps)) != tuple(self.freq_steps):
            raise ValueError("freq_steps must be sorted ascending")
        if any(not 0.0 < s <= 1.5 for s in self.freq_steps):
            raise ValueError("freq_steps must lie in (0, 1.5]")
        if self.freq_steps[-1] != 1.0:
            raise ValueError("the highest freq_step must be 1.0 (nominal)")


@dataclass(frozen=True)
class DiskSpec:
    """A spinning disk (the paper's nodes have a 298 GB HDD).

    ``seek_time`` is charged per operation that is not sequential with
    the previous one, which is how interleaved recovery reads and
    re-replication writes contend (Fig. 12 discussion).
    """

    capacity_bytes: int = 298 * GB
    sequential_bandwidth: float = 120 * MB  # bytes/second
    seek_time: float = 8e-3  # seconds, per non-sequential op

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise ValueError("disk capacity must be positive")
        if self.sequential_bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        if self.seek_time < 0:
            raise ValueError("seek time cannot be negative")


@dataclass(frozen=True)
class NicSpec:
    """A network transport: one-way latency plus serialization bandwidth."""

    name: str
    one_way_latency: float  # seconds
    bandwidth: float  # bytes/second

    def __post_init__(self):
        if self.one_way_latency < 0:
            raise ValueError("latency cannot be negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")


# RAMCloud on Infiniband achieves ~5 µs round-trip reads; the paper uses
# the Infiniband transport exclusively (§III-B).
INFINIBAND_20G = NicSpec(name="infiniband-20g", one_way_latency=2.0e-6,
                         bandwidth=2.3 * GB)
GIGABIT_ETHERNET = NicSpec(name="gigabit-ethernet", one_way_latency=30.0e-6,
                           bandwidth=118 * MB)


@dataclass(frozen=True)
class PowerSpec:
    """Linear utilization→watts model with a disk-activity adder.

    ``watts(util_pct) = idle_watts + slope_watts_per_pct * util_pct``
    (+ ``disk_active_watts`` while the disk head is busy).

    Two optional knobs extend the model for the power-management
    subsystem (docs/POWER.md) without disturbing the paper calibration:

    * **DVFS** — at a reduced frequency ratio ``f`` the *dynamic* term
      (the utilization slope) scales with ``f ** dvfs_exponent``,
      following the ≈f·V² CMOS scaling Lang et al. measure on server
      parts; the idle floor (fans, PSU losses, DRAM refresh, uncore)
      does not scale.  At ``freq_ratio=1.0`` the formula is
      bit-identical to the paper's linear fit.
    * **Core parking** — each core in a deep C-state (power-gated)
      drops ``parked_core_watts`` from the floor.  Nehalem-class deep
      C-states save a few watts per core below the C1 idle the 57.5 W
      anchor already includes.
    """

    idle_watts: float = 57.5
    slope_watts_per_pct: float = 0.69
    disk_active_watts: float = 6.0
    # Exponent on the frequency ratio applied to the dynamic (slope)
    # term; ≈2.2 approximates f·V² with the shallow voltage scaling of
    # server SpeedStep ranges.
    dvfs_exponent: float = 2.2
    # Watts saved per power-gated (parked) core, below the idle floor.
    parked_core_watts: float = 2.5

    def watts(self, util_pct: float, disk_active: bool = False,
              freq_ratio: float = 1.0, parked_cores: int = 0) -> float:
        """Node power draw at the given CPU utilization.

        ``freq_ratio`` is the current DVFS ratio (1.0 = nominal);
        ``parked_cores`` the number of power-gated cores.  With the
        defaults the return value is bit-identical to the original
        two-argument calibration, so every paper reproduction is
        unaffected unless a governor actually moves these knobs.
        """
        if not 0.0 <= util_pct <= 100.0 + 1e-9:
            raise ValueError(f"utilization {util_pct} outside [0, 100]")
        base = self.idle_watts + self.slope_watts_per_pct * util_pct
        if freq_ratio != 1.0:
            if not 0.0 < freq_ratio <= 1.5:
                raise ValueError(f"freq_ratio {freq_ratio} outside (0, 1.5]")
            base = (self.idle_watts + self.slope_watts_per_pct * util_pct
                    * freq_ratio ** self.dvfs_exponent)
        if parked_cores:
            if parked_cores < 0:
                raise ValueError("parked_cores cannot be negative")
            base = max(base - parked_cores * self.parked_core_watts, 0.0)
        return base + (self.disk_active_watts if disk_active else 0.0)


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine: the unit the cluster is built from."""

    cpu: CpuSpec = field(default_factory=CpuSpec)
    dram_bytes: int = 16 * GB
    disk: DiskSpec = field(default_factory=DiskSpec)
    nic: NicSpec = INFINIBAND_20G
    power: PowerSpec = field(default_factory=PowerSpec)

    def __post_init__(self):
        if self.dram_bytes <= 0:
            raise ValueError("dram_bytes must be positive")


GRID5000_NANCY_NODE = MachineSpec()
