"""Per-node power metering — the simulated PDU.

The paper (§III-B): "40 of these nodes are equipped with Power
Distribution Units (PDUs), which allow to retrieve power consumption
through an SNMP request. Each PDU is mapped to a single machine ... We
run a script on each machine which queries the power consumption value
from its corresponding PDU every second."

:class:`PowerModel` converts the last sampling interval's CPU
utilization (plus disk activity) into watts using the calibrated
:class:`~repro.hardware.specs.PowerSpec`, and records a 1 Hz watts time
series exactly like the paper's script.
"""

from __future__ import annotations

from typing import Optional

from repro.hardware.specs import PowerSpec
from repro.sim.kernel import Simulator
from repro.sim.monitor import TimeSeries

__all__ = ["PowerModel"]


class PowerModel:
    """Computes and samples a node's power draw.

    Sampling is pull-based: the owning :class:`~repro.hardware.node.Node`
    starts a 1 Hz sampler process that calls :meth:`sample`.
    """

    def __init__(self, sim: Simulator, spec: PowerSpec, cpu, disk,
                 name: str = ""):
        self.sim = sim
        self.spec = spec
        self.cpu = cpu
        self.disk = disk
        self.name = name
        self.series = TimeSeries(name=f"{name}:watts")
        self._last_io = (0, 0)
        # Set when the machine is physically powered down (elastic
        # scale-down); the PDU then reads zero.
        self.powered_off = False

    def instantaneous_watts(self, util_pct: Optional[float] = None) -> float:
        """Watts for a given utilization (defaults to since-last-mark)."""
        if self.powered_off:
            return 0.0
        if util_pct is None:
            util_pct = self.cpu.utilization_since_mark()
        return self.spec.watts(min(util_pct, 100.0),
                               disk_active=self.disk.busy,
                               freq_ratio=self.cpu.frequency_ratio,
                               parked_cores=self.cpu.parked_cores)

    def sample(self) -> float:
        """One PDU reading: average power over the interval since the
        previous reading, derived from CPU utilization and disk activity
        in that interval."""
        if self.powered_off:
            self.cpu.mark()
            self.series.record(self.sim.now, 0.0)
            return 0.0
        util = self.cpu.utilization_since_mark()
        self.cpu.mark()
        reads, writes = self.disk.io_counters()
        io_delta = (reads - self._last_io[0]) + (writes - self._last_io[1])
        self._last_io = (reads, writes)
        disk_active = io_delta > 0 or self.disk.busy
        # DVFS ratio and parked-core count are read at sample time (the
        # PDU sees the P-/C-state currently in effect; governors change
        # state on scales much coarser than the sampling interval).
        watts = self.spec.watts(min(util, 100.0), disk_active=disk_active,
                                freq_ratio=self.cpu.frequency_ratio,
                                parked_cores=self.cpu.parked_cores)
        self.series.record(self.sim.now, watts)
        return watts

    def energy_joules(self) -> float:
        """Total energy over the recorded trace (trapezoidal integral),
        which is how the paper computes total energy consumed (§V)."""
        return self.series.integral()

    def average_watts(self) -> float:
        """Mean of the recorded PDU samples.

        The sampler runs at a fixed cadence with boundary samples at
        metering start/stop, so the plain sample mean matches the
        time-weighted mean; use ``series.time_weighted_mean()`` when
        combining traces recorded at different intervals.
        """
        return self.series.mean()
