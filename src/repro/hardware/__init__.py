"""Simulated machine substrate.

The paper runs on Grid'5000 Nancy nodes (1× Intel Xeon X3440, 4 cores,
16 GB RAM, 298 GB HDD, Infiniband-20G + GigE, per-machine PDU).  This
package provides the simulated equivalent: multi-core CPUs with
utilization accounting, an HDD model with head contention, DRAM/disk
capacity tracking, NIC transports, and a calibrated utilization→watts
power model.
"""

from repro.hardware.specs import (
    CpuSpec,
    DiskSpec,
    GRID5000_NANCY_NODE,
    MachineSpec,
    NicSpec,
    PowerSpec,
)
from repro.hardware.cpu import Cpu
from repro.hardware.disk import Disk
from repro.hardware.power import PowerModel
from repro.hardware.node import Node

__all__ = [
    "Cpu",
    "CpuSpec",
    "Disk",
    "DiskSpec",
    "GRID5000_NANCY_NODE",
    "MachineSpec",
    "NicSpec",
    "Node",
    "PowerModel",
    "PowerSpec",
]
