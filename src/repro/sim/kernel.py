"""The discrete-event simulation kernel.

Processes are Python generators that ``yield`` :class:`Event` objects.
When a yielded event triggers, the process resumes; if the event failed,
the failure's exception is thrown into the generator.  Simulated time is
a float in **seconds**.

Design notes
------------
* The scheduler is a binary heap of ``(time, priority, seq, event)``
  tuples.  ``seq`` is a monotonically increasing tie-breaker, which makes
  the whole simulation deterministic: two events scheduled for the same
  instant fire in scheduling order.
* Events are single-shot.  Once triggered they hold a value (or an
  exception) forever, and late waiters resume immediately.
* :class:`Process` is itself an event that triggers when the generator
  returns (value = generator return value) or raises.
"""

from __future__ import annotations

import heapq
import os
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]

# Scheduling priorities: URGENT events (resource handoffs) fire before
# NORMAL events scheduled for the same instant, which keeps resource
# accounting exact at time boundaries.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class SimulationError(Exception):
    """Raised for kernel misuse (double triggering, running without events)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries whatever the interruptor passed in —
    in this reproduction, typically a :class:`~repro.ramcloud.failure.ServerCrash`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A single-shot occurrence in simulated time.

    An event is *triggered* when :meth:`succeed` or :meth:`fail` is
    called; its callbacks then run at the current simulation instant.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled",
                 "__weakref__")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        if sim._sanitizer is not None:
            sim._sanitizer.event_created(self)

    @property
    def triggered(self) -> bool:
        """True once succeed() or fail() was called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True for a successful trigger; raises if still pending."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception; raises if pending."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger successfully; waiters resume with ``value``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined self.sim._schedule(self, PRIORITY_NORMAL, 0.0): an
        # untriggered event is never scheduled, so the guard is moot and
        # this runs once per event — the kernel's hottest line.
        sim = self.sim
        self._scheduled = True
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._heap, (sim.now, PRIORITY_NORMAL, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger with an error; ``exception`` is thrown into waiters."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        sim = self.sim
        self._scheduled = True
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._heap, (sim.now, PRIORITY_NORMAL, seq, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs immediately if already processed."""
        if self.callbacks is None:
            # Already processed: deliver on the spot, preserving "late
            # waiters resume immediately" semantics.
            callback(self)
        else:
            self.callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self._ok else ("failed" if self._ok is False else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Event.__init__ and sim._schedule inlined: a timeout is born
        # triggered and scheduled, and this constructor runs for roughly
        # half of all events in a YCSB run.
        self.sim = sim
        self.callbacks = []
        self.delay = delay
        self._ok = True
        self._value = value
        self._scheduled = True
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._heap, (sim.now + delay, PRIORITY_NORMAL, seq, self))
        if sim._sanitizer is not None:
            sim._sanitizer.event_created(self)


class _ConditionValue:
    """Mapping from the constituent events of a condition to their values."""

    __slots__ = ("events",)

    def __init__(self, events: Tuple[Event, ...]):
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> List[Any]:
        """Values of the triggered constituent events, in order."""
        return [e.value for e in self.events if e.triggered]


class AllOf(Event):
    """Triggers when every constituent event has triggered.

    Fails as soon as any constituent fails (fail-fast), mirroring a
    master RPC fan-out where one backup error aborts the wait.
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = tuple(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed(_ConditionValue(self._events))
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(_ConditionValue(self._events))


class AnyOf(Event):
    """Triggers when the first constituent event triggers (ok or failed)."""

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = tuple(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev.ok:
            self.succeed(_ConditionValue(self._events))
        else:
            self.fail(ev.value)


class Process(Event):
    """A generator-based simulated process.

    The process triggers (as an event) when its generator returns; the
    event value is the generator's return value.  If the generator
    raises, the process fails with that exception — unless nothing is
    watching, in which case the exception propagates out of
    :meth:`Simulator.run` so bugs never pass silently.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        if sim._sanitizer is not None:
            sim._sanitizer.register_process(self)
        # Kick off at the current instant (an already-succeeded bootstrap
        # event carrying our _resume, built without the constructor and
        # succeed() detours).
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._scheduled = True
        bootstrap.callbacks.append(self._resume)
        seq = sim._seq + 1
        sim._seq = seq
        heappush(sim._heap, (sim.now, PRIORITY_NORMAL, seq, bootstrap))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a dead process is a no-op, which makes crash
        injection idempotent.
        """
        if not self.is_alive:
            return
        self._interrupts.append(Interrupt(cause))
        wakeup = Event(self.sim)
        wakeup.succeed()
        wakeup.add_callback(self._deliver_interrupt)

    def _deliver_interrupt(self, _ev: Event) -> None:
        if not self.is_alive or not self._interrupts:
            return
        interrupt = self._interrupts.pop(0)
        # Detach from whatever we were waiting on; the stale event may
        # still fire later, _resume ignores it via the _waiting_on check.
        self._waiting_on = None
        self._step(interrupt, throw=True)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # stale wakeup from an event we were detached from
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        # The single hottest function in the kernel: one call per process
        # resumption.  The sanitizer hooks live in _step_debug so the
        # production path pays one None check instead of four.
        if self.sim._sanitizer is not None:
            self._step_debug(value, throw)
            return
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process cleanly: this
            # is the normal way a crashed server's threads die.
            self.succeed(None)
            return
        except BaseException as exc:
            if self.callbacks:
                self.fail(exc)
            else:
                # Nobody is watching this process: surface the crash.
                self.sim._crash(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self.sim._crash(error)
            return
        self._waiting_on = target
        # target.add_callback(self._resume), inlined:
        if target.callbacks is None:
            self._resume(target)
        else:
            target.callbacks.append(self._resume)

    def _step_debug(self, value: Any, throw: bool) -> None:
        """The sanitizer-instrumented twin of :meth:`_step` (debug mode)."""
        sanitizer = self.sim._sanitizer
        sanitizer.begin_step(self)
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            sanitizer.process_died(self)
            return
        except Interrupt:
            self.succeed(None)
            sanitizer.process_died(self)
            return
        except BaseException as exc:
            if self.callbacks:
                self.fail(exc)
            else:
                self.sim._crash(exc)
            sanitizer.process_died(self)
            return
        finally:
            sanitizer.end_step()
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self.sim._crash(error)
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The event loop: owns simulated time and the scheduling heap.

    ``debug=True`` attaches the runtime sanitizers
    (:mod:`repro.sim.sanitize`): event-leak detection when the schedule
    drains, lock-held-at-process-death checks, and wait-graph dumps on
    deadlock.  The default (``debug=None``) consults the
    ``REPRO_SIM_DEBUG`` environment variable — the test suite turns it
    on globally; production runs pay only a ``None`` check.
    """

    __slots__ = ("debug", "_sanitizer", "now", "_heap", "_seq", "_fatal",
                 "tracer", "__weakref__")

    def __init__(self, debug: Optional[bool] = None):
        if debug is None:
            debug = os.environ.get("REPRO_SIM_DEBUG", "0") not in ("", "0")  # simlint: disable=DET002 construction-time default; the sweep pins this knob per cell
        self.debug = bool(debug)
        if self.debug:
            from repro.sim.sanitize import Sanitizer
            self._sanitizer: Optional["Sanitizer"] = Sanitizer(self)
        else:
            self._sanitizer = None
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._fatal: Optional[BaseException] = None
        # Optional callback(now, event), invoked as each event fires —
        # see repro.sim.trace.Tracer.
        self.tracer: Optional[Callable[[float, Event], None]] = None

    # -- scheduling ---------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    def _crash(self, exc: BaseException) -> None:
        """Record a fatal error; re-raised from :meth:`run`/:meth:`step`."""
        if self._fatal is None:
            self._fatal = exc

    # -- public factory helpers ---------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a generator as a simulated process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when every given event has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires when the first given event fires."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("step() with an empty schedule")
        when, _prio, _seq, event = heappop(self._heap)
        if when < self.now:
            raise SimulationError("scheduler heap corrupted: time went backwards")
        self.now = when
        if self.tracer is not None:
            self.tracer(when, event)
        # event._run_callbacks(), inlined (once per event processed):
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(event)
        if self._fatal is not None:
            exc, self._fatal = self._fatal, None
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or ``until`` (exclusive of later events).

        When ``until`` is given, ``now`` is advanced to exactly ``until``
        even if no event falls on it, so back-to-back ``run(until=...)``
        calls see monotonically increasing time.
        """
        if until is None:
            while self._heap:
                self.step()
            if self._sanitizer is not None:
                self._sanitizer.check_leaks()
            return
        if until < self.now:
            raise ValueError(f"run(until={until}) is in the past (now={self.now})")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self.now = until

    def run_process(self, process: Process, until: Optional[float] = None) -> Any:
        """Run until ``process`` finishes; return its value or raise its error."""
        while process.is_alive:
            if until is not None and self.peek() > until:
                raise SimulationError(
                    f"process {process.name!r} did not finish by t={until}"
                )
            if not self._heap:
                message = (f"deadlock: process {process.name!r} alive "
                           f"with empty schedule")
                if self._sanitizer is not None:
                    message += ("\nwait-for graph:\n"
                                + self._sanitizer.wait_graph())
                raise SimulationError(message)
            self.step()
        if not process.ok:
            raise process.value
        return process.value
