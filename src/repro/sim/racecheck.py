"""Runtime lockset race detection (``Simulator(debug=True)``).

In this cooperative DES every ``yield`` is a preemption point: state
that must change atomically (the hash table entry *and* the log entry,
the tablet map *and* the owners) is only safe if no yield separates the
touches — or if a lock token is held across them.  The static side
(:mod:`repro.analyze`, SIM006–SIM008) proves what it can from the
source; this module catches the rest at run time, turning the whole
test suite into a race-detection corpus.

How it works
------------
Hot structures carry a :class:`Shared` handle and record each touch::

    self.race.read(f"t{table_id}/{key}")     # before reading
    self.race.write(f"t{table_id}/{key}")    # before mutating

Each access records the running process, its *activation* (which step
of the process — two accesses in different activations have a yield
between them) and the set of resource-request tokens the process holds.
A report fires when one process touches a location in two different
activations, at least one touch is a write, **no token is held across
the gap**, and another process wrote the location in between — i.e. the
classic check-then-act race, observed rather than conjectured.

Two refinements keep the signal clean:

* ``relaxed=True`` marks optimistic accesses that are revalidated under
  a lock (the cleaner's candidate scan, client map snapshots).  Relaxed
  accesses never pair up, though relaxed *writes* still count as
  intervening evidence for other processes' pairs.
* :func:`task_boundary` resets pairing for a long-lived loop that
  serves unrelated work items (a worker thread between requests):
  touches from different tasks are logically unrelated and must not
  pair.

Declared guards
---------------
``@guarded_by("log_lock")`` on a class declares which lock protects its
mutations; :meth:`RaceDetector.track` resolves the attribute on the
owning object (a :class:`~repro.sim.resources.Mutex` or ``Resource``)
and every *strict* write is then checked to hold that lock — a
stronger, intent-level check than the pairwise detector.

Reports are appended in execution order (deterministic under a fixed
seed), de-duplicated, and surfaced as :class:`RaceWarning` — the run is
not aborted, matching the other sanitizers.  Outside debug mode the
structures hold the :data:`NULL_SHARED` singleton and each access costs
one no-op method call.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

from repro.sim.sanitize import SanitizerWarning

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.sim.kernel import Process, Simulator
    from repro.sim.resources import Request

__all__ = ["RaceDetector", "RaceWarning", "Shared", "NULL_SHARED",
           "guarded_by", "shared", "task_boundary"]


class RaceWarning(SanitizerWarning):
    """A cross-yield unsynchronized access pair detected at run time."""


def guarded_by(*lock_attrs: str):
    """Class decorator declaring which lock attribute(s) guard writes.

    The attribute is resolved on the *owner* passed to
    :meth:`RaceDetector.track` (falling back to the object itself), so
    a per-server structure can be guarded by the server's lock::

        @guarded_by("log_lock")
        class HashTable: ...
    """
    def decorate(cls):
        cls.__guarded_by__ = tuple(lock_attrs)
        return cls
    return decorate


class _NullShared:
    """The no-op handle installed when race detection is off."""

    __slots__ = ()

    #: False: recording is off, so hot paths may skip building access
    #: labels entirely (``if race.enabled: race.write(f"...")``) — an
    #: eager f-string on a debug-disabled path is pure waste (PERF005).
    enabled = False

    def read(self, field: str, relaxed: bool = False) -> None:
        """Record nothing."""

    def write(self, field: str, relaxed: bool = False) -> None:
        """Record nothing."""


NULL_SHARED = _NullShared()


class Shared:
    """One tracked structure: a label plus its resolved guard locks."""

    __slots__ = ("detector", "label", "guards")

    #: True: accesses are recorded (the debug-mode counterpart of
    #: :attr:`_NullShared.enabled`).
    enabled = True

    def __init__(self, detector: "RaceDetector", label: str,
                 guards: Tuple[Tuple[str, object], ...]):
        self.detector = detector
        self.label = label
        self.guards = guards  # (attr_name, underlying Resource)

    def read(self, field: str, relaxed: bool = False) -> None:
        """Record a read of ``label[field]`` by the running process."""
        self.detector.record(self, field, "read", relaxed)

    def write(self, field: str, relaxed: bool = False) -> None:
        """Record a write of ``label[field]`` by the running process."""
        self.detector.record(self, field, "write", relaxed)


def shared(sim: "Simulator", label: str, obj: object = None,
           owner: object = None):
    """A :class:`Shared` handle for ``sim``, or :data:`NULL_SHARED`
    outside debug mode.  ``obj``'s class may declare ``@guarded_by``;
    lock attributes are resolved on ``owner`` (default ``obj``)."""
    sanitizer = getattr(sim, "_sanitizer", None)
    if sanitizer is None:
        return NULL_SHARED
    return sanitizer.races.track(label, obj=obj, owner=owner)


def task_boundary(sim: "Simulator") -> None:
    """Mark the running process as starting an unrelated work item
    (a worker loop picking up its next request): earlier accesses no
    longer pair with later ones.  No-op outside debug mode."""
    sanitizer = getattr(sim, "_sanitizer", None)
    if sanitizer is not None:
        sanitizer.races.task_boundary()


class _Access:
    """One recorded touch of a location by one process."""

    __slots__ = ("kind", "activation", "task", "locks", "when", "proc_name")

    def __init__(self, kind: str, activation: int, task: int,
                 locks: frozenset, when: float, proc_name: str):
        self.kind = kind
        self.activation = activation
        self.task = task
        self.locks = locks
        self.when = when
        self.proc_name = proc_name


class _Location:
    """Per-(label, field) access history."""

    __slots__ = ("last", "writes")

    def __init__(self):
        # Last strict access per process (pair candidates).
        self.last: Dict[object, _Access] = {}
        # Recent writes by anyone (intervening-write evidence).  A short
        # window suffices: the intervening write we need happened between
        # two activations of one process, which is never far in the past.
        self.writes: Deque[_Access] = deque(maxlen=8)


class RaceDetector:
    """The debug-mode lockset bookkeeping attached to one Simulator."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Deterministically-ordered human-readable reports (append order
        #: follows the schedule, which is seed-deterministic).
        self.reports: List[str] = []
        self._seen: Set[Tuple] = set()
        self._activation = 0
        self._current: Optional["Process"] = None
        self._current_activation = 0
        # Per-process: set of granted Request tokens, and a task counter
        # bumped by task_boundary().
        self._locksets: Dict[object, Set["Request"]] = {}
        self._tasks: Dict[object, int] = {}
        self._locations: Dict[Tuple[str, str], _Location] = {}

    # -- kernel hooks ----------------------------------------------------

    def begin_step(self, process: "Process") -> None:
        """A process generator is about to execute one step."""
        self._activation += 1
        self._current = process
        self._current_activation = self._activation

    def end_step(self) -> None:
        """The step finished; accesses no longer attributable."""
        self._current = None

    def process_died(self, process: "Process") -> None:
        """Forget per-process state (its token set can never grow)."""
        self._locksets.pop(process, None)
        self._tasks.pop(process, None)

    # -- resource hooks --------------------------------------------------

    def lock_granted(self, request: "Request") -> None:
        """A resource slot was granted; add it to the owner's lockset."""
        owner = request.owner
        if owner is not None:
            self._locksets.setdefault(owner, set()).add(request)

    def lock_released(self, request: "Request") -> None:
        """A granted slot was returned; drop it from the owner's lockset."""
        owner = request.owner
        if owner is not None:
            held = self._locksets.get(owner)
            if held is not None:
                held.discard(request)

    # -- annotation API --------------------------------------------------

    def track(self, label: str, obj: object = None,
              owner: object = None) -> Shared:
        """Create the :class:`Shared` handle for one structure,
        resolving any ``@guarded_by`` declarations on ``obj``'s class
        against ``owner`` (default: ``obj`` itself)."""
        guards = []
        declared = getattr(type(obj), "__guarded_by__", ()) if obj is not None else ()
        for attr in declared:
            holder = owner if owner is not None and hasattr(owner, attr) else obj
            lock = getattr(holder, attr, None)
            if lock is None:
                continue
            # A Mutex wraps a Resource; requests reference the Resource.
            resource = getattr(lock, "_resource", lock)
            guards.append((attr, resource))
        return Shared(self, label, tuple(guards))

    def task_boundary(self) -> None:
        """See :func:`task_boundary`."""
        proc = self._current
        if proc is not None:
            self._tasks[proc] = self._tasks.get(proc, 0) + 1

    # -- the detector ----------------------------------------------------

    def record(self, handle: Shared, field: str, kind: str,
               relaxed: bool) -> None:
        """Record one access and check it against the history."""
        proc = self._current
        if proc is None:
            return  # setup / bulk-load outside any process: single-threaded
        location = self._locations.get((handle.label, field))
        if location is None:
            location = _Location()
            self._locations[(handle.label, field)] = location
        access = _Access(kind, self._current_activation,
                         self._tasks.get(proc, 0),
                         frozenset(self._locksets.get(proc, ())),
                         self.sim.now, proc.name)
        if relaxed:
            # Optimistic access (revalidated under a lock): never pairs,
            # but a relaxed write is still evidence for other processes.
            if kind == "write":
                location.writes.append(access)
            return
        if kind == "write" and handle.guards:
            self._check_guard(handle, field, access)
        previous = location.last.get(proc)
        if previous is not None:
            self._check_pair(handle, field, location, previous, access)
        location.last[proc] = access
        if kind == "write":
            location.writes.append(access)

    def _check_guard(self, handle: Shared, field: str,
                     access: _Access) -> None:
        """A strict write to a guarded structure must hold a declared lock."""
        for req in access.locks:
            for _attr, resource in handle.guards:
                if req.resource is resource:
                    return
        names = ", ".join(attr for attr, _res in handle.guards)
        key = ("guard", handle.label, field, access.proc_name)
        if key in self._seen:
            return
        self._seen.add(key)
        self._report(
            f"unguarded write to {handle.label}[{field}]: process "
            f"{access.proc_name!r} holds none of the declared guard(s) "
            f"[{names}] (@guarded_by) at t={access.when:.6f}")

    def _check_pair(self, handle: Shared, field: str, location: _Location,
                    previous: _Access, access: _Access) -> None:
        """The lockset check: same process, cross-yield, same task, at
        least one write, no token held across, an intervening write."""
        if previous.activation >= access.activation:
            return  # same step: atomic in a cooperative kernel
        if previous.task != access.task:
            return  # unrelated work items of a long-lived loop
        if previous.kind != "write" and access.kind != "write":
            return  # read/read: re-reading is the fix, not the bug
        if previous.locks & access.locks:
            return  # some token held across the yield: atomic section
        for write in location.writes:
            if (write.proc_name != access.proc_name
                    and previous.activation < write.activation
                    < access.activation):
                key = (handle.label, field, access.proc_name,
                       previous.kind, access.kind, write.proc_name)
                if key in self._seen:
                    return
                self._seen.add(key)
                self._report(
                    f"race on {handle.label}[{field}]: process "
                    f"{access.proc_name!r} {previous.kind} at "
                    f"t={previous.when:.6f} then {access.kind} at "
                    f"t={access.when:.6f} with no lock held across the "
                    f"yield; intervening write by {write.proc_name!r} at "
                    f"t={write.when:.6f}")
                return

    def _report(self, message: str) -> None:
        self.reports.append(message)
        warnings.warn(message, RaceWarning, stacklevel=5)
