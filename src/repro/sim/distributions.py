"""Seeded random streams.

Every stochastic component (key choice, backup selection, service-time
jitter, crash victim choice) draws from its own named stream derived
from the experiment seed, so experiments are reproducible and
individually perturbable.
"""

from __future__ import annotations

import math
import random  # simlint: ignore[SIM003] — RandomStream IS the sanctioned wrapper
from typing import Optional, Sequence, TypeVar

__all__ = ["RandomStream", "ZipfianGenerator", "ScrambledZipfianGenerator"]

T = TypeVar("T")

# Fixed YCSB constants for scrambled-zipfian (from the YCSB source).
ZIPFIAN_CONSTANT = 0.99
FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
FNV_PRIME_64 = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """64-bit FNV-1a hash of an integer, as YCSB uses to scramble keys."""
    h = FNV_OFFSET_BASIS_64
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        h ^= octet
        h = (h * FNV_PRIME_64) & 0xFFFFFFFFFFFFFFFF
    return h


class RandomStream:
    """A named, seeded RNG with the distributions this project needs."""

    __slots__ = ("name", "_rng")

    def __init__(self, seed: int, name: str = ""):
        self.name = name
        # Derive a stream-specific seed so streams with the same base
        # seed but different names are independent.
        self._rng = random.Random(f"{seed}\x00{name}")  # simlint: ignore[SIM003]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in [low, high)."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def exponential(self, mean: float) -> float:
        """Exponentially-distributed positive float with ``mean``."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def normal(self, mean: float, stddev: float) -> float:
        """Gaussian sample."""
        return self._rng.gauss(mean, stddev)

    def lognormal_jitter(self, mean: float, cv: float) -> float:
        """A positive jittered value with the given mean and coefficient
        of variation — used for service-time noise."""
        if cv <= 0:
            return mean
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return self._rng.lognormvariate(mu, math.sqrt(sigma2))

    def choice(self, seq: Sequence[T]) -> T:
        """One uniformly-chosen element."""
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        """``k`` distinct uniformly-chosen elements."""
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(seq)

    def fork(self, name: str) -> "RandomStream":
        """Derive an independent child stream."""
        child = RandomStream(0, name)
        child._rng = random.Random(f"{self._rng.random()}\x00{name}")  # simlint: ignore[SIM003]
        return child


class ZipfianGenerator:
    """Zipfian-distributed integers in [0, n), YCSB/Gray et al. algorithm.

    Item 0 is the most popular.  ``theta`` defaults to YCSB's 0.99.
    """

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT,
                 stream: Optional[RandomStream] = None):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.theta = theta
        self._stream = stream or RandomStream(0, "zipfian")
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        if n > 2:
            self._eta = ((1.0 - math.pow(2.0 / n, 1.0 - theta))
                         / (1.0 - self._zeta2 / self._zetan))
        else:
            # For n <= 2 the first two branches of next() cover the whole
            # unit interval, so the tail formula (and eta) is unreachable.
            self._eta = 0.0

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))

    def next(self) -> int:
        """The next zipf-distributed index in [0, n)."""
        u = self._stream.uniform()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + math.pow(0.5, self.theta):
            return 1
        return int(self.n * math.pow(self._eta * u - self._eta + 1.0, self._alpha))


class ScrambledZipfianGenerator:
    """Zipfian popularity spread over the keyspace by FNV hashing, as in
    YCSB's default request distribution option ``zipfian``."""

    def __init__(self, n: int, stream: Optional[RandomStream] = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, stream=stream)

    def next(self) -> int:
        """The next scrambled index in [0, n)."""
        return fnv1a_64(self._zipf.next()) % self.n
