"""Deterministic discrete-event simulation kernel.

This package is the foundation of the reproduction: every hardware
component (CPU cores, disks, NICs), every RAMCloud server thread, and
every YCSB client is a :class:`~repro.sim.kernel.Process` running inside
a single :class:`~repro.sim.kernel.Simulator`.

The kernel is intentionally simpy-like (generator-based processes that
``yield`` events) but self-contained, deterministic given a seed, and
tuned for the event volumes these experiments generate.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import (
    Container,
    Mutex,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.monitor import Counter, Gauge, Sampler, TimeSeries, UtilizationTracker
from repro.sim.distributions import RandomStream

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Counter",
    "Event",
    "Gauge",
    "Interrupt",
    "Mutex",
    "PriorityResource",
    "Process",
    "RandomStream",
    "Resource",
    "Sampler",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeSeries",
    "Timeout",
    "UtilizationTracker",
]
