"""Measurement probes.

The paper samples per-node power once per second via SNMP and reports
averaged CPU usage per node.  These probes provide the simulated
equivalents: time series, periodic samplers, and busy-time integrators
that convert core occupancy into per-interval utilization percentages.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim.kernel import Simulator

__all__ = ["TimeSeries", "Gauge", "Counter", "Sampler", "UtilizationTracker"]


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def __len__(self) -> int:
        return len(self.values)

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time series {self.name!r}: non-monotonic sample at {time}"
            )
        self.times.append(time)
        self.values.append(value)

    def mean(self) -> float:
        """Arithmetic mean of the sampled values."""
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def min(self) -> float:
        """Smallest sampled value."""
        return min(self.values)

    def max(self) -> float:
        """Largest sampled value."""
        return max(self.values)

    def integral(self) -> float:
        """Trapezoidal integral of value over time (e.g. watts → joules).

        **Contract**: the integral covers exactly ``[times[0],
        times[-1]]`` and linearly interpolates *between consecutive
        samples* — including across gaps.  A producer that only samples
        while "something is happening" therefore silently misrepresents
        idle stretches: the gap is integrated as a straight line between
        the two active endpoints, not as the true idle level, and
        anything before the first or after the last sample contributes
        nothing at all.  Producers must emit at a fixed cadence even
        when the value is unchanged, plus boundary samples at start and
        stop of the measured window — :class:`Sampler` and
        :meth:`~repro.hardware.node.Node.start_metering` do exactly
        this.
        """
        total = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total += 0.5 * (self.values[i] + self.values[i - 1]) * dt
        return total

    def time_weighted_mean(self) -> float:
        """Mean value weighted by sample spacing (``integral / span``).

        Equals :meth:`mean` for evenly spaced samples; prefer it when
        the cadence varied (restarted metering, mixed intervals), where
        the plain sample mean over-weights densely sampled stretches.
        Falls back to :meth:`mean` when the series spans zero time.
        """
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return self.mean()
        return self.integral() / span

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= t <= end``."""
        out = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if start <= t <= end:
                out.record(t, v)
        return out

    def items(self) -> Sequence[Tuple[float, float]]:
        """The samples as ``[(time, value), ...]``."""
        return list(zip(self.times, self.values))


class Gauge:
    """A piecewise-constant instantaneous value with time-weighted stats."""

    __slots__ = ("sim", "name", "value", "_last_change", "_weighted_sum",
                 "_start")

    def __init__(self, sim: Simulator, initial: float = 0.0, name: str = ""):
        self.sim = sim
        self.name = name
        self.value = initial
        self._last_change = sim.now
        self._weighted_sum = 0.0
        self._start = sim.now

    def set(self, value: float) -> None:
        """Change the gauge, accruing time at the previous value."""
        now = self.sim.now
        self._weighted_sum += self.value * (now - self._last_change)
        self.value = value
        self._last_change = now

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta``."""
        self.set(self.value + delta)

    def time_average(self) -> float:
        """Time-weighted mean since creation."""
        elapsed = self.sim.now - self._start
        if elapsed <= 0:
            return self.value
        pending = self.value * (self.sim.now - self._last_change)
        return (self._weighted_sum + pending) / elapsed


class Counter:
    """A monotonically increasing event count with rate helpers."""

    __slots__ = ("sim", "name", "count", "_start")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.count = 0
        self._start = sim.now

    def increment(self, by: int = 1) -> None:
        """Count ``by`` more events."""
        if by < 0:
            raise ValueError("counters only go up")
        self.count += by

    def rate(self) -> float:
        """Events per second since creation."""
        elapsed = self.sim.now - self._start
        return self.count / elapsed if elapsed > 0 else 0.0


class Sampler:
    """Calls ``probe()`` every ``interval`` seconds, recording the result.

    This is the simulated equivalent of the paper's PDU-polling script:
    "We run a script on each machine which queries the power consumption
    value from its corresponding PDU every second."

    The sampler upholds :meth:`TimeSeries.integral`'s contract: it
    records at a fixed cadence *regardless of whether the value
    changed* (an idle gap is a run of identical samples, never a hole)
    and :meth:`stop` records one final boundary sample so the tail of
    the window is not dropped from the integral.
    """

    __slots__ = ("sim", "interval", "probe", "series", "_stopped", "_process")

    def __init__(self, sim: Simulator, interval: float,
                 probe: Callable[[], float], name: str = ""):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.probe = probe
        self.series = TimeSeries(name)
        self._stopped = False
        self._process = sim.process(self._run(), name=f"sampler:{name}")

    def _run(self):
        while not self._stopped:
            self.series.record(self.sim.now, self.probe())
            yield self.sim.timeout(self.interval)

    def stop(self) -> None:
        """Halt sampling permanently, recording a final boundary sample
        (unless one already landed at this instant)."""
        self._stopped = True
        if not self.series.times or self.series.times[-1] < self.sim.now:
            self.series.record(self.sim.now, self.probe())
        self._process.interrupt("sampler stopped")


class UtilizationTracker:
    """Integrates busy capacity over time to produce utilization percentages.

    A CPU with ``capacity`` cores reports ``busy`` ∈ [0, capacity] via
    :meth:`set_busy`; :meth:`utilization_since` returns the mean busy
    fraction (0–100 %) over a window, which is what the paper's Table I
    reports per node.
    """

    __slots__ = ("sim", "capacity", "name", "_busy", "_last_change",
                 "_busy_time", "_marks")

    def __init__(self, sim: Simulator, capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._busy = 0.0
        self._last_change = sim.now
        self._busy_time = 0.0  # core-seconds
        self._marks: List[Tuple[float, float]] = []  # (time, cumulative busy-time)

    @property
    def busy(self) -> float:
        """Currently-busy capacity."""
        return self._busy

    def set_busy(self, busy: float) -> None:
        """Change the busy level, accruing busy-time at the old one."""
        now = self.sim.now
        self._busy_time += self._busy * (now - self._last_change)
        self._last_change = now
        if 0.0 <= busy <= self.capacity:
            # In-range fast path (every caller in practice): the clamp
            # below is the identity here, skip it.
            self._busy = busy
            return
        if busy < -1e-9 or busy > self.capacity + 1e-9:
            raise ValueError(
                f"{self.name!r}: busy {busy} outside [0, {self.capacity}]"
            )
        self._busy = min(max(busy, 0.0), self.capacity)

    def add_busy(self, delta: float) -> None:
        """Adjust the busy level by ``delta``."""
        self.set_busy(self._busy + delta)

    def _cumulative(self) -> float:
        return self._busy_time + self._busy * (self.sim.now - self._last_change)

    def mark(self) -> None:
        """Record a checkpoint so per-interval utilization can be computed."""
        self._marks.append((self.sim.now, self._cumulative()))

    def utilization_since_mark(self) -> float:
        """Mean utilization (percent) since the previous mark (or t=0)."""
        if self._marks:
            t0, b0 = self._marks[-1]
        else:
            t0, b0 = 0.0, 0.0
        elapsed = self.sim.now - t0
        if elapsed <= 0:
            return 100.0 * self._busy / self.capacity
        return 100.0 * (self._cumulative() - b0) / (elapsed * self.capacity)

    def utilization_between(self, start: float, end: float,
                            marks: Optional[Sequence[Tuple[float, float]]] = None
                            ) -> float:
        """Mean utilization (percent) between two previously marked times.

        Requires that ``mark()`` was called at both boundary instants;
        interpolation between marks is linear in cumulative busy-time.
        """
        pts = list(marks if marks is not None else self._marks)
        pts.append((self.sim.now, self._cumulative()))
        if end <= start:
            raise ValueError("end must be after start")

        def cum_at(t: float) -> float:
            prev = (0.0, 0.0)
            for mt, mb in pts:
                if mt >= t:
                    if mt == prev[0]:
                        return mb
                    frac = (t - prev[0]) / (mt - prev[0])
                    return prev[1] + frac * (mb - prev[1])
                prev = (mt, mb)
            return prev[1]

        return 100.0 * (cum_at(end) - cum_at(start)) / ((end - start) * self.capacity)
