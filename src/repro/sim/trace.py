"""Execution tracing for debugging simulations.

Attach a :class:`Tracer` to a simulator to record which events fire
when — filtered, bounded, and cheap enough to leave on in tests:

    with Tracer(sim, name_filter="server0") as trace:
        sim.run(until=1.0)
    print(trace.format())

Traces record ``(time, kind, name)`` tuples where ``kind`` is the event
class name and ``name`` is the process name for process events (empty
otherwise).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.kernel import Process, Simulator

__all__ = ["Tracer", "TraceRecord"]

TraceRecord = Tuple[float, str, str]


class Tracer:
    """Records fired events from a simulator, optionally filtered."""

    def __init__(self, sim: Simulator, name_filter: str = "",
                 max_records: int = 100_000):
        if max_records < 1:
            raise ValueError("max_records must be positive")
        self.sim = sim
        self.name_filter = name_filter
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._attached = False

    # -- lifecycle -------------------------------------------------------

    def attach(self) -> "Tracer":
        """Start recording (one tracer per simulator)."""
        if self.sim.tracer is not None:
            raise RuntimeError("simulator already has a tracer attached")
        self.sim.tracer = self._on_event
        self._attached = True
        return self

    def detach(self) -> None:
        """Stop recording; records are kept."""
        if self._attached:
            self.sim.tracer = None
            self._attached = False

    def __enter__(self) -> "Tracer":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # -- recording ----------------------------------------------------------

    def _on_event(self, now: float, event) -> None:
        name = event.name if isinstance(event, Process) else ""
        if self.name_filter and self.name_filter not in name:
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append((now, type(event).__name__, name))

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time <= end``."""
        return [r for r in self.records if start <= r[0] <= end]

    def processes_seen(self) -> List[str]:
        """Distinct process names that fired, sorted."""
        return sorted({name for _t, _k, name in self.records if name})

    def format(self, limit: int = 50) -> str:
        """Human-readable listing of up to ``limit`` records."""
        lines = [f"{t:>12.6f}s  {kind:<8}  {name}"
                 for t, kind, name in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more")
        if self.dropped:
            lines.append(f"... {self.dropped} dropped (max_records)")
        return "\n".join(lines)
