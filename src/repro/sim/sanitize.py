"""Runtime sanitizers for the simulation kernel (``Simulator(debug=True)``).

The static linter (:mod:`repro.analyze`) catches what is visible in the
source; these sanitizers catch what only manifests at run time:

* **event leaks** — an event somebody waits on that is never triggered
  when the schedule drains: that waiter is a process silently frozen
  forever (a dropped wakeup, a forgotten ``succeed()``);
* **locks held at process death** — a process that dies (crash
  injection, unhandled error) while holding or queueing for a resource
  slot: every later acquirer deadlocks;
* **deadlock diagnostics** — when :meth:`Simulator.run_process` finds a
  live process with an empty schedule, a dump of *which* process waits
  on *what* turns an opaque error into a one-glance diagnosis.

Diagnostics are emitted as :class:`SanitizerWarning` (the simulation is
not aborted: a measurement run that is already wrong should still
finish so the warning can point at the cause).  With ``debug=False``
(the default) no sanitizer object exists and the kernel pays nothing
beyond a ``None`` check.

Enable globally with the ``REPRO_SIM_DEBUG=1`` environment variable —
the test suite does exactly that (``tests/conftest.py``).
"""

from __future__ import annotations

import warnings
import weakref
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.sim.kernel import Event, Process, Simulator

__all__ = ["Sanitizer", "SanitizerWarning"]


class SanitizerWarning(UserWarning):
    """A kernel-hygiene violation detected at run time."""


def describe_event(event: "Event") -> str:
    """A human-readable one-liner for a wait target."""
    # Imported lazily: kernel imports this module lazily too, and the
    # isinstance checks only run on debug/error paths.
    from repro.sim.kernel import Process, Timeout
    from repro.sim.resources import Request

    if event is None:
        return "nothing (runnable or just started)"
    if isinstance(event, Request):
        holder = "granted" if event.triggered else "queued"
        return (f"{type(event).__name__} on "
                f"{event.resource.name or 'resource'} ({holder})")
    if isinstance(event, Process):
        return f"process {event.name!r}"
    if isinstance(event, Timeout):
        return f"Timeout({event.delay:g}s)"
    return type(event).__name__


class Sanitizer:
    """The debug-mode bookkeeping attached to one :class:`Simulator`.

    All containers are weak: tracking never extends object lifetimes,
    so a debug run frees memory exactly like a production run.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._events: "weakref.WeakSet[Event]" = weakref.WeakSet()
        self._processes: "weakref.WeakSet[Process]" = weakref.WeakSet()
        self._resources: "weakref.WeakSet" = weakref.WeakSet()
        # The process whose generator is currently executing; requests
        # created during its step are attributed to it.
        self.current_process: Optional["Process"] = None
        # Lockset race detection over annotated shared structures
        # (imported lazily: racecheck imports SanitizerWarning from here).
        from repro.sim.racecheck import RaceDetector
        self.races = RaceDetector(sim)

    # -- step attribution (called from Process._step) --------------------

    def begin_step(self, process: "Process") -> None:
        """A process generator is about to run one step."""
        self.current_process = process
        self.races.begin_step(process)

    def end_step(self) -> None:
        """The current step finished (normally or not)."""
        self.current_process = None
        self.races.end_step()

    # -- registration hooks (called from the kernel) --------------------

    def event_created(self, event: "Event") -> None:
        """Track ``event`` for leak detection."""
        self._events.add(event)

    def register_process(self, process: "Process") -> None:
        """Track ``process`` for wait-graph dumps."""
        self._processes.add(process)

    def register_resource(self, resource) -> None:
        """Track ``resource`` for held-at-death checks."""
        self._resources.add(resource)

    # -- event-leak detection -------------------------------------------

    def leaked_events(self) -> List[Tuple["Event", List[str]]]:
        """Untriggered events with registered waiters.

        Each entry is ``(event, waiter_names)``.  An untriggered event
        nobody waits on is garbage, not a leak; an untriggered event
        *with* waiters is a process frozen forever.  Stale callbacks are
        not waiters: a dead process (or a live one since detached onto a
        different event, e.g. by an interrupt) will never resume from
        here, and a condition (``AnyOf``) that already triggered will
        never consume this constituent.
        """
        from repro.sim.kernel import Event, Process

        leaks = []
        for event in self._events:
            if event.triggered or not event.callbacks:
                continue
            waiters = []
            for cb in event.callbacks:
                owner = getattr(cb, "__self__", None)
                if isinstance(owner, Process):
                    if owner.is_alive and owner._waiting_on is event:
                        waiters.append(owner.name)
                elif isinstance(owner, Event):
                    if not owner.triggered:
                        waiters.append(type(owner).__name__)
                elif owner is not None:
                    waiters.append(type(owner).__name__)
            if waiters:
                leaks.append((event, sorted(waiters)))
        leaks.sort(key=lambda pair: pair[1])  # simlint: disable=PERF002 teardown-only report ordering
        return leaks

    def check_leaks(self) -> None:
        """Warn about leaked events (called when the schedule drains)."""
        leaks = self.leaked_events()
        if not leaks:
            return
        lines = [f"  {describe_event(ev)} awaited by "
                 f"{', '.join(repr(w) for w in waiters)}"
                 for ev, waiters in leaks]
        warnings.warn(
            "event leak: the schedule drained with "
            f"{len(leaks)} event(s) never triggered but still awaited "
            "(each waiter is a process frozen forever):\n"
            + "\n".join(lines),
            SanitizerWarning, stacklevel=3)

    # -- lock-held-at-death detection ------------------------------------

    def held_requests(self, process: "Process") -> List[Tuple[object, str]]:
        """Resource slots held or queued by ``process``.

        Returns ``(resource, state)`` pairs where state is ``'holding'``
        or ``'queued for'``.
        """
        found = []
        for resource in self._resources:
            for req in getattr(resource, "_users", ()):
                if getattr(req, "owner", None) is process:
                    found.append((resource, "holding"))
            queued = list(getattr(resource, "_queue", ()))
            queued.extend(req for _prio, _seq, req
                          in getattr(resource, "_pqueue", ()))
            for req in queued:
                if (getattr(req, "owner", None) is process
                        and not req.triggered):
                    found.append((resource, "queued for"))
        return found

    def process_died(self, process: "Process") -> None:
        """Check a just-finished process for leaked resource claims."""
        self.races.process_died(process)
        held = self.held_requests(process)
        if not held:
            return
        details = ", ".join(
            f"{state} {getattr(res, 'name', '') or type(res).__name__}"
            for res, state in held)
        warnings.warn(
            f"process {process.name!r} died while {details} — release "
            "requests in a try/finally (simlint SIM002); later acquirers "
            "will deadlock",
            SanitizerWarning, stacklevel=4)

    # -- deadlock diagnostics --------------------------------------------

    def wait_graph(self) -> str:
        """A dump of every live process and what it waits on."""
        lines = []
        alive = sorted((p for p in self._processes if p.is_alive),
                       key=lambda p: p.name)
        for proc in alive:
            lines.append(f"  {proc.name!r} waits on "
                         f"{describe_event(proc._waiting_on)}")
        if not lines:
            return "  (no live processes tracked)"
        return "\n".join(lines)
