"""Runtime sanitizers for the simulation kernel (``Simulator(debug=True)``).

The static linter (:mod:`repro.analyze`) catches what is visible in the
source; these sanitizers catch what only manifests at run time:

* **event leaks** — an event somebody waits on that is never triggered
  when the schedule drains: that waiter is a process silently frozen
  forever (a dropped wakeup, a forgotten ``succeed()``);
* **locks held at process death** — a process that dies (crash
  injection, unhandled error) while holding or queueing for a resource
  slot: every later acquirer deadlocks;
* **deadlock diagnostics** — when :meth:`Simulator.run_process` finds a
  live process with an empty schedule, a dump of *which* process waits
  on *what* turns an opaque error into a one-glance diagnosis.

Diagnostics are emitted as :class:`SanitizerWarning` (the simulation is
not aborted: a measurement run that is already wrong should still
finish so the warning can point at the cause).  With ``debug=False``
(the default) no sanitizer object exists and the kernel pays nothing
beyond a ``None`` check.

A fourth check pairs with the *static* DET001–DET006 state-isolation
rules (:mod:`repro.analyze.detrules`) the way the others pair with the
SIM rules:

* **cell-state divergence** — the sweep runner fingerprints every
  *registered* piece of module state (:func:`watch_cell_state`) before
  an experiment cell runs and re-checks it afterwards; any divergence
  raises :class:`CellStateError`, because state that survives a cell is
  exactly the cross-seed channel the determinism digests cannot see.

Enable globally with the ``REPRO_SIM_DEBUG=1`` environment variable —
the test suite does exactly that (``tests/conftest.py``).
"""

from __future__ import annotations

import hashlib
import os
import warnings
import weakref
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.sim.kernel import Event, Process, Simulator

__all__ = ["CellStateError", "Sanitizer", "SanitizerWarning",
           "cell_state_fingerprint", "check_cell_state",
           "watch_cell_state"]


class SanitizerWarning(UserWarning):
    """A kernel-hygiene violation detected at run time."""


class CellStateError(AssertionError):
    """Watched module state diverged across one sweep cell.

    An ``AssertionError`` on purpose: like
    :class:`~repro.experiments.sweep.SerialEquivalenceError` this is a
    broken invariant of the harness contract, not an environmental
    failure, so retry budgets must not paper over it.
    """


# -- cell-state fingerprinting (the runtime side of DET001) --------------
#
# The DET lint proves statically that no code path *writes* module
# state at runtime; this registry proves the same invariant
# dynamically, for the state static names cannot see (C extensions,
# sanctioned-by-pragma registries, the global RNG).  Suppliers are
# registered once at import time; under debug mode the sweep runner
# fingerprints every watch before a cell and re-checks after it.

_CELL_WATCHES: Dict[str, Callable[[], object]] = {}


def watch_cell_state(label: str, supplier: Callable[[], object]) -> None:
    """Register module state the sweep must prove cells don't leak.

    ``supplier`` returns the current value (any ``repr``-stable
    object); ``label`` names it in :class:`CellStateError` reports.
    Re-registering a label replaces the supplier.
    """
    _CELL_WATCHES[label] = supplier  # simlint: disable=DET001 the leak detector's own registry: import-time registration, label-keyed


def cell_state_fingerprint() -> Dict[str, str]:
    """label → digest of each watched value's current ``repr``."""
    prints: Dict[str, str] = {}
    for label in sorted(_CELL_WATCHES):
        try:
            value = repr(_CELL_WATCHES[label]())
        except Exception as exc:  # a broken supplier is itself a divergence
            value = f"<supplier raised {type(exc).__name__}: {exc}>"
        prints[label] = hashlib.sha256(value.encode()).hexdigest()
    return prints


def check_cell_state(before: Dict[str, str], context: str = "") -> None:
    """Raise :class:`CellStateError` if any watch diverged from ``before``.

    ``before`` is an earlier :func:`cell_state_fingerprint`; watches
    added or removed since then count as divergence too (a cell that
    registers new global state is still a leak).
    """
    after = cell_state_fingerprint()
    diverged = sorted(
        set(before).symmetric_difference(after)
        | {label for label in set(before) & set(after)
           if before[label] != after[label]})
    if diverged:
        where = f" in {context}" if context else ""
        raise CellStateError(
            f"module state leaked across a sweep cell{where}: "
            f"{', '.join(diverged)} changed — cells must be pure "
            f"functions of (experiment, params, seed, scale); see "
            f"docs/ANALYSIS.md (DET001)")


def _global_random_state() -> object:
    # Fingerprinting the global RNG to *detect* leaked reseeds/draws,
    # not drawing from it.
    import random  # simlint: disable=SIM003 leak detector reads getstate(), never draws
    return random.getstate()  # simlint: disable=SIM003 leak detector reads getstate(), never draws


def _process_environ() -> object:
    return sorted(os.environ.items())  # simlint: disable=DET002 leak detector fingerprints the environment


watch_cell_state("random.getstate", _global_random_state)
watch_cell_state("os.environ", _process_environ)


def describe_event(event: "Event") -> str:
    """A human-readable one-liner for a wait target."""
    # Imported lazily: kernel imports this module lazily too, and the
    # isinstance checks only run on debug/error paths.
    from repro.sim.kernel import Process, Timeout
    from repro.sim.resources import Request

    if event is None:
        return "nothing (runnable or just started)"
    if isinstance(event, Request):
        holder = "granted" if event.triggered else "queued"
        return (f"{type(event).__name__} on "
                f"{event.resource.name or 'resource'} ({holder})")
    if isinstance(event, Process):
        return f"process {event.name!r}"
    if isinstance(event, Timeout):
        return f"Timeout({event.delay:g}s)"
    return type(event).__name__


class Sanitizer:
    """The debug-mode bookkeeping attached to one :class:`Simulator`.

    All containers are weak: tracking never extends object lifetimes,
    so a debug run frees memory exactly like a production run.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._events: "weakref.WeakSet[Event]" = weakref.WeakSet()
        self._processes: "weakref.WeakSet[Process]" = weakref.WeakSet()
        self._resources: "weakref.WeakSet" = weakref.WeakSet()
        # The process whose generator is currently executing; requests
        # created during its step are attributed to it.
        self.current_process: Optional["Process"] = None
        # Lockset race detection over annotated shared structures
        # (imported lazily: racecheck imports SanitizerWarning from here).
        from repro.sim.racecheck import RaceDetector
        self.races = RaceDetector(sim)

    # -- step attribution (called from Process._step) --------------------

    def begin_step(self, process: "Process") -> None:
        """A process generator is about to run one step."""
        self.current_process = process
        self.races.begin_step(process)

    def end_step(self) -> None:
        """The current step finished (normally or not)."""
        self.current_process = None
        self.races.end_step()

    # -- registration hooks (called from the kernel) --------------------

    def event_created(self, event: "Event") -> None:
        """Track ``event`` for leak detection."""
        self._events.add(event)

    def register_process(self, process: "Process") -> None:
        """Track ``process`` for wait-graph dumps."""
        self._processes.add(process)

    def register_resource(self, resource) -> None:
        """Track ``resource`` for held-at-death checks."""
        self._resources.add(resource)

    # -- event-leak detection -------------------------------------------

    def leaked_events(self) -> List[Tuple["Event", List[str]]]:
        """Untriggered events with registered waiters.

        Each entry is ``(event, waiter_names)``.  An untriggered event
        nobody waits on is garbage, not a leak; an untriggered event
        *with* waiters is a process frozen forever.  Stale callbacks are
        not waiters: a dead process (or a live one since detached onto a
        different event, e.g. by an interrupt) will never resume from
        here, and a condition (``AnyOf``) that already triggered will
        never consume this constituent.
        """
        from repro.sim.kernel import Event, Process

        leaks = []
        for event in self._events:
            if event.triggered or not event.callbacks:
                continue
            waiters = []
            for cb in event.callbacks:
                owner = getattr(cb, "__self__", None)
                if isinstance(owner, Process):
                    if owner.is_alive and owner._waiting_on is event:
                        waiters.append(owner.name)
                elif isinstance(owner, Event):
                    if not owner.triggered:
                        waiters.append(type(owner).__name__)
                elif owner is not None:
                    waiters.append(type(owner).__name__)
            if waiters:
                leaks.append((event, sorted(waiters)))
        leaks.sort(key=lambda pair: pair[1])  # simlint: disable=PERF002 teardown-only report ordering
        return leaks

    def check_leaks(self) -> None:
        """Warn about leaked events (called when the schedule drains)."""
        leaks = self.leaked_events()
        if not leaks:
            return
        lines = [f"  {describe_event(ev)} awaited by "
                 f"{', '.join(repr(w) for w in waiters)}"
                 for ev, waiters in leaks]
        warnings.warn(
            "event leak: the schedule drained with "
            f"{len(leaks)} event(s) never triggered but still awaited "
            "(each waiter is a process frozen forever):\n"
            + "\n".join(lines),
            SanitizerWarning, stacklevel=3)

    # -- lock-held-at-death detection ------------------------------------

    def held_requests(self, process: "Process") -> List[Tuple[object, str]]:
        """Resource slots held or queued by ``process``.

        Returns ``(resource, state)`` pairs where state is ``'holding'``
        or ``'queued for'``.
        """
        found = []
        for resource in self._resources:
            for req in getattr(resource, "_users", ()):
                if getattr(req, "owner", None) is process:
                    found.append((resource, "holding"))
            queued = list(getattr(resource, "_queue", ()))
            queued.extend(req for _prio, _seq, req
                          in getattr(resource, "_pqueue", ()))
            for req in queued:
                if (getattr(req, "owner", None) is process
                        and not req.triggered):
                    found.append((resource, "queued for"))
        return found

    def process_died(self, process: "Process") -> None:
        """Check a just-finished process for leaked resource claims."""
        self.races.process_died(process)
        held = self.held_requests(process)
        if not held:
            return
        details = ", ".join(
            f"{state} {getattr(res, 'name', '') or type(res).__name__}"
            for res, state in held)
        warnings.warn(
            f"process {process.name!r} died while {details} — release "
            "requests in a try/finally (simlint SIM002); later acquirers "
            "will deadlock",
            SanitizerWarning, stacklevel=4)

    # -- deadlock diagnostics --------------------------------------------

    def wait_graph(self) -> str:
        """A dump of every live process and what it waits on."""
        lines = []
        alive = sorted((p for p in self._processes if p.is_alive),
                       key=lambda p: p.name)
        for proc in alive:
            lines.append(f"  {proc.name!r} waits on "
                         f"{describe_event(proc._waiting_on)}")
        if not lines:
            return "  (no live processes tracked)"
        return "\n".join(lines)
