"""Queueing primitives built on the kernel.

These model every point of contention in the reproduced system: CPU
cores (``Resource``), the log-append critical section (``Mutex``), disk
queues (``PriorityResource``), mailbox-style handoff between dispatch
and worker threads (``Store``), and DRAM/disk capacity (``Container``).
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush
from typing import Any, Deque, List, Optional, Tuple

from repro.sim.kernel import PRIORITY_NORMAL, Event, SimulationError, Simulator

__all__ = ["Request", "Resource", "PriorityResource", "Mutex", "Store", "Container"]


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "enqueued_at", "owner")

    def __init__(self, resource: "Resource", priority: int = 0):
        # Event.__init__ inlined: requests are created once per resource
        # claim, which puts this on the hot path of every RPC.
        sim = resource.sim
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = None
        self._scheduled = False
        self.resource = resource
        self.priority = priority
        self.enqueued_at = sim.now
        # Debug-mode attribution: the process whose step created this
        # request (the would-be holder); None outside debug mode.
        sanitizer = sim._sanitizer
        if sanitizer is not None:
            sanitizer.event_created(self)
            self.owner = sanitizer.current_process
        else:
            self.owner = None


class Resource:
    """A FIFO multi-server queue (e.g. a pool of CPU cores).

    Usage::

        req = cores.request()
        yield req
        yield sim.timeout(service_time)
        cores.release(req)
    """

    # Slotted (PERF001): resources sit on the event path of every RPC.
    # __weakref__ because the debug-mode sanitizer tracks resources in
    # a WeakSet.
    __slots__ = ("sim", "capacity", "name", "_users", "_queue",
                 "total_requests", "total_wait_time", "__weakref__")

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        if sim._sanitizer is not None:
            sim._sanitizer.register_resource(self)
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        # Cumulative statistics for monitoring.
        self.total_requests = 0
        self.total_wait_time = 0.0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self, priority)
        self.total_requests += 1
        if len(self._users) < self.capacity:
            # Uncontended fast path: _grant + Event.succeed inlined.  A
            # fresh request cannot be triggered (no guard needed) and
            # waited zero seconds (total_wait_time += 0.0 is a no-op),
            # but the grant event is scheduled exactly as _grant would —
            # a synchronous grant here would reorder the whole run.
            self._users.append(req)
            sim = self.sim
            if sim._sanitizer is not None:
                sim._sanitizer.races.lock_granted(req)
            req._ok = True
            req._value = req
            req._scheduled = True
            seq = sim._seq + 1
            sim._seq = seq
            heappush(sim._heap, (sim.now, PRIORITY_NORMAL, seq, req))
        else:
            self._enqueue(req)
        return req

    def _enqueue(self, req: Request) -> None:
        self._queue.append(req)

    def _dequeue(self) -> Optional[Request]:
        return self._queue.popleft() if self._queue else None

    def _grant(self, req: Request) -> None:
        self._users.append(req)
        self.total_wait_time += self.sim.now - req.enqueued_at
        sanitizer = self.sim._sanitizer
        if sanitizer is not None:
            sanitizer.races.lock_granted(req)
        req.succeed(req)

    def release(self, req: Request) -> None:
        """Return a granted slot; the next waiter (if any) is granted."""
        try:
            self._users.remove(req)
        except ValueError:
            raise SimulationError(
                f"release of a request not holding {self.name or 'resource'}"
            ) from None
        sanitizer = self.sim._sanitizer
        if sanitizer is not None:
            sanitizer.races.lock_released(req)
        nxt = self._dequeue()
        if nxt is not None:
            self._grant(nxt)

    def cancel(self, req: Request) -> None:
        """Withdraw a request that has not been granted (e.g. on interrupt)."""
        try:
            self._queue.remove(req)
        except ValueError:
            pass

    def resize(self, capacity: int) -> None:
        """Change capacity; extra waiters are granted immediately on growth.

        Shrinking never revokes current holders — the reduced capacity
        takes effect as they release.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        while len(self._users) < self.capacity:
            nxt = self._dequeue()
            if nxt is None:
                break
            self._grant(nxt)


class PriorityResource(Resource):
    """A resource whose queue is ordered by ``priority`` (lower first).

    Ties are FIFO.  Used by the disk model so that recovery reads and
    normal flush writes can be prioritized differently.
    """

    __slots__ = ("_pqueue", "_pseq")

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        super().__init__(sim, capacity, name)
        self._pqueue: List[Tuple[int, int, Request]] = []
        self._pseq = 0

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._pqueue)

    def _enqueue(self, req: Request) -> None:
        self._pseq += 1
        heapq.heappush(self._pqueue, (req.priority, self._pseq, req))

    def _dequeue(self) -> Optional[Request]:
        while self._pqueue:
            _prio, _seq, req = heapq.heappop(self._pqueue)
            if not req.triggered:  # skip cancelled entries
                return req
        return None

    def cancel(self, req: Request) -> None:
        """Withdraw an ungranted request (lazy: the heap entry stays and
        ``_dequeue`` skips it because the request is now triggered)."""
        if not req.triggered:
            req.fail(SimulationError("request cancelled"))


class Mutex:
    """A single-holder lock with FIFO handoff.

    Models the serialized sections of a RAMCloud master: the log-append
    critical path and the hash-table bucket locks.
    """

    __slots__ = ("_resource",)

    def __init__(self, sim: Simulator, name: str = ""):
        self._resource = Resource(sim, 1, name)

    @property
    def locked(self) -> bool:
        """True while some holder owns the lock."""
        return self._resource.count > 0

    @property
    def queue_length(self) -> int:
        """Threads waiting for the lock."""
        return self._resource.queue_length

    def acquire(self) -> Request:
        """Claim the lock; the returned event fires when granted."""
        return self._resource.request()

    def release(self, req: Request) -> None:
        """Hand the lock to the next waiter."""
        self._resource.release(req)

    def abort(self, req: Request) -> None:
        """Clean up a request after an interrupt: release it if it was
        granted, withdraw it if it was still queued."""
        if req.triggered and req.ok:
            self._resource.release(req)
        else:
            self._resource.cancel(req)


class Store:
    """An unbounded FIFO mailbox of items (dispatch → worker handoff).

    Items are always delivered in FIFO order.  ``lifo_getters=True``
    wakes the *most recently arrived* waiting getter instead of the
    oldest — the policy a work-stealing/nanoscheduling runtime uses to
    keep one worker thread hot instead of round-robining over the pool.
    """

    __slots__ = ("sim", "name", "lifo_getters", "_items", "_getters",
                 "max_occupancy")

    def __init__(self, sim: Simulator, name: str = "",
                 lifo_getters: bool = False):
        self.sim = sim
        self.name = name
        self.lifo_getters = lifo_getters
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes a waiting getter, if any."""
        while self._getters:
            if self.lifo_getters:
                getter = self._getters.pop()
            else:
                getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> List[Any]:
        """Remove and return all queued items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items


class Container:
    """A continuous quantity with a fixed capacity (bytes of DRAM/disk).

    ``put``/``take`` are immediate and raise on violation rather than
    blocking: in this system running out of memory or disk is an error
    condition handled by the caller (the cleaner, the flush path), not a
    queueing point.
    """

    __slots__ = ("sim", "capacity", "level", "name")

    def __init__(self, sim: Simulator, capacity: float, initial: float = 0.0,
                 name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= initial <= capacity:
            raise ValueError(f"initial {initial} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.level = initial
        self.name = name

    @property
    def free(self) -> float:
        """Remaining capacity."""
        return self.capacity - self.level

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use."""
        return self.level / self.capacity

    def put(self, amount: float) -> None:
        """Add ``amount``; raises OverflowError past capacity."""
        if amount < 0:
            raise ValueError(f"negative put: {amount}")
        if self.level + amount > self.capacity + 1e-9:
            raise OverflowError(
                f"{self.name or 'container'} overflow: "
                f"{self.level} + {amount} > {self.capacity}"
            )
        self.level = min(self.capacity, self.level + amount)

    def take(self, amount: float) -> None:
        """Remove ``amount``; raises ValueError below zero."""
        if amount < 0:
            raise ValueError(f"negative take: {amount}")
        if amount > self.level + 1e-9:
            raise ValueError(
                f"{self.name or 'container'} underflow: take {amount} of {self.level}"
            )
        self.level = max(0.0, self.level - amount)
