"""Power-policy configuration (docs/POWER.md).

A :class:`PowerPolicy` is the frozen, hashable description of how a
cluster manages power: which per-node governor runs, its thresholds,
and an optional cluster-wide power cap.  The default policy is the
paper's machine exactly — ``static`` governor, no cap — and the
cluster builder creates **no** controller processes for it, so default
runs are event-for-event identical to a build without this subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["GOVERNORS", "PowerPolicy"]

# The three governors (ISSUE 5 tentpole):
#
# * static        — nominal frequency, busy-poll dispatch, no parking
#                   (the paper's configuration; the do-nothing default).
# * ondemand      — Linux-style utilization-driven DVFS: sample each
#                   node's utilization every ``sample_interval`` and
#                   step the package frequency up past ``up_threshold``
#                   / down below ``down_threshold``.
# * poll-adaptive — attack the polling pathology directly: the dispatch
#                   thread blocks after its empty-poll threshold and
#                   workers park idle cores (see ServerConfig knobs).
GOVERNORS = ("static", "ondemand", "poll-adaptive")


@dataclass(frozen=True)
class PowerPolicy:
    """How one cluster manages power (default: the paper's setup)."""

    governor: str = "static"
    # --- ondemand: utilization sampling and hysteresis thresholds ----
    sample_interval: float = 0.1
    up_threshold: float = 70.0
    down_threshold: float = 30.0
    # --- poll-adaptive: also park idle worker cores? ------------------
    core_parking: bool = True
    # --- cluster power cap (None = uncapped) --------------------------
    power_cap_watts: Optional[float] = None
    cap_interval: float = 0.25
    cap_hysteresis_watts: float = 5.0

    def __post_init__(self):
        if self.governor not in GOVERNORS:
            raise ValueError(
                f"governor must be one of {GOVERNORS}, got {self.governor!r}")
        if self.sample_interval <= 0 or self.cap_interval <= 0:
            raise ValueError("intervals must be positive")
        if not 0.0 <= self.down_threshold < self.up_threshold <= 100.0:
            raise ValueError(
                "thresholds must satisfy 0 <= down < up <= 100")
        if self.power_cap_watts is not None and self.power_cap_watts <= 0:
            raise ValueError("power cap must be positive")
        if self.cap_hysteresis_watts < 0:
            raise ValueError("cap hysteresis cannot be negative")

    @property
    def is_default(self) -> bool:
        """True when no controller machinery is needed at all: static
        governor, no cap — the bit-unchanged paper configuration."""
        return self.governor == "static" and self.power_cap_watts is None

    def with_(self, **overrides) -> "PowerPolicy":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)
