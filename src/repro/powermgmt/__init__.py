"""repro.powermgmt — adaptive power management (docs/POWER.md).

The paper's central negative result is that RAMCloud is far from
energy-proportional: the pinned dispatch thread busy-polls the NIC, so
an *idle* 4-core server sits at 25 % CPU and ≈75 W, and efficiency
collapses ≈7x from 1→10 servers (Figs. 1–4, Table I).  This package
models the knobs a real operator has against that pathology and the
controllers that drive them:

* **hardware** — DVFS (:meth:`~repro.hardware.cpu.Cpu.set_frequency`)
  and core parking / C-states, folded into the calibrated
  :class:`~repro.hardware.specs.PowerSpec` power curve;
* **server** — adaptive dispatch polling and worker core parking in
  :class:`~repro.ramcloud.server.RamCloudServer` (strictly opt-in);
* **control** — a per-node :class:`PowerManager` running a governor
  (``static`` | ``ondemand`` | ``poll-adaptive``) and a cluster-level
  :class:`~repro.cluster.powercap.PowerCapController` that throttles
  admission (the paper's Fig. 13 path) to hold a fleet power cap.

Everything is deterministic: governors are pure functions of sampled
simulation state, the only randomness (sampler phase stagger) comes
from the cluster's seeded :class:`~repro.sim.distributions.RandomStream`,
and with the default ``static`` governor no process, event or float in
any paper reproduction changes.
"""

from repro.powermgmt.manager import PowerManager
from repro.powermgmt.policy import GOVERNORS, PowerPolicy

__all__ = ["GOVERNORS", "PowerPolicy", "PowerManager"]
