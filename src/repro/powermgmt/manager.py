"""The per-node power manager: one governor driving one machine.

A :class:`PowerManager` owns every power decision for one server node:
which DVFS step the package runs at, whether the dispatch thread may
block, whether workers park idle cores.  Governors:

* ``static`` — do nothing (the paper's machine).  No process is
  created, so a statically-governed node is indistinguishable — event
  for event — from one with no manager at all.
* ``ondemand`` — Linux-style utilization-driven DVFS: sample busy
  core-seconds every ``sample_interval``, jump to the top frequency
  when utilization crosses ``up_threshold`` (race-to-idle on load
  arrival, like the real governor) and walk down one P-state at a time
  below ``down_threshold``.
* ``poll-adaptive`` — flip the server's dispatch loop to adaptive
  (interrupt-style blocking after the empty-poll threshold) and enable
  worker core parking; frequency stays nominal.

Determinism: decisions are pure functions of sampled simulation state.
The manager computes utilization from its own ``busy_core_seconds()``
snapshots — never via ``cpu.mark()``, which belongs to the PDU and
must not be perturbed by a second marker.  The only randomness is the
sampler's phase stagger (so a fleet of managers does not tick in
lockstep), drawn once from the cluster's seeded stream.
"""

from __future__ import annotations

from typing import Optional

from repro.powermgmt.policy import GOVERNORS, PowerPolicy
from repro.sim.distributions import RandomStream
from repro.sim.kernel import Interrupt, Process, Simulator
from repro.sim.monitor import TimeSeries
from repro.sim.racecheck import shared

__all__ = ["PowerManager"]


class PowerManager:
    """Drives one node's power knobs under one governor."""

    def __init__(self, sim: Simulator, node, server, policy: PowerPolicy,
                 stream: RandomStream):
        self.sim = sim
        self.node = node
        self.server = server
        self.policy = policy
        self.stream = stream
        self.governor = "static"
        self._loop: Optional[Process] = None
        self._steps = tuple(node.spec.cpu.freq_steps)
        self._step_index = len(self._steps) - 1  # nominal
        # Deterministic per-node phase offset for the ondemand sampler.
        self._stagger = stream.uniform() * policy.sample_interval
        # Frequency decisions over time (ratio samples; starts empty,
        # records one point per P-state change).
        self.freq_series = TimeSeries(name=f"{node.name}:freq-ratio")
        # The governor field is written by whichever process calls
        # set_governor (an experiment driver, the fault injector) and
        # read by the manager's own loop — declare it for the lockset
        # detector; accesses are relaxed by design (a mode flag polled
        # at loop granularity, like ServerConfig.dispatch_mode).
        self._race = shared(sim, f"powermgmt:{node.name}", obj=self,
                            owner=self)
        self.set_governor(policy.governor)

    # ------------------------------------------------------------------

    def set_governor(self, name: str) -> None:
        """Switch governors at runtime (no-op if already active).

        Tearing down a governor restores the hardware defaults it
        moved — nominal frequency, busy-poll dispatch, no parking —
        before the new one applies its own regime.
        """
        if name not in GOVERNORS:
            raise ValueError(
                f"governor must be one of {GOVERNORS}, got {name!r}")
        self._race.write("governor", relaxed=True)
        if name == self.governor:
            return
        self._teardown()
        self.governor = name
        if name == "ondemand":
            self._loop = self.sim.process(
                self._ondemand_loop(),
                name=f"powermgmt:{self.node.name}:ondemand")
        elif name == "poll-adaptive":
            self.server.set_power_mode(dispatch_mode="adaptive",
                                       core_parking=self.policy.core_parking)

    def stop(self) -> None:
        """Halt the governor loop (cluster shutdown); hardware state is
        left as-is, like a daemon dying without a reset."""
        if self._loop is not None and self._loop.is_alive:
            self._loop.interrupt("power manager stopped")
        self._loop = None

    def _teardown(self) -> None:
        self.stop()
        if self._step_index != len(self._steps) - 1:
            self._set_step(len(self._steps) - 1)
        self.server.set_power_mode(dispatch_mode="poll", core_parking=False)

    # ------------------------------------------------------------------

    def _set_step(self, index: int) -> None:
        self._step_index = index
        ratio = self._steps[index]
        self.node.cpu.set_frequency(ratio)
        self.freq_series.record(self.sim.now, ratio)

    def _ondemand_loop(self):
        cpu = self.node.cpu
        cores = cpu.cores
        policy = self.policy
        try:
            if self._stagger > 0:
                yield self.sim.timeout(self._stagger)
            last_busy = cpu.busy_core_seconds()
            last_time = self.sim.now
            while True:
                yield self.sim.timeout(policy.sample_interval)
                busy = cpu.busy_core_seconds()
                elapsed = self.sim.now - last_time
                util = 100.0 * (busy - last_busy) / (elapsed * cores)
                last_busy, last_time = busy, self.sim.now
                self._race.write("step_index", relaxed=True)
                if (util > policy.up_threshold
                        and self._step_index < len(self._steps) - 1):
                    # Race to the top P-state on load, like Linux
                    # ondemand — half-stepping up loses throughput.
                    self._set_step(len(self._steps) - 1)
                elif util < policy.down_threshold and self._step_index > 0:
                    self._set_step(self._step_index - 1)
        except Interrupt:
            return
