"""repro — a reproduction of *Characterizing Performance and
Energy-Efficiency of the RAMCloud Storage System* (ICDCS 2017).

The package contains a from-scratch RAMCloud implementation running on
a simulated, power-metered cluster, a YCSB-compatible workload
substrate, and experiment runners that regenerate every table and
figure of the paper's evaluation.

Quick tour
----------
>>> from repro import Cluster, ClusterSpec, ServerConfig
>>> cluster = Cluster(ClusterSpec(num_servers=5, num_clients=2,
...                               server_config=ServerConfig(
...                                   replication_factor=3)))
>>> table_id = cluster.create_table("accounts")

Layers (bottom-up):

* :mod:`repro.sim` — deterministic discrete-event kernel;
* :mod:`repro.hardware` — 4-core nodes, HDDs, NICs, the calibrated
  power model and per-node PDUs;
* :mod:`repro.net` — message fabric and RPC;
* :mod:`repro.ramcloud` — coordinator, log-structured masters,
  collocated backups, replication, crash recovery, client library;
* :mod:`repro.ycsb` — workloads A–F, key distributions, closed-loop
  clients;
* :mod:`repro.cluster` — deployments and experiment harnesses;
* :mod:`repro.experiments` — the paper's tables/figures as runnable
  comparisons.
"""

from repro.analysis import (
    ascii_chart,
    crash_timeline_report,
    energy_proportionality_index,
)
from repro.cluster import (
    Cluster,
    ClusterSpec,
    CrashExperimentSpec,
    ExperimentSpec,
    repeat_experiment,
    run_crash_experiment,
    run_experiment,
)
from repro.ramcloud import (
    CostModel,
    RamCloudClient,
    ServerConfig,
)
from repro.ycsb import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WorkloadSpec,
    YcsbClient,
)

__version__ = "1.0.0"

__all__ = [
    "ascii_chart",
    "crash_timeline_report",
    "energy_proportionality_index",
    "Cluster",
    "ClusterSpec",
    "CostModel",
    "CrashExperimentSpec",
    "ExperimentSpec",
    "RamCloudClient",
    "ServerConfig",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WorkloadSpec",
    "YcsbClient",
    "repeat_experiment",
    "run_crash_experiment",
    "run_experiment",
    "__version__",
]
