"""Message fabric and RPC layer.

The paper uses RAMCloud's Infiniband transport exclusively (§III-B);
Gigabit Ethernet is also modelled for completeness (the authors study
the network dimension in a companion paper [24]).
"""

from repro.net.fabric import Fabric, NetworkPartitioned, NodeUnreachable
from repro.net.rpc import RpcError, RpcRequest, RpcService, RpcTimeout

__all__ = [
    "Fabric",
    "NetworkPartitioned",
    "NodeUnreachable",
    "RpcError",
    "RpcRequest",
    "RpcService",
    "RpcTimeout",
]
