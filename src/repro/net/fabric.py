"""Point-to-point message delivery between nodes.

The fabric charges each message its serialization time (bytes divided
by the sender NIC's bandwidth, with the sender's NIC modelled as a
single transmit queue) plus the transport's one-way propagation
latency.  Delivery to a crashed node raises :class:`NodeUnreachable`
*after* the latency has elapsed — a sender cannot know faster than the
network that the peer is gone.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.hardware.node import Node
from repro.sim.kernel import Simulator
from repro.sim.racecheck import shared
from repro.sim.resources import Resource

__all__ = ["Fabric", "NodeUnreachable", "NetworkPartitioned"]


class NodeUnreachable(Exception):
    """The destination machine is down (connection refused / timeout)."""


class NetworkPartitioned(NodeUnreachable):
    """The two endpoints are in different partitions.

    A subclass of :class:`NodeUnreachable`: from the sender's point of
    view a partitioned peer is indistinguishable from a dead one, so
    every retry / re-replication path that survives a crash survives a
    partition too.
    """


class Fabric:  # simlint: disable=PERF001 one per run; __dict__ cost is amortized
    """The switch connecting every node in the testbed."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.race = shared(sim, "fabric")
        self._nodes: Dict[str, Node] = {}
        self._tx_queues: Dict[str, Resource] = {}
        self._partitions: Set[Tuple[str, str]] = set()
        # Nodes whose NIC is administratively silenced (PauseServer): the
        # process is alive but no packet leaves or reaches the machine —
        # a SIGSTOP'd process or a wedged switch port.  Unlike a
        # partition, the sender cannot tell: its bytes are spent and it
        # waits out its own timeout (drop semantics).
        self._paused: Set[str] = set()
        # Installed RPC faults: (predicate(src, dst, op), kind, delay)
        # where kind is "delay" or "drop".  A list, not a set: faults
        # are matched in installation order, deterministically.
        self._rpc_faults: List[Tuple[Callable[[str, str, str], bool],
                                     str, float]] = []
        self.messages_delivered = 0
        self.bytes_delivered = 0

    def attach(self, node: Node) -> None:
        """Connect a machine to the switch."""
        if node.name in self._nodes:
            raise ValueError(f"node {node.name!r} already attached")
        self._nodes[node.name] = node
        self._tx_queues[node.name] = Resource(self.sim, 1, name=f"{node.name}:tx")

    def node(self, name: str) -> Node:
        """Look an attached machine up by name."""
        return self._nodes[name]

    # -- partitions (used by failure-injection tests) --------------------

    def partition(self, a: str, b: str) -> None:
        """Cut connectivity between two machines (both directions)."""
        self.race.write("partitions")
        self._partitions.add((a, b))
        self._partitions.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Restore connectivity cut by :meth:`partition`."""
        self.race.write("partitions")
        self._partitions.discard((a, b))
        self._partitions.discard((b, a))

    def partition_groups(self, group_a: Sequence[str],
                         group_b: Sequence[str]) -> None:
        """Cut connectivity between every pair across the two groups."""
        for a in group_a:
            for b in group_b:
                self.partition(a, b)

    def heal_groups(self, group_a: Sequence[str],
                    group_b: Sequence[str]) -> None:
        """Restore connectivity between every pair across the groups."""
        for a in group_a:
            for b in group_b:
                self.heal(a, b)

    def heal_all(self) -> None:
        """Remove every partition cut."""
        self.race.write("partitions")
        self._partitions.clear()

    # -- paused nodes (network-silent but alive; repro.faults) -----------

    def pause_node(self, name: str) -> None:
        """Silence a node's NIC in both directions.  The node's processes
        keep running (and keep simulated time flowing); only its traffic
        is lost, which is what makes paused servers look exactly like
        crashed ones to a failure detector."""
        if name not in self._nodes:
            raise KeyError(f"node {name!r} not attached")
        self.race.write("paused")
        self._paused.add(name)

    def resume_node(self, name: str) -> None:
        """Lift a :meth:`pause_node` silence."""
        self.race.write("paused")
        self._paused.discard(name)

    def is_paused(self, name: str) -> bool:
        """Whether the node's NIC is silenced (optimistic check)."""
        self.race.read("paused", relaxed=True)
        return name in self._paused

    def is_partitioned(self, a: str, b: str) -> bool:
        """Whether a partition separates the two machines (an optimistic
        check: connectivity can change before the answer is used)."""
        self.race.read("partitions", relaxed=True)
        return (a, b) in self._partitions

    # -- RPC faults (delay/drop, used by repro.faults) --------------------

    def add_rpc_fault(self, match: Callable[[str, str, str], bool],
                      kind: str, delay: float = 0.0) -> None:
        """Install a fault on matching RPCs: ``kind="delay"`` adds
        ``delay`` seconds of one-way latency, ``kind="drop"`` loses the
        request after its bytes are spent (the caller's timeout is what
        surfaces the loss)."""
        if kind not in ("delay", "drop"):
            raise ValueError(f"kind must be 'delay' or 'drop', got {kind!r}")
        if kind == "delay" and delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._rpc_faults.append((match, kind, delay))

    def clear_rpc_faults(self, match=None) -> None:
        """Remove installed RPC faults (all, or only those whose
        predicate equals ``match``)."""
        if match is None:
            self._rpc_faults.clear()
        else:
            self._rpc_faults = [(m, k, d) for m, k, d in self._rpc_faults
                                if m != match]

    def rpc_fault_for(self, src: str, dst: str,
                      op: str) -> Optional[Tuple[str, float]]:
        """The first installed fault matching this RPC, as
        ``(kind, delay)``, or None."""
        for match, kind, delay in self._rpc_faults:
            if match(src, dst, op):
                return kind, delay
        return None

    # -- transfer ---------------------------------------------------------

    def transfer(self, src: Node, dst: Node, nbytes: int) -> Generator:
        """``yield from fabric.transfer(src, dst, n)`` — move ``n`` bytes.

        Completes when the last byte arrives at ``dst``.  Raises
        :class:`NodeUnreachable` if ``dst`` is crashed on arrival, and
        :class:`NetworkPartitioned` if a partition separates the pair.
        """
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        if src.name not in self._nodes or dst.name not in self._nodes:
            raise KeyError("both endpoints must be attached to the fabric")
        self.race.read("partitions", relaxed=True)
        if (src.name, dst.name) in self._partitions:
            raise NetworkPartitioned(f"{src.name} cannot reach {dst.name}")

        nic = src.spec.nic
        tx = self._tx_queues[src.name]
        req = tx.request()
        try:
            yield req
        except BaseException:
            if req.triggered and req.ok:
                tx.release(req)
            else:
                tx.cancel(req)
            raise
        try:
            yield self.sim.timeout(nbytes / nic.bandwidth)
        finally:
            tx.release(req)
        yield self.sim.timeout(nic.one_way_latency)
        if dst.crashed:
            raise NodeUnreachable(f"{dst.name} is down")
        self.messages_delivered += 1
        self.bytes_delivered += nbytes
