"""Request/response RPC on top of the fabric.

The caller transfers the request over the fabric, deposits it in the
destination service's inbox, and waits on a per-request reply event.
The service's dispatch thread drains the inbox (see
:class:`repro.ramcloud.master.Master`), and whoever services the request
triggers the reply.  Response network time is charged on the caller
side after the reply fires, so the server worker is not occupied while
response bytes serialize — matching RAMCloud, where the NIC drains the
response asynchronously.

Crash semantics: delivery to a crashed node raises
:class:`~repro.net.fabric.NodeUnreachable`; requests already queued at a
node that crashes are failed by the service's crash handler; a caller
may additionally bound the wait with ``timeout``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.hardware.node import Node
from repro.net.fabric import Fabric, NodeUnreachable
from repro.sim.kernel import Event, Simulator
from repro.sim.resources import Store

__all__ = ["RpcError", "RpcTimeout", "RpcRequest", "RpcService"]


class RpcError(Exception):
    """Base class for RPC-level failures."""


class RpcTimeout(RpcError):
    """The reply did not arrive within the caller's deadline."""


class RpcRequest:
    """One in-flight RPC as seen by the receiving service."""

    __slots__ = ("op", "args", "size_bytes", "response_bytes", "reply",
                 "src", "issued_at")

    def __init__(self, sim: Simulator, op: str, args: Any, size_bytes: int,
                 response_bytes: int, src: Node):
        self.op = op
        self.args = args
        self.size_bytes = size_bytes
        self.response_bytes = response_bytes
        self.reply: Event = Event(sim)
        self.src = src
        self.issued_at = sim.now

    def respond(self, value: Any = None) -> None:
        """Complete the RPC successfully with ``value``.

        At-most-one reply: a request whose caller already gave up on it
        (timeout, give-up interrupt) has a triggered reply, and a late
        server answer is silently discarded — exactly what a network
        stack does with a response to a closed connection.
        """
        if self.reply.triggered:
            return
        self.reply.succeed(value)

    def fail(self, exc: BaseException) -> None:
        """Complete the RPC with an error raised at the caller (no-op
        if the reply was already triggered, see :meth:`respond`)."""
        if self.reply.triggered:
            return
        self.reply.fail(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RpcRequest {self.op} from {self.src.name}>"


class RpcService:  # simlint: disable=PERF001 O(nodes), subclassed by services; __dict__ cost is amortized
    """A service endpoint bound to a node; owns an inbox of requests."""

    def __init__(self, sim: Simulator, fabric: Fabric, node: Node, name: str):
        self.sim = sim
        self.fabric = fabric
        self.node = node
        self.name = name
        self.inbox = Store(sim, name=f"{name}:inbox")
        self._down = False
        self.requests_received = 0

    @property
    def is_down(self) -> bool:
        """True once shut down or the host machine crashed."""
        return self._down or self.node.crashed

    def deliver(self, request: RpcRequest) -> None:
        """Enqueue an incoming request (fails it if the service is down)."""
        if self.is_down:
            request.fail(NodeUnreachable(f"{self.name} is down"))
            return
        self.requests_received += 1
        self.inbox.put(request)

    def shutdown(self, exc: Optional[BaseException] = None) -> None:
        """Stop accepting requests and fail everything still queued."""
        self._down = True
        error = exc or NodeUnreachable(f"{self.name} shut down")
        for request in self.inbox.drain():
            if not request.reply.triggered:
                request.fail(error)

    # -- caller side ------------------------------------------------------

    def call(self, src: Node, op: str, args: Any = None,
             size_bytes: int = 128, response_bytes: int = 128,
             timeout: Optional[float] = None) -> Generator:
        """``result = yield from service.call(src, op, ...)``.

        Runs in the calling process.  Raises the service's exception on
        failure, :class:`RpcTimeout` past ``timeout``, and
        :class:`~repro.net.fabric.NodeUnreachable` if the node is dead.
        """
        sim = self.sim
        fabric = self.fabric
        # Fault lookup and paused-endpoint checks are skipped outright
        # when no fault/pause is installed (the common case on the data
        # path; the skipped relaxed race.reads record nothing anyway).
        fault = (fabric.rpc_fault_for(src.name, self.node.name, op)
                 if fabric._rpc_faults else None)
        if fault is not None and fault[0] == "delay":
            yield sim.timeout(fault[1])
        yield from fabric.transfer(src, self.node, size_bytes)
        dropped = fault is not None and fault[0] == "drop"
        # A paused endpoint (PauseServer) is network-silent but alive:
        # the bytes are spent, nothing arrives, and — unlike a crash or
        # a partition — the sender gets no error, only its own timeout.
        if (dropped or (fabric._paused
                        and (fabric.is_paused(src.name)
                             or fabric.is_paused(self.node.name)))):
            # The request vanished in the network after its bytes were
            # spent: no server ever sees it, the caller waits out its
            # own deadline.
            why = "dropped" if dropped else "paused endpoint"
            if timeout is None:
                raise NodeUnreachable(
                    f"{op} to {self.name} lost in the network ({why})")
            yield sim.timeout(timeout)
            raise RpcTimeout(
                f"{op} to {self.name} timed out after {timeout}s ({why})")
        request = RpcRequest(sim, op, args, size_bytes, response_bytes, src)
        self.deliver(request)
        if timeout is None:
            value = yield request.reply
        else:
            deadline = sim.timeout(timeout)
            yield sim.any_of([request.reply, deadline])
            if not request.reply.triggered:
                exc = RpcTimeout(
                    f"{op} to {self.name} timed out after {timeout}s")
                # The caller abandons the request: close its reply so a
                # dropped/stuck request does not leave a forever-pending
                # event (a late server respond() is discarded).
                request.fail(exc)
                raise exc
            if not request.reply.ok:
                raise request.reply.value
            value = request.reply.value
        # Response network time, charged caller-side (see module doc).
        nic = self.node.spec.nic
        yield sim.timeout(request.response_bytes / nic.bandwidth
                          + nic.one_way_latency)
        return value
