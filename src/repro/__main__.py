"""Command-line entry point: ``python -m repro <command>``.

Commands::

    python -m repro list                      # every experiment runner
    python -m repro run fig5 [--scale smoke]  # one experiment, table out
    python -m repro run all --scale default   # regenerate everything
    python -m repro findings                  # the six findings, one line each

Experiment names follow the paper: fig1, table1, fig2, table2, fig3,
fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, plus
the ablations (segment-size, worker-threads, async-replication) and
extensions (distributions, transports, scans, elastic, correlated).
"""

from __future__ import annotations

import argparse
import sys

FINDINGS = [
    "1  read-only scales linearly; power does not (25% CPU when idle, "
    "servers max their CPU before peak throughput)",
    "2  update-heavy collapses ~97% below read-only at 90 clients; "
    "read-heavy loses ~57%; more updates = more power, up to 4.9x energy",
    "3  replication factor 1→4 costs up to 68% throughput and ~3.5x "
    "total energy (CPU contention + wait-for-ack)",
    "4  with update-heavy + replication, bigger clusters are the "
    "(energy-)better choice — the opposite of the read-only rule",
    "5  crash recovery: ~90% CPU, ~8% extra power; lost data is "
    "unavailable for the whole recovery; live data slows 1.4-2.4x",
    "6  recovery time GROWS with the replication factor "
    "(10s → 55s for RF 1→5): replay re-inserts through the write path",
]


def _registry():
    from repro.experiments import ablations, extensions, peak, recovery, \
        replication, throttling, workloads
    return {
        "fig1": lambda s: peak.run_fig1_peak(s),
        "table1": lambda s: peak.run_table1_cpu(s),
        "fig2": lambda s: peak.run_fig2_efficiency(s),
        "table2": lambda s: workloads.run_table2_throughput(s)[0],
        "fig3": lambda s: workloads.run_fig3_scalability(s),
        "fig4": lambda s: workloads.run_fig4_power(s),
        "fig5": lambda s: replication.run_fig5_replication(s),
        "fig6": lambda s: replication.run_fig6_replication_scale(s),
        "fig7": lambda s: replication.run_fig7_power_rf(s),
        "fig8": lambda s: replication.run_fig8_efficiency_rf(s),
        "fig9": lambda s: recovery.run_fig9_crash_timeline(s)[0],
        "fig10": lambda s: recovery.run_fig10_latency_crash(s)[0],
        "fig11": lambda s: recovery.run_fig11_recovery_rf(s),
        "fig12": lambda s: recovery.run_fig12_disk_activity(s)[0],
        "fig13": lambda s: throttling.run_fig13_throttling(s),
        "segment-size": lambda s: ablations.run_segment_size_ablation(s),
        "worker-threads": lambda s: ablations.run_worker_threads_ablation(s),
        "async-replication":
            lambda s: ablations.run_async_replication_ablation(s),
        "distributions":
            lambda s: extensions.run_request_distribution_extension(s),
        "transports": lambda s: extensions.run_transport_extension(s),
        "scans": lambda s: extensions.run_scan_extension(s),
        "elastic": lambda s: extensions.run_elastic_sizing_extension(s),
        "correlated":
            lambda s: extensions.run_correlated_failures_extension(s),
        "index": lambda s: _indexing().run_fig_index(s),
        "tenants": lambda s: _indexing().run_tenant_mix(s),
    }


def _indexing():
    from repro.experiments import indexing
    return indexing


def _print_result(result):
    from repro.experiments.reporting import ComparisonTable
    if isinstance(result, ComparisonTable):
        print(result.render())
        return
    if isinstance(result, tuple):
        for item in result:
            _print_result(item)
            print()


def main(argv=None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the RAMCloud performance/energy paper "
                    "(ICDCS 2017).")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment names")
    sub.add_parser("findings", help="print the paper's six findings")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment")
    run.add_argument("--scale", default=None,
                     choices=["smoke", "default", "full"],
                     help="op-count scaling (default: $REPRO_SCALE or "
                          "'default')")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in _registry():
            print(name)
        return 0
    if args.command == "findings":
        for line in FINDINGS:
            print(line)
        return 0

    from repro.experiments.scale import active_scale, set_active_scale
    scale = set_active_scale(args.scale) if args.scale else active_scale()
    registry = _registry()
    if args.experiment == "all":
        names = list(registry)
    elif args.experiment in registry:
        names = [args.experiment]
    else:
        parser.error(f"unknown experiment {args.experiment!r}; "
                     f"try: {', '.join(registry)}")
        return 2
    for name in names:
        print(f"== running {name} at scale {scale.name} ==")
        _print_result(registry[name](scale))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
