"""The master's in-memory index: (table, key) → log position.

RAMCloud indexes its log with a hash table; every read goes through it
and every write updates it.  We model it as a dict keyed by
``(table_id, key)`` whose values are ``(segment, entry)`` pairs, with
live/dead bookkeeping so the cleaner can tell what to copy forward.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.ramcloud.segment import LogEntry, Segment
from repro.sim.racecheck import NULL_SHARED, guarded_by

__all__ = ["HashTable"]


@guarded_by("log_lock")
class HashTable:
    """Maps live objects to their current log entry.

    Mutations must hold the owning master's ``log_lock`` (the index and
    the log entry's liveness change together); ``self.race`` records
    per-key accesses for the debug-mode race detector.
    """

    __slots__ = ("_index", "race")

    def __init__(self):
        self._index: Dict[Tuple[int, str], Tuple[Segment, LogEntry]] = {}
        self.race = NULL_SHARED

    def __len__(self) -> int:
        return len(self._index)

    def lookup(self, table_id: int, key: str) -> Optional[Tuple[Segment, LogEntry]]:
        """The live (segment, entry) for a key, or None."""
        if self.race.enabled:
            self.race.read(f"t{table_id}/{key}")
        return self._index.get((table_id, key))

    def insert(self, table_id: int, key: str, segment: Segment,
               entry: LogEntry) -> Optional[LogEntry]:
        """Point (table, key) at a new entry; returns the displaced
        entry (now dead) if the key existed."""
        if self.race.enabled:
            self.race.write(f"t{table_id}/{key}")
        old = self._index.get((table_id, key))
        self._index[(table_id, key)] = (segment, entry)
        if old is not None:
            old_entry = old[1]
            old_entry.live = False
            return old_entry
        return None

    def remove(self, table_id: int, key: str) -> Optional[LogEntry]:
        """Drop the index entry (object deleted); returns the dead entry."""
        if self.race.enabled:
            self.race.write(f"t{table_id}/{key}")
        old = self._index.pop((table_id, key), None)
        if old is None:
            return None
        old[1].live = False
        return old[1]

    def relocate(self, table_id: int, key: str, segment: Segment,
                 entry: LogEntry) -> None:
        """Repoint a live object after the cleaner copied it forward.

        Unlike :meth:`insert` this must only be called for an object the
        cleaner verified is still the current version.
        """
        self.race.write(f"t{table_id}/{key}")
        current = self._index.get((table_id, key))
        if current is None:
            raise KeyError(f"relocate of unindexed object t{table_id}/{key}")
        self._index[(table_id, key)] = (segment, entry)

    def keys_for_table(self, table_id: int) -> Iterator[str]:
        """Iterate the live keys of one table (an optimistic snapshot:
        callers revalidate per key under the lock)."""
        self.race.read(f"t{table_id}:keys", relaxed=True)
        return (key for (tid, key) in self._index if tid == table_id)

    def drop_table(self, table_id: int) -> int:
        """Remove every object of a table; returns how many were dropped."""
        self.race.write(f"t{table_id}:keys", relaxed=True)
        doomed = [(tid, key) for (tid, key) in self._index if tid == table_id]
        for pair in doomed:
            self._index[pair][1].live = False
            del self._index[pair]
        return len(doomed)
