"""Server configuration and the calibrated cost model.

``ServerConfig`` mirrors the knobs the paper sets (§III-B): 10 GB of
DRAM per server for storage, 80 GB of disk for backup replicas, 8 MB
segments, and a configurable replication factor (0 disables
replication, as in §IV and §V).

``CostModel`` holds the calibrated per-operation CPU costs.  These are
*measured characteristics of the real system folded into constants*,
anchored on the paper's numbers (DESIGN.md §4):

* ``read_service`` ≈ 8 µs on a worker core: a single 4-core server
  (3 workers + pinned dispatch) saturates at ≈372 Kreq/s (Fig. 1a).
* the write path serializes on a critical section of ``write_crit_base``
  = 70 µs, inflated by write-write contention, concurrent reader
  activity and worker-queue depth (the paper's "poor thread handling") —
  each term solved from a Table II anchor; see the field comments and
  docs/MODEL.md §5.
* replication costs — the master spends CPU per replication RPC and
  waits for each backup's acknowledgement before answering the client
  (§VI: strong consistency); backup-side handling degrades with the
  backup's own load (Finding 3's CPU contention).  Calibrated on
  Fig. 5's 78→43 Kop/s drop for RF 1→4 at 10 clients.
* recovery replay is one serialized replay→re-replicate stream per
  recovery master, costed per byte and per replica — Fig. 11a's
  10 s → 55 s growth for RF 1→5; see docs/MODEL.md §7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardware.specs import GB, KB, MB
from repro.ramcloud.consistency import ASYNC_BOUNDED, SYNC_RF, validate_level

__all__ = ["ServerConfig", "CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Calibrated CPU costs (seconds) for RAMCloud's service paths."""

    # Dispatch thread: per-request polling/handoff cost on the pinned core.
    dispatch_per_request: float = 1.5e-6
    # Liveness pong, assembled inline on the dispatch core.
    ping_service: float = 1.0e-6
    # Read path: hash lookup + copy-out, on a worker core.
    read_service: float = 8.0e-6
    # Multiread (RAMCloud's batched read RPC): per-batch overhead plus a
    # discounted per-key cost — batching amortizes dispatch and response
    # assembly across keys.
    multiread_batch_overhead: float = 6.0e-6
    multiread_per_key: float = 3.5e-6
    # Write path, non-serialized portion (request parse, response build).
    write_service: float = 20.0e-6
    # Write path, serialized log-append critical section (see module doc).
    write_crit_base: float = 70.0e-6
    # Write-write contention: each additional writer contending for the
    # log head multiplies the critical section by this fraction (lock
    # handoffs, cache-line bouncing).  Solved from Table II anchors:
    # crit(1 writer)≈98 µs gives workload A's 98 Kop/s at 10 clients;
    # crit(3 writers)≈312 µs gives the ≈64 Kop/s plateau beyond 30.
    write_crit_contention: float = 1.7
    # Milder penalty per concurrently-active non-writer worker (context
    # switches against read traffic) — solved from workload B's 844
    # Kop/s at 90 clients (≈238 µs effective crit at ~2 active readers).
    write_crit_read_contention: float = 0.75
    # Penalty per request queued behind the worker pool ("servers will
    # queue most of the incoming requests ... poor thread handling at
    # the server level when requests are queued", §V): reproduces the
    # decline of workload A beyond 20 clients (Table II: 106→64 Kop/s).
    # Capped at ``write_crit_queue_cap`` waiters: the wakeup/context-
    # switch storm saturates once every worker thread is churning.
    write_crit_queue_contention: float = 0.13
    write_crit_queue_cap: int = 6
    # Master-side CPU to build and send one replication RPC.
    replication_send: float = 12.0e-6
    # Backup-side worker CPU to buffer one replicated object.
    replication_service: float = 15.0e-6
    # Backup-side contention: replication handling competes with the
    # server's own client load for CPU and memory bandwidth ("CPU
    # contention between replication requests and normal requests at
    # the server level", Finding 3).  Per queued/active request, capped.
    replication_contention: float = 0.95
    replication_contention_cap: int = 5

    def replication_cost(self, load: int) -> float:
        """Backup CPU to buffer one replicated object when ``load``
        requests are queued or in service at the backup."""
        return self.replication_service * (
            1.0 + self.replication_contention
            * min(max(0, load), self.replication_contention_cap)
        )
    # Backup-side worker CPU to handle a whole-segment replication
    # (during recovery re-replication), per byte.
    replication_segment_per_byte: float = 1.0e-9
    # Recovery master: CPU to replay one log entry (hash insert + append).
    replay_per_entry: float = 2.0e-6
    # Recovery master: per-byte, per-replica cost of pushing replayed
    # data to new backups ("data is re-inserted in the same fashion" as
    # normal writes, §VII) — the serialized replication stream: send
    # path, copies, checksums, ack bookkeeping.  Anchored on Fig. 11a:
    # each recovery master re-replicates ≈139 MB and recovery time grows
    # ≈11 s per replication-factor step → ≈8×10⁻⁸ s/byte/replica.  The
    # stream is serialized per master (one replication pipeline), which
    # is why recovery time, not just CPU, grows with RF.
    replay_replication_per_byte: float = 5.5e-8
    # Recovery master: CPU per replayed byte (checksum + copy).
    replay_per_byte: float = 6.0e-9
    # Backup: CPU to locate and package a segment for recovery, per byte.
    recovery_read_per_byte: float = 0.5e-9
    # Recovery master: dispatch-thread time to receive one fetched
    # segment (transport polling + copy-in happen on the dispatch
    # thread).  Bulk arrivals stall request dispatch, which is what
    # slows live-data reads 1.4–2.4x during recovery (paper Fig. 10).
    dispatch_rx_per_byte: float = 3.0e-9
    # Cleaner: CPU per live byte copied forward.
    cleaner_per_byte: float = 2.0e-9
    # Secondary-index range search (repro.ramcloud.indexing): per-RPC
    # setup on a worker core, plus a per-scanned-entry cost for walking
    # the indexlet's sorted entry list.  Calibrated against multiread:
    # a search touching k entries costs about what a k-key multiread
    # does minus the per-key hash lookups.
    search_base: float = 7.0e-6
    search_per_entry: float = 0.6e-6
    # Master-side CPU to build and send one index-entry maintenance RPC
    # (the data master appends entries to remote indexlets through the
    # write path — same shape as replication_send).
    index_maintain_send: float = 12.0e-6
    # Coordinator bookkeeping per request.
    coordinator_service: float = 5.0e-6
    # Worker spin-then-sleep: after finishing a request a worker
    # busy-polls this long for the next one before blocking
    # (nanoscheduling).  This is why each active client pins roughly one
    # worker core in Table I (1 client → ≈50 % CPU on a 4-core node:
    # pinned dispatch + one hot worker).
    worker_spin: float = 200.0e-6

    def write_crit(self, writers: int, other_active: int = 0,
                   queued: int = 0) -> float:
        """Serialized append cost given ``writers`` threads contending
        for the log head (including the current one), ``other_active``
        additional busy workers, and ``queued`` requests waiting for a
        worker (1, 0, 0 = no contention)."""
        extra_writers = max(0, writers - 1)
        return self.write_crit_base * (
            1.0
            + self.write_crit_contention * extra_writers
            + self.write_crit_read_contention * max(0, other_active)
            + self.write_crit_queue_contention
            * min(max(0, queued), self.write_crit_queue_cap)
        )


@dataclass(frozen=True)
class ServerConfig:
    """Per-server deployment configuration (paper §III-B defaults)."""

    # Storage DRAM per master (paper: "fixed the memory used by a
    # RAMCloud server to 10GB").
    log_memory_bytes: int = 10 * GB
    # Disk space for backup replicas (paper: 80 GB).
    backup_disk_bytes: int = 80 * GB
    # Log segment size (paper §II-B: 8 MB, hard-coded in RAMCloud).
    segment_size: int = 8 * MB
    # Replicas per segment; 0 disables replication entirely.
    replication_factor: int = 3
    # Worker threads servicing requests (dispatch thread is separate).
    # On the paper's 4-core nodes RAMCloud runs 3 workers + dispatch.
    worker_threads: int = 3
    # Threads dedicated to the collocated backup service.  Masters block
    # a worker for every outstanding replication RPC, so backup ops must
    # not queue behind client ops or the whole cluster deadlocks in a
    # circular ack wait (every master's workers waiting on every other's).
    backup_worker_threads: int = 1
    # Memory utilization threshold that wakes the log cleaner.
    cleaner_threshold: float = 0.90
    # Cleaner stops once utilization falls back below this.
    cleaner_low_watermark: float = 0.80
    # Client-visible RPC timeout; sustained timeouts are how the paper's
    # overloaded configurations "crash" (§VI, missing Fig. 6a points).
    rpc_timeout: float = 1.0
    # Admission control: when set, the dispatch thread drops incoming
    # client requests once the worker queue holds this many waiters —
    # the dropped caller hears nothing and eats its full rpc_timeout.
    # This is the mechanism behind the paper's missing Fig. 6a points:
    # under RF 3-4 overload, replication ack-waits pin every worker,
    # queues blow past the cap, and YCSB's 1 s give-up cliff trips.
    # None (the default) disables dropping entirely.
    overload_queue_limit: Optional[int] = None
    # §IX "Tuning the consistency-level?": deprecated alias for
    # ``default_consistency=ASYNC_BOUNDED`` — answer the client as soon
    # as the update is applied locally, replicate in the background.
    # Kept so existing configurations and the ablation benchmarks keep
    # working; mapped onto ``default_consistency`` in ``__post_init__``.
    async_replication: bool = False
    # ---- per-request consistency (repro.ramcloud.consistency) ----
    # Cluster-wide default level for requests that do not pick one:
    # "sync_rf" (ack after all RF backups — the paper's behaviour, and
    # what every pre-existing determinism digest pins), "async_bounded"
    # (ack after local append, batched replication within the staleness
    # bounds below), or "eventual" (async writes + backup-served reads).
    # See docs/CONSISTENCY.md.
    default_consistency: str = SYNC_RF
    # ASYNC_BOUNDED staleness bound, sim-time axis: the batched
    # replicator flushes often enough that an acknowledged write is
    # never unreplicated longer than this while the master is alive.
    staleness_bound_seconds: float = 0.05
    # ASYNC_BOUNDED staleness bound, byte axis: once this many
    # acknowledged-but-unreplicated bytes accumulate, further async
    # writes backpressure (wait for a flush) before acking.
    staleness_bound_bytes: int = 256 * KB
    # ---- adaptive power management (repro.powermgmt, docs/POWER.md) ----
    # "poll" (default) keeps the paper's behaviour: the dispatch thread
    # busy-polls forever on its pinned core (25 % CPU on an idle 4-core
    # node).  "adaptive" lets it block interrupt-style after
    # ``poll_idle_threshold`` consecutive empty polls; the pinned core
    # then stops accruing busy time until the next request, which pays
    # ``dispatch_wake_latency`` extra.  Strictly opt-in — with "poll"
    # every paper reproduction is bit-unchanged.
    dispatch_mode: str = "poll"
    # Empty polls (of ``poll_interval`` each) before the adaptive
    # dispatch thread gives up busy-polling and blocks.
    poll_idle_threshold: int = 64
    poll_interval: float = 10.0e-6
    # Interrupt + cache-refill cost charged to the first request after
    # a blocked dispatch thread wakes.
    dispatch_wake_latency: float = 6.0e-6
    # Workers park their core (deep C-state) instead of merely blocking
    # once their spin window expires empty; the woken worker pays
    # ``core_wake_latency`` before serving.  Also opt-in.
    core_parking: bool = False
    core_wake_latency: float = 50.0e-6

    def __post_init__(self):
        if self.log_memory_bytes < self.segment_size:
            raise ValueError("log memory must hold at least one segment")
        if self.segment_size < 64 * KB:
            raise ValueError("segment size unrealistically small")
        if self.replication_factor < 0:
            raise ValueError("replication factor cannot be negative")
        if self.worker_threads < 1:
            raise ValueError("need at least one worker thread")
        if not 0.0 < self.cleaner_low_watermark < self.cleaner_threshold <= 1.0:
            raise ValueError(
                "cleaner watermarks must satisfy 0 < low < threshold <= 1"
            )
        if self.dispatch_mode not in ("poll", "adaptive"):
            raise ValueError(
                f"dispatch_mode must be 'poll' or 'adaptive', "
                f"got {self.dispatch_mode!r}")
        if self.poll_idle_threshold < 1:
            raise ValueError("poll_idle_threshold must be >= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.dispatch_wake_latency < 0 or self.core_wake_latency < 0:
            raise ValueError("wake latencies cannot be negative")
        validate_level(self.default_consistency)
        if self.staleness_bound_seconds <= 0:
            raise ValueError("staleness_bound_seconds must be positive")
        if self.staleness_bound_bytes <= 0:
            raise ValueError("staleness_bound_bytes must be positive")
        if self.async_replication and self.default_consistency == SYNC_RF:
            # Deprecated alias: the old global switch means "the whole
            # cluster defaults to async" in the new vocabulary.
            object.__setattr__(self, "default_consistency", ASYNC_BOUNDED)

    @property
    def total_segments(self) -> int:
        """How many segments the log memory budget holds."""
        return self.log_memory_bytes // self.segment_size
