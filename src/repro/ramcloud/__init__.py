"""A from-scratch implementation of the RAMCloud storage system (§II-B).

The architecture follows the paper's description exactly:

* a **coordinator** maintaining metadata about storage servers, backup
  servers and data location (tablet map), detecting failures and
  scheduling crash recovery;
* **storage servers** (masters) exposing DRAM as storage: an append-only
  log-structured memory divided into 8 MB segments, indexed by a hash
  table, with a cleaner that frees dead space;
* **backups**, collocated with masters in the same server process,
  buffering segment replicas in DRAM and spilling them to disk when the
  segment closes.

Threading model (the root of the paper's Findings 1 and 2): each server
process pins a **dispatch thread** that busy-polls the NIC (one full
core, always), plus a pool of worker threads servicing requests.  The
write path serializes on the log-append critical section whose cost
grows with the number of concurrently active workers.

Replication (Finding 3): primary-backup, one replica in DRAM serving
requests, ``replication_factor`` replicas pushed to backups; the master
answers the client only after every backup acknowledged.

Crash recovery (Findings 5 and 6): masters maintain a *will*
partitioning their tablets; the coordinator detects the crash, assigns
recovery masters, which read segment replicas from backups' disks and
replay them through the normal (replicated) write path.
"""

from repro.ramcloud.config import CostModel, ServerConfig
from repro.ramcloud.errors import (
    ObjectDoesntExist,
    RamCloudError,
    RetryLater,
    TableDoesntExist,
)
from repro.ramcloud.coordinator import Coordinator
from repro.ramcloud.server import RamCloudServer
from repro.ramcloud.client import RamCloudClient

__all__ = [
    "Coordinator",
    "CostModel",
    "ObjectDoesntExist",
    "RamCloudClient",
    "RamCloudError",
    "RamCloudServer",
    "RetryLater",
    "ServerConfig",
    "TableDoesntExist",
]
