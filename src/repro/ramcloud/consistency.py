"""Per-request consistency levels (ROADMAP item 4).

The paper's §IX ablation flips replication from synchronous to
asynchronous for the *whole cluster*; García-Recuero's HBase study
(PAPERS.md) shows the interesting frontier is client-centric — each
request picks its own consistency level and pays its own latency /
energy / durability cost.  This module defines the level vocabulary;
the semantics live in ``ramcloud/server.py`` (ack points, batched
replication, backup reads) and ``ramcloud/client.py`` (session tokens,
redirect handling).  See docs/CONSISTENCY.md for the full contract.

Levels are plain strings (not an Enum) so sweep cells — which cross
spawn-context process boundaries — pickle and digest them trivially.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["SYNC_RF", "ASYNC_BOUNDED", "EVENTUAL", "LEVELS",
           "resolve_level", "validate_level"]

# Acked only after all RF backups confirmed the append (today's
# default; what every pre-existing digest pins).
SYNC_RF = "sync_rf"
# Acked after the local log append; replication happens in batches
# bounded by ServerConfig.staleness_bound_seconds/_bytes, with
# backpressure (the ack waits for a flush) when the byte bound is at
# risk.  A master crash loses the acknowledged-but-unreplicated tail —
# the durability-gap harness counts exactly that.
ASYNC_BOUNDED = "async_bounded"
# ASYNC_BOUNDED writes, plus reads may be served by a backup from its
# replicated prefix when the backup satisfies the client's session
# watermark (read-your-writes); otherwise the backup redirects to the
# master (BackupBehind).
EVENTUAL = "eventual"

LEVELS: Tuple[str, ...] = (SYNC_RF, ASYNC_BOUNDED, EVENTUAL)


def validate_level(level: str) -> str:
    """Check that ``level`` is a known consistency level and return it."""
    if level not in LEVELS:
        raise ValueError(
            f"unknown consistency level {level!r}: choose from {LEVELS}")
    return level


def resolve_level(level: Optional[str], default: str) -> str:
    """The effective level for a request: the per-request choice if
    given, else the cluster default (``ServerConfig.default_consistency``)."""
    if level is None:
        return default
    return validate_level(level)
