"""RAMCloud error types, mirroring the real system's client-visible errors."""

from __future__ import annotations

__all__ = [
    "RamCloudError",
    "TableDoesntExist",
    "ObjectDoesntExist",
    "RetryLater",
    "WrongServer",
    "LogOutOfMemory",
    "StaleVersion",
    "StaleEpoch",
    "BackupBehind",
]


class RamCloudError(Exception):
    """Base class for RAMCloud-level errors."""


class TableDoesntExist(RamCloudError):
    """The table id is unknown to the coordinator."""


class ObjectDoesntExist(RamCloudError):
    """Read/delete of a key that has no live object."""


class RetryLater(RamCloudError):
    """The tablet is temporarily unavailable (crash recovery in
    progress); the client should back off and retry."""


class WrongServer(RamCloudError):
    """The contacted master does not own the tablet (stale client cache)."""


class LogOutOfMemory(RamCloudError):
    """The master's log is full and the cleaner cannot reclaim space."""


class StaleVersion(RamCloudError):
    """Conditional write rejected: the object's version moved on."""


class StaleEpoch(RamCloudError):
    """The caller acted on a server-list epoch the receiver has moved
    past — a backup fencing a master its epoch marks dead, or a master
    rejecting a client whose cached map predates an ownership change.
    The correct reaction is to refresh state and retry (clients) or to
    self-quiesce (a fenced master)."""


class BackupBehind(RamCloudError):
    """An EVENTUAL read asked a backup that cannot satisfy the client's
    session watermark (its replicated prefix is too stale).  This is a
    *routing* outcome, not a failure: the client retries immediately
    against the master, without burning a backoff-counted retry (the
    Fig. 6a give-up accounting must not see it)."""
