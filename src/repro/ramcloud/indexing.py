"""Log-structured secondary indexes (indexlets).

A secondary index is stored as a *hidden table* whose objects are index
entries: the key is ``secondary + KEY_SEP + primary`` (so entries sort
by secondary key and ties break on primary key) and the value is empty.
Because entries are ordinary log records, the write path appends them,
the cleaner relocates them, replication makes them durable and crash
recovery replays them — an index is never rebuilt by scanning the base
table, it is recovered exactly like data (SLIK's design point).

The hidden table is split into **indexlets**: tablets whose routing is
*range-based* instead of hash-based.  ``boundaries`` is a sorted tuple
of lower bounds, one per indexlet, with ``boundaries[0] == ""`` so the
whole key space is covered; indexlet *i* owns entry keys in
``[boundaries[i], boundaries[i+1])``.  Only the first hash level
changes — recovery's shard splitting still distributes an indexlet's
entries by key hash, so a recovered indexlet fans out over subshards
like any tablet.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.racecheck import NULL_SHARED, guarded_by

__all__ = [
    "KEY_SEP",
    "IndexDescriptor",
    "SortedIndexEntries",
    "decode_entry_key",
    "encode_entry_key",
    "indexlet_for_entry_key",
    "secondary_key",
    "uniform_boundaries",
]

# Separator between the secondary and primary halves of an entry key.
# It sorts below every printable character, so for secondaries free of
# NUL the encoded keys order exactly like (secondary, primary) pairs and
# a pure-secondary string is a valid range bound.
KEY_SEP = "\x00"


def encode_entry_key(secondary: str, primary: str) -> str:
    """The hidden-table key of one index entry."""
    if KEY_SEP in secondary:
        raise ValueError("secondary keys must not contain NUL")
    return secondary + KEY_SEP + primary


def decode_entry_key(entry_key: str) -> Tuple[str, str]:
    """Split an entry key back into (secondary, primary)."""
    secondary, _, primary = entry_key.partition(KEY_SEP)
    return secondary, primary


def indexlet_for_entry_key(boundaries: Tuple[str, ...], entry_key: str) -> int:
    """Which indexlet's range contains ``entry_key``.

    Works for encoded entry keys and for bare secondary strings alike:
    ``sec + KEY_SEP + pri`` compares below the next boundary exactly
    when ``sec`` does.
    """
    return bisect_right(boundaries, entry_key) - 1


def secondary_key(i: int) -> str:
    """The canonical synthetic secondary key for record *i*.

    Zero-padded so lexicographic order equals numeric order, which lets
    YCSB turn a numeric record range into a key range."""
    return f"s{i:010d}"


def uniform_boundaries(num_records: int, num_indexlets: int) -> Tuple[str, ...]:
    """Indexlet lower bounds that split ``secondary_key(0..n)`` evenly."""
    if num_indexlets < 1:
        raise ValueError(f"need at least one indexlet, got {num_indexlets}")
    bounds: List[str] = [""]
    for k in range(1, num_indexlets):
        bounds.append(secondary_key((k * num_records) // num_indexlets))
    return tuple(bounds)


@dataclass(frozen=True)
class IndexDescriptor:
    """Coordinator-side description of one secondary index.

    ``index_id`` is the hidden table's table id; ``table_id`` is the
    base table the index covers.  ``boundaries`` has one lower bound per
    indexlet (``boundaries[0] == ""``), strictly increasing.
    """

    index_id: int
    table_id: int
    name: str
    boundaries: Tuple[str, ...]

    def __post_init__(self):
        if not self.boundaries or self.boundaries[0] != "":
            raise ValueError("boundaries must start with the empty string")
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise ValueError("boundaries must be strictly increasing")

    @property
    def num_indexlets(self) -> int:
        return len(self.boundaries)

    def indexlet_for(self, entry_key: str) -> int:
        """Which indexlet owns an entry key (or bare secondary)."""
        return indexlet_for_entry_key(self.boundaries, entry_key)


@guarded_by("log_lock")
class SortedIndexEntries:
    """A master's sorted view of the index entries it stores.

    The hash table answers point lookups; range ``search`` needs entry
    keys in order, so masters keep one sorted key list per hidden index
    table, updated in lock-step with the hash table under ``log_lock``
    (entry liveness and range membership change together).  The cleaner
    never touches it — relocation keeps keys unchanged.
    """

    __slots__ = ("_sorted", "race")

    def __init__(self):
        self._sorted: Dict[int, List[str]] = {}
        self.race = NULL_SHARED

    def insert(self, index_id: int, entry_key: str) -> None:
        """Add an entry key (idempotent: re-appends of the same entry
        key, e.g. recovery replay after migration, are absorbed)."""
        if self.race.enabled:
            self.race.write(f"i{index_id}/{entry_key}")
        keys = self._sorted.setdefault(index_id, [])
        pos = bisect_right(keys, entry_key)
        if pos > 0 and keys[pos - 1] == entry_key:
            return
        insort(keys, entry_key)

    def remove(self, index_id: int, entry_key: str) -> None:
        """Drop an entry key (tolerates absence: a tombstone can replay
        against a shard that never saw the insert)."""
        if self.race.enabled:
            self.race.write(f"i{index_id}/{entry_key}")
        keys = self._sorted.get(index_id)
        if not keys:
            return
        pos = bisect_right(keys, entry_key) - 1
        if pos >= 0 and keys[pos] == entry_key:
            del keys[pos]

    def range(self, index_id: int, lo: str, hi: str) -> List[str]:
        """Entry keys in ``[lo, hi)``, ascending (a snapshot copy)."""
        if self.race.enabled:
            self.race.read(f"i{index_id}:range", relaxed=True)
        keys = self._sorted.get(index_id)
        if not keys:
            return []
        return keys[bisect_left(keys, lo):bisect_left(keys, hi)]

    def count(self, index_id: int) -> int:
        """How many entries this master holds for one index."""
        return len(self._sorted.get(index_id, ()))

    def counts(self) -> Tuple[Tuple[int, int], ...]:
        """(index_id, entries) per index, sorted — digest/test fodder."""
        return tuple(sorted((index_id, len(keys))
                            for index_id, keys in self._sorted.items()))
