"""Multi-tenant tables: namespaces, admission control, SLA breakout.

A *tenant* is a named slice of the cluster: its tables (and their
hidden index tables) live under a ``tenant/`` name prefix, carry the
tenant's default consistency level (García-Recuero's client-centric
framing — the tenant picks the contract, individual requests may still
override), and are subject to per-tenant admission control on every
master's dispatch path.

Admission reuses the power-cap throttle's token-bucket slot arithmetic
(:class:`repro.cluster.powercap.AdmissionThrottle`), but where the
power cap *paces* cooperative clients, tenant admission must not block
the dispatch thread — an over-budget request is failed with
``RetryLater`` immediately and counted as a throttle drop, and the
client's normal retry/backoff absorbs it.  Rates are per master, so a
tenant spread over N masters gets N× the configured rate (document the
multiplier instead of coordinating buckets across servers).

Everything here is opt-in: with no tenants registered, servers carry an
empty throttle dict and an empty defaults dict, the dispatch path takes
one falsy-dict branch, and runs stay bit-identical to single-tenant
builds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.ramcloud.consistency import validate_level

__all__ = ["TenantSpec", "TenantStats", "TenantThrottle", "tenant_table_name"]


def tenant_table_name(tenant: Optional[str], name: str) -> str:
    """The namespaced table name (``tenant/name``; bare name if none)."""
    if tenant is None:
        return name
    return f"{tenant}/{name}"


@dataclass(frozen=True)
class TenantSpec:
    """Configuration for one tenant.

    ``default_consistency`` is the level applied when a request carries
    none (``None`` defers to the server config's default, which keeps a
    plain SYNC_RF tenant bit-identical to an untenanted run).
    ``admission_rate`` is ops/s *per master*; ``inf`` disables the
    bucket entirely so no throttle object is even created.
    """

    name: str
    default_consistency: Optional[str] = None
    admission_rate: float = math.inf

    def __post_init__(self):
        if not self.name or "/" in self.name:
            raise ValueError(f"bad tenant name {self.name!r}")
        if self.default_consistency is not None:
            validate_level(self.default_consistency)
        if self.admission_rate <= 0:
            raise ValueError(
                f"admission rate must be positive, got {self.admission_rate}")


class TenantThrottle:
    """A per-master, per-tenant token bucket for the dispatch path.

    Same slot arithmetic as the power cap's ``AdmissionThrottle``, but
    non-blocking: :meth:`try_admit` either claims the next slot or
    refuses, it never returns a delay — the dispatch thread must not
    sleep on a tenant's behalf.  Only the dispatch thread touches the
    slot counter, so no race handle is needed.
    """

    __slots__ = ("tenant", "rate", "_next_slot", "drops")

    def __init__(self, tenant: str, rate: float):
        self.tenant = tenant
        self.rate = rate
        self._next_slot = 0.0
        #: Requests refused at dispatch (the tenant's SLA breakout).
        self.drops = 0

    def try_admit(self, now: float) -> bool:
        """Claim the next admission slot if it is due, else refuse."""
        if math.isinf(self.rate):
            return True
        if self._next_slot > now:
            self.drops += 1
            return False
        self._next_slot = now + 1.0 / self.rate
        return True


@dataclass
class TenantStats:
    """Per-tenant SLA breakout aggregated over one experiment."""

    ops: int = 0
    p99_latency: float = 0.0
    throttle_drops: int = 0
    bytes_moved: int = 0
    client_errors: int = 0
    mean_latency: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "ops": self.ops,
            "p99_latency": self.p99_latency,
            "throttle_drops": self.throttle_drops,
            "bytes_moved": self.bytes_moved,
            "client_errors": self.client_errors,
            "mean_latency": self.mean_latency,
        }
