"""The RAMCloud server process: collocated master + backup services.

"Usually, storage servers and backups are collocated within a same
physical machine" (§II-B) — and in RAMCloud they share one process, one
dispatch thread and one worker pool.  That sharing is the mechanism
behind the paper's Finding 3: replication requests from other masters
contend with client requests for the same worker CPU.

Threading model
---------------
* One **dispatch thread**, pinned to a core, busy-polling the NIC
  (Table I: 25 % CPU on an idle 4-core server).  It charges a small
  per-request handoff cost and feeds the worker queue.
* ``worker_threads`` **workers** (3 on the paper's 4-core nodes), each a
  process that executes request service code on the CPU.
* The write path serializes on the log-append critical section; its
  cost grows with the number of concurrently active workers
  (:meth:`~repro.ramcloud.config.CostModel.write_crit`) — RAMCloud's
  "poor thread handling" under concurrent updates (Finding 2).

Replication
-----------
Each open segment has ``replication_factor`` backups chosen at random
when the segment is opened.  Every update is pushed to each backup in
turn and the master answers the client only after the last
acknowledgement (§VI: "it has to wait for the acknowledgements from the
backups before answering the client ... crucial for providing strong
consistency guarantees").
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Optional, Tuple

from repro.hardware.node import Node
from repro.net.fabric import Fabric, NodeUnreachable
from repro.net.rpc import RpcRequest, RpcService, RpcTimeout
from repro.ramcloud.config import CostModel, ServerConfig
from repro.ramcloud.errors import (
    BackupBehind,
    LogOutOfMemory,
    ObjectDoesntExist,
    RamCloudError,
    RetryLater,
    StaleEpoch,
    StaleVersion,
    WrongServer,
)
from repro.ramcloud.consistency import SYNC_RF
from repro.ramcloud.hashtable import HashTable
from repro.ramcloud.indexing import (
    SortedIndexEntries,
    encode_entry_key,
    indexlet_for_entry_key,
)
from repro.ramcloud.log import Log
from repro.ramcloud.segment import LogEntry, Segment
from repro.ramcloud.tablets import TabletStatus, key_hash
from repro.ramcloud.tenancy import TenantThrottle
from repro.sim.distributions import RandomStream
from repro.sim.kernel import Interrupt, Process, Simulator
from repro.sim.racecheck import shared, task_boundary
from repro.sim.resources import Mutex, Store

__all__ = ["RamCloudServer", "SegmentReplica"]


class SegmentReplica:
    """A backup's copy of one master segment.

    Open replicas live in the backup's DRAM; when the master closes the
    segment the backup flushes the replica to disk and frees the DRAM
    (§II-B).  The ``segment`` reference stands in for the byte copy —
    conceptually the backup holds its own bytes.
    """

    __slots__ = ("master_id", "segment", "nbytes", "closed", "on_disk",
                 "cached", "entries_applied")

    def __init__(self, master_id: str, segment: Segment):
        self.master_id = master_id
        self.segment = segment
        self.nbytes = 0
        self.closed = False
        self.on_disk = False
        # True once a recovery read pulled the replica back into DRAM;
        # later recovery masters fetching their share skip the disk.
        self.cached = False
        # How many of the master segment's entries this backup has
        # durably applied (the ``upto`` watermark carried on every
        # replicate_append).  Recovery serves only this prefix, which
        # is what makes an ASYNC_BOUNDED master's unreplicated tail
        # honestly *acknowledged-but-lost*.  None = legacy replica with
        # no watermark ever reported (serve everything, the pre-
        # watermark behaviour).
        self.entries_applied: Optional[int] = None

    @property
    def key(self) -> Tuple[str, int]:
        """(master_id, segment_id) identifying this replica."""
        return (self.master_id, self.segment.segment_id)


class RamCloudServer(RpcService):
    """One storage server: master role + backup role in one process."""

    def __init__(self, sim: Simulator, fabric: Fabric, node: Node,
                 config: ServerConfig, cost: CostModel, coordinator,
                 stream: RandomStream):
        super().__init__(sim, fabric, node, name=f"server:{node.name}")
        self.server_id = node.name
        self.config = config
        self.cost = cost
        self.coordinator = coordinator
        self.stream = stream

        # ---- membership view (the epoch-stamped server list) ----
        # Installed by the coordinator's enlistment handshake and kept
        # current by ``server_list`` pushes; every placement and
        # liveness decision below consults THIS view, never the
        # coordinator's ground truth.  Initialized before the log so
        # the segment-open callback can already consult it.
        self.server_list_version = 0
        self.live_view: Tuple[str, ...] = ()
        self.dead_view: frozenset = frozenset()
        # Fencing: set when this server learns (via a server-list
        # update or a backup's StaleEpoch rejection) that the cluster
        # evicted it.  A fenced server self-quiesces: it stops serving
        # data RPCs and stops replicating, so it can never diverge the
        # durable log after its own recovery began.
        self.fenced = False
        self.fenced_at: Optional[float] = None
        self.writes_completed_at_fence: Optional[int] = None
        # Clients whose cached map predates this epoch are rejected
        # with StaleEpoch (raised after recovery hands us tablets).
        self.min_client_epoch = 0
        # Durability repair: (segment_id, slot) pairs whose replica was
        # lost with a dead backup, awaiting re-replication.
        self.under_replicated: set = set()
        self.replicas_lost = 0
        self.segments_repaired = 0
        self._repair_proc: Optional[Process] = None
        self.view_race = shared(sim, f"{self.server_id}:view")

        # ---- master state ----
        self._bulk_loading = False
        self.log = Log(config, on_open=self._choose_backups_lenient,
                       on_close=self._segment_closed)
        self.hashtable = HashTable()
        self.log_lock = Mutex(sim, name=f"{self.server_id}:log")
        # One replication/replay pipeline per master: during recovery the
        # replay→re-replicate stream is serialized on this lock (it is a
        # single log being re-built), so recovery *time* grows with the
        # replication factor, not just CPU (Finding 6).
        self.replay_lock = Mutex(sim, name=f"{self.server_id}:replay")
        # (table_id, tablet_index, shard) → status
        self.tablets: Dict[Tuple[int, int, int], str] = {}
        # (table_id, tablet_index) → shard count of that tablet
        self.tablet_shards: Dict[Tuple[int, int], int] = {}
        self._next_version = 1
        # Race-detection handles (debug mode): the hash table and log
        # declare @guarded_by("log_lock"), resolved against this server.
        self.hashtable.race = shared(sim, f"{self.server_id}:hashtable",
                                     obj=self.hashtable, owner=self)
        self.log.set_race(shared(sim, f"{self.server_id}:log",
                                 obj=self.log, owner=self))
        self.race = shared(sim, f"{self.server_id}:tablets")

        # ---- secondary indexes (repro.ramcloud.indexing) ----
        # index_table_id → indexlet boundaries, installed by the
        # coordinator at create_index/enlist time (and by a recovery
        # plan).  Empty for index-free runs: every hot-path guard below
        # is a single falsy-dict check, so such runs stay bit-identical.
        self.index_configs: Dict[int, Tuple[str, ...]] = {}
        # The sorted entry-key lists range Search scans; maintained in
        # lock-step with the hash table under log_lock.
        self.index_entries = SortedIndexEntries()
        self.index_entries.race = shared(sim, f"{self.server_id}:index",
                                         obj=self.index_entries, owner=self)
        # Index-entry maintenance RPCs get their own queue and worker,
        # spawned lazily by the first install_index_config: a data
        # master blocks a worker while its index entries land, so index
        # appends must not queue behind client ops (same circular-wait
        # argument as backup_worker_threads — index workers only ever
        # wait on backup workers, which never wait on anyone).
        self._index_queue: Optional[Store] = None
        self.index_inserts = 0
        self.index_removes = 0
        self.searches_served = 0

        # ---- multi-tenant tables (repro.ramcloud.tenancy) ----
        # table_id → tenant default consistency level; table_id →
        # dispatch-path token bucket.  Both empty unless the
        # coordinator installs a tenant, keeping untenanted runs (and
        # SYNC_RF-default tenants with no admission cap) bit-identical.
        self._tenant_defaults: Dict[int, str] = {}
        self._tenant_throttles: Dict[int, TenantThrottle] = {}
        self.requests_throttled = 0

        # ---- backup state ----
        self.replicas: Dict[Tuple[str, int], SegmentReplica] = {}
        # master_id → highest object version this backup has applied
        # from that master (fed by the replicate_append ``upto``
        # watermarks).  EVENTUAL backup reads gate visibility — and the
        # client's read-your-writes session check — on this.
        self.backup_watermarks: Dict[str, int] = {}

        # ---- per-request consistency (docs/CONSISTENCY.md) ----
        # The batched-replication queue for ASYNC_BOUNDED/EVENTUAL
        # writes: (segment, entry, upto, acked_at) tuples awaiting a
        # flush.  All machinery is built lazily by the first async
        # write, so SYNC_RF-only runs schedule no extra events and stay
        # bit-identical to pre-consistency builds.
        self._repl_pending: List[Tuple[Segment, LogEntry, int, float]] = []
        # Acknowledged-but-unreplicated bytes; writers backpressure once
        # this reaches ServerConfig.staleness_bound_bytes.
        self.unreplicated_bytes = 0
        self._flush_queue: Optional[Store] = None
        self._flusher: Optional[Process] = None
        # Largest (backup-apply time − client-ack time) any flushed
        # batch observed — the measured staleness the durability-gap
        # harness reports against the configured bound.
        self.max_observed_staleness = 0.0
        self.async_writes_acked = 0
        self.backup_reads_served = 0
        # Race handle for the batch queue / byte gauge / watermarks:
        # every mutation is a single-step guarded add/drain that never
        # spans a yield (the under_replicated work-queue idiom), so
        # accesses are declared relaxed.
        self.repl_race = shared(sim, f"{self.server_id}:repl")

        # ---- threading ----
        self.worker_queue = Store(sim, name=f"{self.server_id}:work",
                                  lifo_getters=True)
        self.backup_queue = Store(sim, name=f"{self.server_id}:backup-work",
                                  lifo_getters=True)
        self.active_workers = 0
        self._threads: List[Process] = []
        self._background: List[Process] = []
        self.killed = False

        # ---- adaptive power management (repro.powermgmt) ----
        # Runtime-mutable copies of the config knobs so a governor (or
        # a SetGovernor fault action) can flip policy mid-run; the
        # dispatch and worker loops re-read them on every iteration.
        self.dispatch_mode = config.dispatch_mode
        self.core_parking = config.core_parking
        self.dispatch_sleeps = 0
        self.core_parks = 0

        # ---- statistics ----
        self.ops_completed = 0
        self.reads_completed = 0
        self.writes_completed = 0
        self.replications_handled = 0
        self.recovery_bytes_replayed = 0
        self.requests_dropped = 0

        self.node.cpu.pin_core()  # the dispatch thread's core
        self._threads.append(
            sim.process(self._dispatch_loop(), name=f"{self.name}:dispatch"))
        # Workers run _serve_queue directly (no per-thread wrapper
        # generator: a trampoline frame would be re-entered on every
        # resume of every worker).
        for i in range(config.worker_threads):
            self._threads.append(
                sim.process(self._serve_queue(self.worker_queue),
                            name=f"{self.name}:worker{i}"))
        for i in range(config.backup_worker_threads):
            self._threads.append(
                sim.process(self._serve_queue(self.backup_queue),
                            name=f"{self.name}:backup-worker{i}"))
        self._cleaner = sim.process(self._cleaner_loop(),
                                    name=f"{self.name}:cleaner")
        self._threads.append(self._cleaner)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def kill(self) -> None:
        """Kill the RAMCloud process on this machine (the paper's crash
        injection: "we kill RAMCloud process on that node").

        The machine itself stays up; the PDU keeps metering it.
        """
        if self.killed:
            return
        self.killed = True
        self.shutdown(NodeUnreachable(f"{self.server_id} crashed"))
        queued = self.worker_queue.drain() + self.backup_queue.drain()
        if self._index_queue is not None:
            queued += self._index_queue.drain()
        for request in queued:
            if not request.reply.triggered:
                request.fail(NodeUnreachable(f"{self.server_id} crashed"))
        for proc in self._threads + self._background:
            proc.interrupt("killed")
        self.node.cpu.unpin_core()

    def set_power_mode(self, dispatch_mode: Optional[str] = None,
                       core_parking: Optional[bool] = None) -> None:
        """Flip the adaptive-dispatch / core-parking policy at runtime
        (called by :class:`~repro.powermgmt.PowerManager` and the
        ``SetGovernor`` fault action).  Loops pick the change up on
        their next iteration; a dispatch thread already blocked stays
        blocked until its next request, exactly like a real governor
        change taking effect at the next idle transition."""
        if dispatch_mode is not None:
            if dispatch_mode not in ("poll", "adaptive"):
                raise ValueError(f"bad dispatch_mode {dispatch_mode!r}")
            self.dispatch_mode = dispatch_mode
        if core_parking is not None:
            self.core_parking = core_parking

    def _spawn(self, generator, name: str) -> Process:
        """Track a background process so kill() can reap it."""
        proc = self.sim.process(generator, name=name)
        self._background.append(proc)
        if len(self._background) > 64:
            self._background = [p for p in self._background if p.is_alive]
        return proc

    # ------------------------------------------------------------------
    # membership view, fencing, durability repair
    # ------------------------------------------------------------------

    def apply_server_list(self, version: int, live, dead) -> None:
        """Install a coordinator server-list update.

        Idempotent and monotonic: stale or duplicate versions are
        ignored.  Runs at zero simulated time — the RPC that carried
        the update already paid the wire and CPU costs.  Side effects:
        newly-dead backups kick durability repair; finding *ourselves*
        in the dead set fences this server.
        """
        if self.killed or version <= self.server_list_version:
            return
        self.view_race.write("view")
        old_dead = self.dead_view
        self.server_list_version = version
        self.live_view = tuple(live)
        self.dead_view = frozenset(dead)
        if self.server_id in self.dead_view:
            self._fence()
            return
        for backup_id in sorted(self.dead_view - old_dead):
            self._on_backup_lost(backup_id)

    def _handle_server_list(self, request: RpcRequest) -> Generator:
        version, live, dead = request.args
        yield from self.node.cpu.execute(2.0e-6)
        self.apply_server_list(version, live, dead)
        request.respond(("ack", self.server_list_version))

    def _fence(self) -> None:
        """Self-quiesce: the cluster evicted this server (a server-list
        update lists it dead, or a backup rejected its replication with
        StaleEpoch).  Clients get WrongServer and re-route to the
        recovery masters; replication stops, so nothing this zombie
        appends can ever reach the durable log."""
        if self.fenced:
            return
        self.view_race.write("view")
        self.fenced = True
        self.fenced_at = self.sim.now
        self.writes_completed_at_fence = self.writes_completed
        # The repair loop (and every other background producer) checks
        # ``self.fenced`` at each step and winds down on its own; no
        # interrupt here — _fence may be called from inside one of them.

    def _on_backup_lost(self, backup_id: str) -> None:
        """A server-list update evicted ``backup_id``: every replica we
        placed on it is gone.  Record the holes and kick repair."""
        if self.killed or self.fenced:
            return
        for segment_id in sorted(self.log.segments):
            segment = self.log.segments[segment_id]
            for slot, sid in enumerate(segment.replica_backups):
                if sid == backup_id:
                    self._record_lost_replica(segment, slot)

    def _record_lost_replica(self, segment: Segment, slot: int) -> None:
        """One replica of ``segment`` is known lost (dead backup or a
        replication RPC that never acknowledged): remember the hole and
        make sure the repair loop is running."""
        key = (segment.segment_id, slot)
        # under_replicated is a work-queue set touched by several
        # producers (append/close failures, server-list deltas, recovery
        # lanes rolling the log head) plus the repair consumer.  Every
        # mutation is a single-step guarded add or discard — no
        # read-modify-write ever spans a yield — so accesses are
        # declared relaxed.
        self.view_race.write("under_replicated", relaxed=True)
        if key not in self.under_replicated:
            self.under_replicated.add(key)
            self.replicas_lost += 1
        self._kick_repair()

    def _kick_repair(self) -> None:
        if self.killed or self.fenced:
            return
        if self._repair_proc is not None and self._repair_proc.is_alive:
            return
        self._repair_proc = self._spawn(self._repair_loop(),
                                        name=f"{self.name}:repair")

    def _repair_loop(self) -> Generator:
        """Re-replicate every under-replicated segment through the
        normal ``replicate_segment`` path until the set drains (the
        paper's durability invariant: every segment back at the
        replication factor).  Single instance per master; retries with
        a pause while no candidate backups exist."""
        try:
            while not (self.killed or self.fenced):
                self.view_race.read("under_replicated", relaxed=True)
                pending = sorted(self.under_replicated)
                if not pending:
                    return
                progressed = False
                for segment_id, slot in pending:
                    if self.killed or self.fenced:
                        return
                    segment = self.log.segments.get(segment_id)
                    if segment is None:
                        # Cleaned away while queued: nothing to repair.
                        self.view_race.write("under_replicated",
                                             relaxed=True)
                        self.under_replicated.discard((segment_id, slot))
                        progressed = True
                        continue
                    backup = yield from self._replace_backup(segment, slot)
                    if backup is not None:
                        self.view_race.write("under_replicated",
                                             relaxed=True)
                        self.under_replicated.discard((segment_id, slot))
                        # Monotonic single-writer progress counter.
                        self.segments_repaired += 1  # simlint: disable=SIM006 gauge
                        progressed = True
                if not progressed:
                    # No live replacement candidates right now; wait for
                    # membership to change.
                    yield self.sim.timeout(0.1)
        except StaleEpoch:
            # A backup's view says we are dead; _replace_backup already
            # fenced us.  The repair is the new owners' problem now.
            return

    # ------------------------------------------------------------------
    # secondary indexes / tenancy installs (coordinator pushes)
    # ------------------------------------------------------------------

    def install_index_config(self, index_id: int,
                             boundaries: Tuple[str, ...]) -> None:
        """Install one index's indexlet boundaries (zero simulated time:
        rides create_index, enlist, or a recovery plan — like
        :meth:`apply_server_list`).  Idempotent.  The first install also
        spawns this server's index worker, so index-free runs never
        carry the extra thread or its events."""
        if self.killed:
            return
        self.view_race.write("index_configs", relaxed=True)
        self.index_configs[index_id] = tuple(boundaries)
        if self._index_queue is None:
            self._index_queue = Store(self.sim,
                                      name=f"{self.server_id}:index-work",
                                      lifo_getters=True)
            self._threads.append(
                self.sim.process(self._serve_queue(self._index_queue),
                                 name=f"{self.name}:index-worker0"))

    def install_tenant(self, table_id: int, name: str,
                       default_level: Optional[str],
                       admission_rate: float) -> None:
        """Bind a table to its tenant's defaults (zero simulated time,
        pushed at create_table/enlist).  A tenant with no explicit
        default and no admission cap installs nothing the hot path can
        observe — such tenants stay bit-identical to untenanted runs."""
        if self.killed:
            return
        self.view_race.write("tenants", relaxed=True)
        if default_level is not None:
            self._tenant_defaults[table_id] = default_level
        if not math.isinf(admission_rate):
            self._tenant_throttles[table_id] = TenantThrottle(
                name, admission_rate)

    # ------------------------------------------------------------------
    # tablet ownership
    # ------------------------------------------------------------------

    def take_tablet(self, unit: Tuple[int, int, int], shard_count: int = 1,
                    ready: bool = True) -> None:
        """Own one (tablet, shard) unit.  ``unit`` is
        ``(table_id, tablet_index, shard)``."""
        table_id, index, _shard = unit
        if self.race.enabled:
            self.race.write(f"{unit[0]}.{unit[1]}.{unit[2]}")
        self.tablets[unit] = (TabletStatus.NORMAL if ready
                              else TabletStatus.RECOVERING)
        self.tablet_shards[(table_id, index)] = shard_count

    def drop_tablet(self, unit: Tuple[int, int, int]) -> None:
        """Stop owning one (tablet, shard) unit."""
        if self.race.enabled:
            self.race.write(f"{unit[0]}.{unit[1]}.{unit[2]}")
        self.tablets.pop(unit, None)

    def _check_ownership(self, table_id: int, key: str, span: int,
                         epoch: Optional[int] = None) -> None:
        if self.fenced:
            # Evicted from the cluster: route the client to whoever
            # recovered our tablets (it refreshes its map and retries).
            raise WrongServer(
                f"{self.server_id} is fenced (evicted from the cluster)")
        if epoch is not None and epoch < self.min_client_epoch:
            # The client routed here off a map that predates the
            # membership change that handed us these tablets; its view
            # of *other* tablets is equally stale, so force a refresh.
            raise StaleEpoch(
                f"client map epoch {epoch} predates ownership change "
                f"(this master requires >= {self.min_client_epoch})")
        h = key_hash(key)
        index = self._tablet_index_for(table_id, key, h, span)
        shard_count = self.tablet_shards.get((table_id, index), 1)
        shard = (h // span) % shard_count
        unit = (table_id, index, shard)
        if self.race.enabled:
            self.race.read(f"{unit[0]}.{unit[1]}.{unit[2]}")
        status = self.tablets.get(unit)
        if status is None:
            raise WrongServer(
                f"{self.server_id} does not own tablet shard {unit}")
        if status == TabletStatus.RECOVERING:
            raise RetryLater(f"tablet shard {unit} is recovering")

    def _tablet_index_for(self, table_id: int, key: str, h: int,
                          span: int) -> int:
        """First-level routing: hash for data tables, range (indexlet
        boundaries) for hidden index tables.  The second level — the
        recovery shard — stays hash-based for both, which is what lets
        recovery split an indexlet over subshards unchanged."""
        if self.index_configs:
            boundaries = self.index_configs.get(table_id)
            if boundaries is not None:
                return indexlet_for_entry_key(boundaries, key)
        return h % span

    # ------------------------------------------------------------------
    # replica placement
    # ------------------------------------------------------------------

    def _choose_backups(self, segment: Segment) -> Tuple[str, ...]:
        """Pick ``replication_factor`` random distinct backups for a new
        segment (§II-B: random selection so recovery parallelizes)."""
        rf = self.config.replication_factor
        if rf == 0:
            return ()
        candidates = [sid for sid in self.live_view
                      if sid != self.server_id]
        if len(candidates) < rf:
            raise RuntimeError(
                f"replication factor {rf} needs {rf} live backups, "
                f"have {len(candidates)}"
            )
        return tuple(self.stream.sample(candidates, rf))

    def _choose_backups_lenient(self, segment: Segment) -> Tuple[str, ...]:
        """Segment-open callback.  During cluster bootstrap the first
        head segment opens before peers have enlisted; it gets its
        backups assigned lazily by :meth:`_ensure_head_replicated` on
        the first actual append."""
        rf = self.config.replication_factor
        candidates = [sid for sid in self.live_view
                      if sid != self.server_id]
        if rf == 0 or len(candidates) < rf:
            return ()
        return tuple(self.stream.sample(candidates, rf))

    def _ensure_head_replicated(self) -> None:
        if (self.config.replication_factor > 0
                and not self.log.head.replica_backups):
            self.log.head.replica_backups = self._choose_backups(self.log.head)

    def _segment_closed(self, segment: Segment) -> None:
        """Log head rolled: tell this segment's backups to flush."""
        if self.killed or self._bulk_loading:
            return
        for slot, backup_id in enumerate(segment.replica_backups):
            if backup_id in self.dead_view:
                # Known dead per our server-list view: the replica is
                # already gone; go straight to repair.
                self._record_lost_replica(segment, slot)
                continue
            backup = self.coordinator.lookup_server(backup_id)
            if backup is None:
                continue
            self._spawn(
                self._send_close(backup, segment, slot),
                name=f"{self.name}:close-seg{segment.segment_id}",
            )

    def _send_close(self, backup: "RamCloudServer", segment: Segment,
                    slot: int) -> Generator:
        try:
            yield from backup.call(
                self.node, "replicate_close",
                args=(self.server_id, segment.segment_id),
                size_bytes=64, response_bytes=64,
                timeout=self.config.rpc_timeout,
            )
        except StaleEpoch:
            # The backup's epoch marks US dead: quiesce quietly (this
            # is a background process with no client to answer).
            self._fence()
        except (NodeUnreachable, RpcTimeout):
            # The backup died with the close in flight.  Its replica of
            # this segment can no longer be trusted durable: record the
            # hole and let the repair loop re-replicate elsewhere.
            if not self.killed:
                self._record_lost_replica(segment, slot)
        except Interrupt:
            pass  # killed while the close was in flight

    # ------------------------------------------------------------------
    # dispatch and workers
    # ------------------------------------------------------------------

    # Ops served by the collocated backup service's own threads (they
    # never issue nested RPCs, which is what makes the split
    # deadlock-free; see ServerConfig.backup_worker_threads).
    # ``server_list`` rides the backup queue too: membership updates
    # must keep flowing even when every master worker is wedged behind
    # the log lock (and the handler issues no nested RPCs).  ``ping``
    # does not: liveness probes are answered inline by the dispatch
    # thread (below), because a backup worker stuck behind a queue of
    # long recovery reads means "busy", not "dead".
    _BACKUP_OPS = frozenset({
        "replicate_append", "replicate_close", "replicate_segment",
        "recovery_read", "free_replica", "server_list", "backup_read",
    })

    # Index-entry maintenance from other masters' write paths: served
    # by the dedicated index worker (see install_index_config) so a
    # fleet of masters blocking on each other's index appends cannot
    # exhaust the shared worker pool in a circular wait.
    _INDEX_OPS = frozenset({"index_write", "index_remove"})

    # Client-facing data ops subject to per-tenant admission control
    # (maintenance traffic — replication, index appends, recovery — is
    # never throttled: stalling it would wedge the writers it serves).
    _TENANT_OPS = frozenset({
        "read", "write", "delete", "multiread", "search", "index_lookup",
    })

    def _dispatch_loop(self) -> Generator:
        """The pinned polling thread: inbox → per-request handoff cost →
        worker queue.  Its core is accounted 100 % busy by pin_core().

        Bulk data arriving for this server (recovery segment fetches)
        also crosses the dispatch thread (``_rx`` pseudo-requests),
        stalling the dispatch of concurrent client requests — the
        paper's Fig. 10 collateral damage on live-data reads.

        With ``dispatch_mode == "adaptive"`` (repro.powermgmt), an
        empty inbox sends the thread through :meth:`_dispatch_idle_wait`
        — bounded busy-polling, then an interrupt-style block that
        releases the pinned core's busy accounting — before the normal
        handoff.  In the default "poll" mode the code path below is
        event-for-event identical to the original busy-poll loop.
        """
        sim = self.sim
        inbox = self.inbox
        cost = self.cost
        while True:
            get = inbox.get()
            if not get.triggered and self.dispatch_mode == "adaptive":
                yield from self._dispatch_idle_wait(get)
            request = yield get
            # Handoff cost on the dispatch core (already pinned, so this
            # is pure latency/serialization, not extra utilization).
            yield sim.timeout(cost.dispatch_per_request)
            if request.op == "_rx":
                yield sim.timeout(request.args)
                request.respond(None)
            elif request.op == "ping":
                # Answered from the dispatch thread itself, as in
                # RAMCloud where the failure detector sits at transport
                # level.  Routing pongs through a worker queue turns
                # every long queue wedge (e.g. a backup grinding
                # through 32 MB recovery reads) into a false-positive
                # death — and with it a cascade of recoveries.
                yield sim.timeout(cost.ping_service)
                request.respond(("pong", self.server_list_version))
            elif request.op in self._BACKUP_OPS:
                self.backup_queue.put(request)
            elif request.op in self._INDEX_OPS:
                # Installed before any index op can arrive (the
                # coordinator pushes configs at create_index/enlist).
                self._index_queue.put(request)
            elif self._tenant_throttles and not self._admit_tenant(request):
                pass  # failed fast with RetryLater inside _admit_tenant
            elif (self.config.overload_queue_limit is not None
                  and len(self.worker_queue)
                  >= self.config.overload_queue_limit):
                self._drop_overloaded(request)
            else:
                self.worker_queue.put(request)

    def _dispatch_idle_wait(self, get) -> Generator:
        """Adaptive dispatch (docs/POWER.md): busy-poll the empty inbox
        for ``poll_idle_threshold`` intervals, then block interrupt-style.

        While blocked the pinned core is accounted idle
        (:meth:`Cpu.pinned_core_idle`), which is what collapses the
        paper's 25 % idle-CPU floor; the price is
        ``dispatch_wake_latency`` added to the request that ends the
        nap — the busy-poll/wake-latency trade the paper's §X points at.
        Returns with ``get`` triggered.
        """
        polls = 0
        while not get.triggered and polls < self.config.poll_idle_threshold:
            deadline = self.sim.timeout(self.config.poll_interval)
            yield self.sim.any_of([get, deadline])
            polls += 1
        if get.triggered:
            return
        self.dispatch_sleeps += 1
        self.node.cpu.pinned_core_idle()
        try:
            yield get
        finally:
            # Also runs when kill() interrupts a sleeping dispatch
            # thread (pinned_core_busy is lenient about the unpin
            # having already cleared the idle state).
            self.node.cpu.pinned_core_busy()
        yield self.sim.timeout(self.config.dispatch_wake_latency)

    def _admit_tenant(self, request: RpcRequest) -> bool:
        """Per-tenant admission on the dispatch path (only reached when
        at least one tenant has a rate cap).  Non-blocking by design:
        the dispatch thread must never sleep on a tenant's behalf, so
        an over-budget request is failed with RetryLater immediately —
        the client's normal backoff absorbs the drop — and counted on
        the tenant's token bucket."""
        if request.op not in self._TENANT_OPS:
            return True
        throttle = self._tenant_throttles.get(request.args[0])
        if throttle is None or throttle.try_admit(self.sim.now):
            return True
        self.requests_throttled += 1
        request.fail(RetryLater(
            f"tenant {throttle.tenant} over its admission rate "
            f"at {self.server_id}"))
        return False

    def _drop_overloaded(self, request: RpcRequest) -> None:
        """Admission control past ``overload_queue_limit``: drop the
        request on the floor.  The caller hears nothing and waits out
        its full rpc_timeout — the 1 s stall behind the paper's §VI
        "excessive timeouts" crashes.  A failsafe at 2x the timeout
        closes the reply for callers that never imposed a deadline of
        their own (or were interrupted first), so no event leaks.
        """
        self.requests_dropped += 1
        failsafe = self.sim.timeout(2.0 * self.config.rpc_timeout)

        def _close_reply(_ev, request=request):  # simlint: disable=PERF002 drop path must capture its request
            request.fail(RpcTimeout(
                f"{request.op} dropped by {self.server_id} under overload"))

        failsafe.add_callback(_close_reply)

    def _dispatch_rx(self, nbytes: int) -> Generator:
        """Pass ``nbytes`` of received bulk data through the dispatch
        thread (see :meth:`_dispatch_loop`)."""
        rx = RpcRequest(self.sim, "_rx", self.cost.dispatch_rx_per_byte
                        * nbytes, 0, 0, self.node)
        self.inbox.put(rx)
        yield rx.reply

    def _serve_queue(self, queue: Store) -> Generator:
        # The worker-thread inner loop: every served request resumes
        # this generator several times, so loop-invariant lookups are
        # bound once (self.core_parking / self.dispatch_mode stay
        # attribute reads — they are runtime-mutable policy knobs).
        sim = self.sim
        cpu = self.node.cpu
        worker_spin = self.cost.worker_spin
        handlers = self._HANDLERS
        while True:
            get = queue.get()
            if not get.triggered:
                # Spin-then-sleep: busy-poll briefly for the next request
                # before blocking (RAMCloud's nanoscheduling; see
                # CostModel.worker_spin).  The spin interval brackets the
                # wait directly (flattened from spinning(_wait(...)) —
                # one less generator frame per idle wait).
                deadline = sim.timeout(worker_spin)
                wait = sim.any_of([get, deadline])
                cpu.spin_begin()
                try:
                    yield wait
                finally:
                    cpu.spin_end()
                if not get.triggered and self.core_parking:
                    # Core parking (docs/POWER.md): the spin window
                    # expired empty, so power-gate this worker's core
                    # while blocked; the wake pays core_wake_latency
                    # before serving.  try_park_core refuses when it
                    # would strand a runner or park the last core.
                    if cpu.try_park_core():
                        self.core_parks += 1
                        try:
                            yield get
                        finally:
                            cpu.unpark_core()
                        yield sim.timeout(self.config.core_wake_latency)
            request = yield get
            # Each request is an unrelated work item for the race
            # detector: this worker's earlier touches must not pair
            # with touches made on behalf of this request.
            task_boundary(sim)
            self.active_workers += 1
            try:
                handler = handlers.get(request.op)
                if handler is None:
                    request.fail(ValueError(f"unknown op {request.op!r}"))
                else:
                    yield from handler(self, request)
            except Interrupt:
                if not request.reply.triggered:
                    request.fail(NodeUnreachable(f"{self.server_id} crashed"))
                raise
            except (NodeUnreachable, RpcTimeout, RamCloudError) as exc:
                if not request.reply.triggered:
                    request.fail(exc)
            finally:
                # Each += / -= is atomic within its step; the gauge is
                # *meant* to span the service yield (it counts busy
                # workers).
                self.active_workers -= 1  # simlint: disable=SIM006 gauge

    # ------------------------------------------------------------------
    # master ops
    # ------------------------------------------------------------------

    def _handle_read(self, request: RpcRequest) -> Generator:
        table_id, key, span = request.args[:3]
        epoch = request.args[3] if len(request.args) > 3 else None
        yield from self.node.cpu.execute(self.cost.read_service)
        try:
            self._check_ownership(table_id, key, span, epoch)
        except (WrongServer, RetryLater, StaleEpoch) as exc:
            request.fail(exc)
            return
        found = self.hashtable.lookup(table_id, key)
        if found is None:
            request.fail(ObjectDoesntExist(f"t{table_id}/{key}"))
            return
        _segment, entry = found
        self.ops_completed += 1
        self.reads_completed += 1
        request.respond((entry.value, entry.version, entry.value_size))

    def _append_locked(self, table_id: int, key: str, value_size: int,
                       value: Optional[bytes],
                       is_tombstone: bool,
                       expected_version: Optional[int] = None,
                       require_exists: bool = False,
                       index_keys: Optional[Tuple[Tuple[int, str], ...]]
                       = None) -> Generator:
        """The serialized log-append critical section.

        Returns ``(segment, entry, closed_segment, old_index_keys)``.
        ``old_index_keys`` is the displaced (or deleted) entry's
        ``index_keys`` — the write path diffs it against the new pairs
        to decide which index entries to add and which became stale.
        The critical section's CPU cost scales with concurrently-active
        workers — the contention the paper blames for update-heavy
        collapse.

        ``expected_version`` / ``require_exists`` are checked *inside*
        the lock, immediately after acquisition: checking them before
        acquiring would be a check-then-act race — a concurrent writer
        could change the object between the check and the append, and
        a conditional write would overwrite a version it never saw.
        On violation the lock is released and :class:`StaleVersion` /
        :class:`ObjectDoesntExist` raised (no version is consumed).
        """
        self._ensure_head_replicated()
        charged_crit = False
        log_lock = self.log_lock
        cpu = self.node.cpu
        hashtable = self.hashtable
        for _attempt in range(200):
            token = log_lock.acquire()
            # Contending writers busy-poll on the log head (the
            # active contention — cache-line bouncing, futex storms —
            # that makes update-heavy draw MORE power than read-only
            # per node, paper Fig. 4a).  Flattened spin accounting: the
            # write path traverses this section once per update.
            cpu.spin_begin()
            try:
                yield token
            except BaseException:
                log_lock.abort(token)
                raise
            finally:
                cpu.spin_end()
            try:
                if expected_version is not None or require_exists:
                    found = hashtable.lookup(table_id, key)
                    if require_exists and found is None:
                        raise ObjectDoesntExist(f"t{table_id}/{key}")
                    if expected_version is not None:
                        current = found[1].version if found else 0
                        if current != expected_version:
                            raise StaleVersion(
                                f"t{table_id}/{key}: expected "
                                f"v{expected_version}, at v{current}")
                if not charged_crit:
                    writers = log_lock.queue_length + 1
                    other_active = max(0, self.active_workers - writers)
                    crit = self.cost.write_crit(
                        writers, other_active,
                        queued=len(self.worker_queue))
                    yield from cpu.execute(crit)
                    charged_crit = True
                try:
                    version = self._next_version
                    segment, entry, closed = self.log.append(
                        table_id, key, value_size, version,
                        value=value, is_tombstone=is_tombstone,
                        index_keys=index_keys)
                except LogOutOfMemory:
                    segment = None
                else:
                    self._next_version += 1
                    if is_tombstone:
                        displaced = hashtable.remove(table_id, key)
                    else:
                        displaced = hashtable.insert(table_id, key,
                                                     segment, entry)
                    if self.index_configs and table_id in self.index_configs:
                        # This append IS an index entry: the sorted
                        # range structure moves in lock-step with the
                        # hash table (same lock, same step).
                        if is_tombstone:
                            self.index_entries.remove(table_id, key)
                        else:
                            self.index_entries.insert(table_id, key)
                    old_index_keys = (displaced.index_keys
                                      if displaced is not None else None)
            finally:
                log_lock.release(token)
            if segment is not None:
                return segment, entry, closed, old_index_keys
            # Log full: stall until the cleaner frees space (RAMCloud
            # blocks writes behind the cleaner rather than failing).
            yield self.sim.timeout(0.02)
        raise RetryLater(f"{self.server_id}: log full, cleaner starved")

    def _replicate_entry(self, segment: Segment, entry: LogEntry,
                         upto: int) -> Generator:
        """SYNC_RF: push one appended entry to every backup of its
        segment and wait for every acknowledgement before returning —
        the strong-consistency rule the paper identifies as a major
        cost ("it has to wait for the acknowledgements from the
        backups ... crucial for providing strong consistency
        guarantees", §VI).  ``upto`` is the segment's entry count at
        append time: the applied-prefix watermark the backup records
        (see :class:`SegmentReplica`).

        Raises :class:`StaleEpoch` (after fencing this server) if a
        backup's server-list epoch marks us dead — the client's request
        fails, it refreshes its map and retries at the new owner.
        """
        for slot, backup_id in enumerate(segment.replica_backups):
            if (backup_id in self.dead_view
                    or (segment.segment_id, slot) in self.under_replicated):
                # Known-lost replica (dead backup, or an earlier append
                # already failed): write through degraded, the repair
                # loop re-replicates the whole segment asynchronously.
                self._record_lost_replica(segment, slot)
                continue
            backup = self.coordinator.lookup_server(backup_id)
            if backup is None:
                continue
            yield from self.node.cpu.execute(self.cost.replication_send)
            call = backup.call(
                self.node, "replicate_append",
                args=(self.server_id, segment.segment_id, entry.log_bytes,
                      upto),
                size_bytes=entry.log_bytes + 64, response_bytes=64,
                timeout=self.config.rpc_timeout,
            )
            try:
                # The worker busy-polls for the backup's acknowledgement
                # (RPC waits spin in RAMCloud): replication raises power
                # per node with the replication factor (paper Fig. 7).
                yield from self.node.cpu.spinning(call)
            except StaleEpoch:
                self._fence()
                raise
            except (NodeUnreachable, RpcTimeout):
                # The backup went silent mid-replication: record the
                # lost replica and continue degraded; repair runs in
                # the background rather than stalling this write.
                self._record_lost_replica(segment, slot)

    def _replace_backup(self, segment: Segment, slot: int):
        """A backup of ``segment`` is dead: pick a replacement from our
        server-list view and re-replicate the segment's current contents
        to it (RAMCloud's backup-failure handling keeps every segment at
        full replication).

        Returns the new backup server, or None if no candidate exists
        or the replacement could not be reached.  Raises
        :class:`StaleEpoch` (after fencing) if the replacement's epoch
        marks us dead.
        """
        current = list(segment.replica_backups)
        candidates = [sid for sid in self.live_view
                      if sid != self.server_id and sid not in current]
        if not candidates:
            return None
        new_id = self.stream.choice(candidates)
        backup = self.coordinator.lookup_server(new_id)
        if backup is None:
            return None
        yield from self.node.cpu.execute(self.cost.replication_send)
        try:
            yield from backup.call(
                self.node, "replicate_segment",
                args=(self.server_id, segment.segment_id,
                      max(segment.bytes_used, 1)),
                size_bytes=segment.bytes_used + 64, response_bytes=64,
                timeout=self.config.rpc_timeout,
            )
        except StaleEpoch:
            self._fence()
            raise
        except (NodeUnreachable, RpcTimeout):
            return None
        current[slot] = new_id
        segment.replica_backups = tuple(current)
        return backup

    # ------------------------------------------------------------------
    # batched replication (ASYNC_BOUNDED / EVENTUAL writes)
    # ------------------------------------------------------------------

    def _async_enqueue(self, segment: Segment, entry: LogEntry,
                       upto: int) -> Generator:
        """Queue one acknowledged write for batched replication.

        The ack does not wait for backups; the staleness bound is held
        two ways — the flusher ships the batch within a quarter of
        ``staleness_bound_seconds`` of its oldest ack, and once
        ``staleness_bound_bytes`` of acknowledged-but-unreplicated
        bytes accumulate the writer backpressures *here*, before
        acking, so the byte bound holds even under overload.

        All machinery is lazily built on the first async write:
        SYNC_RF-only runs never create the flusher process or its
        queue, keeping the default path bit-identical.
        """
        if self._flush_queue is None:
            self._flush_queue = Store(self.sim,
                                      name=f"{self.server_id}:flush")
            self._flusher = self._spawn(self._async_flush_loop(),
                                        name=f"{self.name}:flusher")
        bound = self.config.staleness_bound_bytes
        while (self.unreplicated_bytes + entry.log_bytes > bound
               and not (self.killed or self.fenced)):
            # Backpressure: the bound is at risk — hold the ack until
            # the flusher drains.
            yield self.sim.timeout(self.config.staleness_bound_seconds / 8.0)
        if self.killed or self.fenced:
            return
        self.repl_race.write("pending", relaxed=True)
        was_empty = not self._repl_pending
        self._repl_pending.append((segment, entry, upto, self.sim.now))
        self.unreplicated_bytes += entry.log_bytes
        self.async_writes_acked += 1
        if was_empty:
            # Wake an idle flusher; while a batch is already pending
            # the flusher is awake and will pick this entry up too.
            self._flush_queue.put("wake")

    def _async_flush_loop(self) -> Generator:
        """One background flusher per master (lazily spawned, see
        :meth:`_async_enqueue`): ships the pending batch no later than
        ``staleness_bound_seconds/4`` after its oldest ack — or as soon
        as half the byte bound accumulates — leaving three quarters of
        the bound as delivery margin, so backup-apply-time staleness
        stays inside the bound while this master is alive."""
        sim = self.sim
        interval = self.config.staleness_bound_seconds / 4.0
        half_bound = max(1, self.config.staleness_bound_bytes // 2)
        try:
            while not (self.killed or self.fenced):
                yield self._flush_queue.get()
                while self._repl_pending and not (self.killed
                                                  or self.fenced):
                    deadline = self._repl_pending[0][3] + interval
                    while (self._repl_pending and sim.now < deadline
                           and self.unreplicated_bytes < half_bound):
                        yield sim.timeout(min(interval / 4.0,
                                              deadline - sim.now))
                    yield from self._flush_pending()
        except Interrupt:
            pass  # killed with a batch in flight: the tail is lost
        except StaleEpoch:
            pass  # fenced mid-flush; the pending tail must never land

    def _flush_pending(self) -> Generator:
        """Ship everything queued: one ``replicate_append`` per
        (segment, backup) pair covering the whole batch — the batching
        that makes ASYNC_BOUNDED cheaper than per-entry sync
        replication.  Runs on the background flusher, so the wait for
        backup acks is a plain block (no ack-spin CPU): that, plus the
        amortized send cost, is the §IX throughput/energy win."""
        self.repl_race.write("pending", relaxed=True)
        batch = self._repl_pending
        self._repl_pending = []
        oldest = batch[0][3]
        # segment_id → [segment, batched bytes, max upto]
        per_segment: Dict[int, list] = {}
        for segment, entry, upto, _acked_at in batch:
            rec = per_segment.get(segment.segment_id)
            if rec is None:
                per_segment[segment.segment_id] = [segment,
                                                   entry.log_bytes, upto]
            else:
                rec[1] += entry.log_bytes
                rec[2] = max(rec[2], upto)
        for segment_id in sorted(per_segment):
            segment, nbytes, upto = per_segment[segment_id]
            for slot, backup_id in enumerate(segment.replica_backups):
                if (backup_id in self.dead_view
                        or (segment.segment_id, slot)
                        in self.under_replicated):
                    self._record_lost_replica(segment, slot)
                    continue
                backup = self.coordinator.lookup_server(backup_id)
                if backup is None:
                    continue
                yield from self.node.cpu.execute(self.cost.replication_send)
                try:
                    yield from backup.call(
                        self.node, "replicate_append",
                        args=(self.server_id, segment.segment_id, nbytes,
                              upto),
                        size_bytes=nbytes + 64, response_bytes=64,
                        timeout=self.config.rpc_timeout,
                    )
                except StaleEpoch:
                    # A backup's epoch marks us dead: fence and stop —
                    # a zombie's batch must never reach the durable log
                    # (the same rule the sync path enforces).
                    self._fence()
                    raise
                except (NodeUnreachable, RpcTimeout):
                    self._record_lost_replica(segment, slot)
            self.repl_race.write("unreplicated_bytes", relaxed=True)
            self.unreplicated_bytes -= nbytes
        staleness = self.sim.now - oldest
        if staleness > self.max_observed_staleness:
            self.max_observed_staleness = staleness

    def _handle_write(self, request: RpcRequest) -> Generator:
        """Write one object.  ``expected_version`` (if not None) makes
        the write conditional — RAMCloud's reject-rules, the primitive
        its linearizable read-modify-write builds on [10]."""
        table_id, key, value_size, value, span, expected_version = \
            request.args[:6]
        epoch = request.args[6] if len(request.args) > 6 else None
        level = request.args[7] if len(request.args) > 7 else None
        index_keys = request.args[8] if len(request.args) > 8 else None
        if level is None:
            # Tenant default first (empty dict unless tenants exist),
            # then the cluster-wide config default.
            level = self._tenant_defaults.get(table_id,
                                              self.config.default_consistency)
        try:
            self._check_ownership(table_id, key, span, epoch)
        except (WrongServer, RetryLater, StaleEpoch) as exc:
            request.fail(exc)
            return
        try:
            segment, entry, closed, old_index_keys = \
                yield from self._append_locked(
                    table_id, key, value_size, value, is_tombstone=False,
                    expected_version=expected_version,
                    index_keys=index_keys)
        except StaleVersion as exc:
            yield from self.node.cpu.execute(self.cost.read_service)
            request.fail(exc)
            return
        del closed  # backups were notified by the on_close callback
        # The segment's entry count right after the append (no yields
        # intervene): the applied-prefix watermark the backups record.
        upto = len(segment.entries)
        yield from self.node.cpu.execute(self.cost.write_service)
        # Index maintenance, crash-ordered: new entries land BEFORE the
        # data record replicates (a crash can leave a dangling entry,
        # which index_lookup validation filters — never a missing one
        # for an acknowledged write); stale entries are removed only
        # AFTER replication, so a crash in between leaves filterable
        # garbage, not lost index coverage.
        added = stale = ()
        if index_keys or old_index_keys:
            added, stale = self._diff_index_keys(index_keys, old_index_keys)
        for index_id, secondary in added:
            yield from self._index_entry_rpc(
                "index_write", index_id, encode_entry_key(secondary, key),
                level)
        if self.config.replication_factor > 0:
            if level == SYNC_RF:
                yield from self._replicate_entry(segment, entry, upto)
            else:
                # ASYNC_BOUNDED / EVENTUAL: ack after the local append;
                # the flusher replicates in batches within the bound.
                yield from self._async_enqueue(segment, entry, upto)
        for index_id, secondary in stale:
            yield from self._index_entry_rpc(
                "index_remove", index_id, encode_entry_key(secondary, key),
                level)
        self.ops_completed += 1
        self.writes_completed += 1
        request.respond(entry.version)

    def _handle_delete(self, request: RpcRequest) -> Generator:
        table_id, key, span = request.args[:3]
        epoch = request.args[3] if len(request.args) > 3 else None
        level = request.args[4] if len(request.args) > 4 else None
        if level is None:
            level = self._tenant_defaults.get(table_id,
                                              self.config.default_consistency)
        try:
            self._check_ownership(table_id, key, span, epoch)
        except (WrongServer, RetryLater, StaleEpoch) as exc:
            request.fail(exc)
            return
        try:
            segment, entry, _closed, old_index_keys = \
                yield from self._append_locked(
                    table_id, key, 0, None, is_tombstone=True,
                    require_exists=True)
        except ObjectDoesntExist as exc:
            request.fail(exc)
            return
        upto = len(segment.entries)
        yield from self.node.cpu.execute(self.cost.write_service)
        if self.config.replication_factor > 0:
            if level == SYNC_RF:
                yield from self._replicate_entry(segment, entry, upto)
            else:
                yield from self._async_enqueue(segment, entry, upto)
        # Index entries come off only after the tombstone is durable: a
        # crash in between leaves dangling entries that index_lookup
        # validation filters, never a resurrected object.
        if old_index_keys:
            for index_id, secondary in old_index_keys:
                yield from self._index_entry_rpc(
                    "index_remove", index_id,
                    encode_entry_key(secondary, key), level)
        self.ops_completed += 1
        self.writes_completed += 1
        request.respond(entry.version)

    def _handle_multiread(self, request: RpcRequest) -> Generator:
        """Batched read (RAMCloud's MultiRead RPC): one dispatch, one
        worker pass over many keys.  YCSB's scans map onto this."""
        table_id, keys, span = request.args[:3]
        epoch = request.args[3] if len(request.args) > 3 else None
        yield from self.node.cpu.execute(
            self.cost.multiread_batch_overhead
            + self.cost.multiread_per_key * len(keys))
        results = {}
        for key in keys:
            try:
                self._check_ownership(table_id, key, span, epoch)
            except (WrongServer, RetryLater, StaleEpoch) as exc:
                request.fail(exc)
                return
            found = self.hashtable.lookup(table_id, key)
            if found is not None:
                entry = found[1]
                results[key] = (entry.value, entry.version, entry.value_size)
        self.ops_completed += len(keys)
        self.reads_completed += len(keys)
        request.respond(results)

    # ------------------------------------------------------------------
    # secondary indexes (repro.ramcloud.indexing)
    # ------------------------------------------------------------------

    @staticmethod
    def _diff_index_keys(index_keys, old_index_keys):
        """Diff a write's (index_id, secondary) pairs against the
        displaced entry's: returns ``(added, stale)``."""
        new_pairs = tuple(index_keys or ())
        old_pairs = tuple(old_index_keys or ())
        added = tuple(p for p in new_pairs if p not in old_pairs)
        stale = tuple(p for p in old_pairs if p not in new_pairs)
        return added, stale

    def _index_entry_rpc(self, op: str, index_id: int, entry_key: str,
                         level: Optional[str]) -> Generator:
        """Apply one index-entry mutation at the owning indexlet master
        (the synchronous index maintenance of the write path).

        Routing peeks the coordinator's tablet map — the same modeling
        shortcut as ``lookup_server``; a stale peek fails at the target
        with WrongServer/RetryLater and is retried against a fresh one.
        Removes tolerate ObjectDoesntExist: a crash window (or a replay
        racing a migration) can have taken the entry off already.
        """
        for _attempt in range(64):
            if self.killed or self.fenced:
                return
            route = self.coordinator.index_entry_route(index_id, entry_key)
            if route is None:
                return  # index dropped while the write was in flight
            owner_id, span = route
            target = self.coordinator.lookup_server(owner_id)
            if target is None:
                yield self.sim.timeout(0.01)
                continue
            yield from self.node.cpu.execute(self.cost.index_maintain_send)
            call = target.call(
                self.node, op,
                args=(index_id, entry_key, span, None, level),
                size_bytes=len(entry_key) + 64, response_bytes=64,
                timeout=self.config.rpc_timeout,
            )
            try:
                # The write-path worker spins on the indexlet's ack,
                # exactly like a replication ack wait.
                yield from self.node.cpu.spinning(call)
                return
            except ObjectDoesntExist:
                return
            except (WrongServer, RetryLater, NodeUnreachable, RpcTimeout):
                yield self.sim.timeout(0.01)
        raise RetryLater(
            f"index {index_id} entry unreachable from {self.server_id}")

    def _handle_index_write(self, request: RpcRequest) -> Generator:
        """Append one index entry to this indexlet's log (sent by a
        data master's write path).  The entry is an ordinary log
        record: replicated at the write's consistency level, relocated
        by the cleaner, replayed by crash recovery."""
        index_id, entry_key, span, epoch, level = request.args
        if level is None:
            level = self._tenant_defaults.get(index_id,
                                              self.config.default_consistency)
        try:
            self._check_ownership(index_id, entry_key, span, epoch)
        except (WrongServer, RetryLater, StaleEpoch) as exc:
            request.fail(exc)
            return
        segment, entry, _closed, _old = yield from self._append_locked(
            index_id, entry_key, 0, None, is_tombstone=False)
        upto = len(segment.entries)
        yield from self.node.cpu.execute(self.cost.write_service)
        if self.config.replication_factor > 0:
            if level == SYNC_RF:
                yield from self._replicate_entry(segment, entry, upto)
            else:
                yield from self._async_enqueue(segment, entry, upto)
        self.writes_completed += 1
        self.index_inserts += 1
        request.respond(entry.version)

    def _handle_index_remove(self, request: RpcRequest) -> Generator:
        """Tombstone one index entry (a data delete, or an overwrite
        that changed the secondary key)."""
        index_id, entry_key, span, epoch, level = request.args
        if level is None:
            level = self._tenant_defaults.get(index_id,
                                              self.config.default_consistency)
        try:
            self._check_ownership(index_id, entry_key, span, epoch)
        except (WrongServer, RetryLater, StaleEpoch) as exc:
            request.fail(exc)
            return
        try:
            segment, entry, _closed, _old = yield from self._append_locked(
                index_id, entry_key, 0, None, is_tombstone=True,
                require_exists=True)
        except ObjectDoesntExist as exc:
            request.fail(exc)
            return
        upto = len(segment.entries)
        yield from self.node.cpu.execute(self.cost.write_service)
        if self.config.replication_factor > 0:
            if level == SYNC_RF:
                yield from self._replicate_entry(segment, entry, upto)
            else:
                yield from self._async_enqueue(segment, entry, upto)
        self.writes_completed += 1
        self.index_removes += 1
        request.respond(entry.version)

    def _handle_search(self, request: RpcRequest) -> Generator:
        """Range lookup over one indexlet *shard*: entry keys in
        ``[lo, hi)``, clipped to the indexlet's upper boundary, at most
        ``limit`` of them (``truncated`` tells the client to continue
        from the last returned key).  The client fans out across an
        indexlet's shards and walks indexlets in boundary order."""
        index_id, lo, hi, limit, span, shard, epoch = request.args
        if self.fenced:
            request.fail(WrongServer(
                f"{self.server_id} is fenced (evicted from the cluster)"))
            return
        if epoch is not None and epoch < self.min_client_epoch:
            request.fail(StaleEpoch(
                f"client map epoch {epoch} predates ownership change "
                f"(this master requires >= {self.min_client_epoch})"))
            return
        boundaries = self.index_configs.get(index_id)
        if boundaries is None:
            request.fail(WrongServer(
                f"{self.server_id} has no indexlet map for index "
                f"{index_id}"))
            return
        indexlet = indexlet_for_entry_key(boundaries, lo)
        unit = (index_id, indexlet, shard)
        if self.race.enabled:
            self.race.read(f"{unit[0]}.{unit[1]}.{unit[2]}")
        status = self.tablets.get(unit)
        if status is None:
            request.fail(WrongServer(
                f"{self.server_id} does not own indexlet shard {unit}"))
            return
        if status == TabletStatus.RECOVERING:
            request.fail(RetryLater(f"indexlet shard {unit} is recovering"))
            return
        hi_eff = hi
        if indexlet + 1 < len(boundaries) and boundaries[indexlet + 1] < hi:
            hi_eff = boundaries[indexlet + 1]
        shard_count = self.tablet_shards.get((index_id, indexlet), 1)
        scanned = self.index_entries.range(index_id, lo, hi_eff)
        matches = []
        truncated = False
        for entry_key in scanned:
            if shard_count > 1 and ((key_hash(entry_key) // span)
                                    % shard_count != shard):
                continue
            if len(matches) >= limit:
                truncated = True
                break
            matches.append(entry_key)
        yield from self.node.cpu.execute(
            self.cost.search_base
            + self.cost.search_per_entry * max(1, len(scanned)))
        self.ops_completed += 1
        self.reads_completed += 1
        self.searches_served += 1
        request.respond((tuple(matches), truncated))

    def _handle_index_lookup(self, request: RpcRequest) -> Generator:
        """Validate-and-fetch for search results: for each
        ``(primary, index_id, secondary)`` item, return the object only
        if it still carries that secondary key — the filter that makes
        dangling index entries (crash windows, concurrent deletes)
        invisible to readers."""
        table_id, items, span = request.args[:3]
        epoch = request.args[3] if len(request.args) > 3 else None
        yield from self.node.cpu.execute(
            self.cost.multiread_batch_overhead
            + self.cost.multiread_per_key * len(items))
        results = {}
        for primary, index_id, secondary in items:
            try:
                self._check_ownership(table_id, primary, span, epoch)
            except (WrongServer, RetryLater, StaleEpoch) as exc:
                request.fail(exc)
                return
            found = self.hashtable.lookup(table_id, primary)
            if found is None:
                continue
            entry = found[1]
            pairs = entry.index_keys
            if pairs is not None and (index_id, secondary) in pairs:
                results[primary] = (entry.value, entry.version,
                                    entry.value_size)
        self.ops_completed += len(items)
        self.reads_completed += len(items)
        request.respond(results)

    # ------------------------------------------------------------------
    # backup ops
    # ------------------------------------------------------------------

    def _reject_if_fenced(self, request: RpcRequest,
                          master_id: str) -> bool:
        """Backup-side zombie fencing (the heart of the epoch protocol):
        refuse replication from any master our server-list epoch marks
        dead — its recovery may already be replaying the old replicas,
        and accepting the write would diverge the durable log.  A fenced
        backup likewise refuses everything: it is out of the cluster.

        Fails the request and returns True when rejecting.
        """
        self.view_race.read("view", relaxed=True)
        if self.fenced:
            request.fail(NodeUnreachable(
                f"{self.server_id} is fenced (evicted from the cluster)"))
            return True
        if master_id in self.dead_view:
            request.fail(StaleEpoch(
                f"{self.server_id} rejects {request.op} from {master_id}: "
                f"evicted as of epoch {self.server_list_version}"))
            return True
        return False

    def _replica_for(self, master_id: str, segment: Segment) -> SegmentReplica:
        key = (master_id, segment.segment_id)
        replica = self.replicas.get(key)
        if replica is None:
            replica = SegmentReplica(master_id, segment)
            self.replicas[key] = replica
        return replica

    def _handle_replicate_append(self, request: RpcRequest) -> Generator:
        master_id, segment_id, nbytes = request.args[:3]
        upto = request.args[3] if len(request.args) > 3 else None
        if self._reject_if_fenced(request, master_id):
            return
        load = (len(self.backup_queue) + len(self.worker_queue)
                + self.active_workers - 1)
        yield from self.node.cpu.execute(self.cost.replication_cost(load))
        master = self.coordinator.lookup_server(master_id)
        if master is not None:
            segment = master.log.segments.get(segment_id)
            if segment is not None:
                replica = self._replica_for(master_id, segment)
                replica.nbytes += nbytes
                if upto is not None:
                    self._advance_watermark(replica, upto)
        self.replications_handled += 1
        request.respond("ack")

    def _advance_watermark(self, replica: SegmentReplica,
                           upto: int) -> None:
        """Record that ``replica`` now durably holds its segment's
        first ``upto`` entries, and advance this backup's per-master
        version watermark to the highest version in the newly-applied
        slice.  Sync acks can arrive out of segment order (RF > 1,
        concurrent writers), so both advances are monotonic maxes."""
        self.repl_race.write("watermark", relaxed=True)
        old = replica.entries_applied or 0
        if upto <= old:
            return
        replica.entries_applied = upto
        applied = replica.segment.entries[old:upto]
        if not applied:
            return
        top = max(e.version for e in applied)
        if top > self.backup_watermarks.get(replica.master_id, 0):
            self.backup_watermarks[replica.master_id] = top

    def _handle_replicate_close(self, request: RpcRequest) -> Generator:
        master_id, segment_id = request.args
        if self._reject_if_fenced(request, master_id):
            return
        yield from self.node.cpu.execute(2.0e-6)
        replica = self.replicas.get((master_id, segment_id))
        if replica is not None and not replica.closed:
            replica.closed = True
            self._spawn(self._flush_replica(replica),
                        name=f"{self.name}:flush-{master_id}-{segment_id}")
        request.respond("ack")

    def _flush_replica(self, replica: SegmentReplica) -> Generator:
        """Spill a closed replica to disk and free its DRAM (§II-B:
        backups keep a segment copy in DRAM "until it fills. Only then,
        they will flush the segment to disk and remove it from DRAM")."""
        nbytes = max(replica.nbytes, replica.segment.bytes_used)
        yield from self.node.disk.write(nbytes, stream_id=replica.key)
        replica.on_disk = True
        if self.node.disk.space.free >= nbytes:
            self.node.disk.space.put(nbytes)

    def _handle_replicate_segment(self, request: RpcRequest) -> Generator:
        """Whole-segment replication during recovery re-replication.

        Unlike steady-state appends, recovery replicas are flushed to
        disk before acknowledging: a recovery that buffered everything
        in DRAM would leave the cluster one failure away from data
        loss, so RAMCloud forces recovery segments down early — this is
        the write burst of Fig. 12.
        """
        master_id, segment_id, nbytes = request.args
        if self._reject_if_fenced(request, master_id):
            return
        yield from self.node.cpu.execute(
            self.cost.replication_segment_per_byte * nbytes)
        master = self.coordinator.lookup_server(master_id)
        if master is not None:
            segment = master.log.segments.get(segment_id)
            if segment is not None:
                replica = self._replica_for(master_id, segment)
                replica.nbytes = nbytes
                replica.closed = True
                replica.on_disk = True
                # Whole-segment replication ships the full current
                # contents: the applied prefix is everything.
                self._advance_watermark(replica, len(segment.entries))
        yield from self.node.disk.write(nbytes, stream_id=(master_id, "recov"))
        if self.node.disk.space.free >= nbytes:
            self.node.disk.space.put(nbytes)
        self.replications_handled += 1
        request.respond("ack")

    def _handle_recovery_read(self, request: RpcRequest) -> Generator:
        """Serve a crashed master's segment to a recovery master.

        The first read of a segment pays the disk read; the backup then
        keeps it partitioned in memory, so other recovery masters
        fetching their share of the same segment skip the disk.
        """
        master_id, segment_id, share = request.args
        replica = self.replicas.get((master_id, segment_id))
        if replica is None:
            request.fail(ObjectDoesntExist(
                f"no replica of {master_id}/seg{segment_id}"))
            return
        nbytes = max(replica.nbytes, replica.segment.bytes_used)
        if replica.on_disk and not replica.cached:
            yield from self.node.disk.read(nbytes, stream_id=replica.key)
            replica.cached = True
        served = max(1, int(nbytes * share))
        yield from self.node.cpu.execute(
            self.cost.recovery_read_per_byte * served)
        # Serve only the prefix this backup durably applied (see
        # SegmentReplica.entries_applied): an ASYNC_BOUNDED master's
        # acknowledged-but-unreplicated tail is honestly lost here —
        # the durability-gap harness counts exactly these entries.
        # Replicas with no watermark on record (None) serve everything.
        if replica.entries_applied is None:
            entries = list(replica.segment.entries)
        else:
            applied = replica.entries_applied
            entries = list(replica.segment.entries[:applied])
            dropped = replica.segment.entries[applied:]
            if dropped:
                # An overwrite dead-marks its predecessor at append
                # time — before the new entry is durably replicated —
                # and replicas share the master's entry objects by
                # reference.  When truncation drops that in-flight
                # successor, the predecessor inside the served prefix
                # is still the acknowledged durable version: a real
                # backup holds only bytes and would replay it.  Serve
                # a live copy so recovery does not lose the key.
                truncated = {(e.table_id, e.key) for e in dropped}
                for i in range(len(entries) - 1, -1, -1):
                    entry = entries[i]
                    ident = (entry.table_id, entry.key)
                    if ident not in truncated:
                        continue
                    truncated.discard(ident)
                    if not entry.live and not entry.is_tombstone:
                        entries[i] = LogEntry(
                            entry.table_id, entry.key, entry.value_size,
                            entry.version, value=entry.value,
                            index_keys=entry.index_keys)
                    if not truncated:
                        break
        request.respond((entries, served))

    def _handle_backup_read(self, request: RpcRequest) -> Generator:
        """EVENTUAL read served from this backup's replicated state.

        The client sends its per-master session watermark (the highest
        version it has written there); we serve only when our applied
        watermark covers both that token and the object's own version,
        and we actually hold a replica of the object's segment —
        otherwise :class:`BackupBehind` redirects the client to the
        master (a routed retry, never a backoff-counted failure).

        Availability semantics: a backup keeps serving through the
        undetected-crash window of its master (the EVENTUAL read's
        availability win — and the race the ``pytest -m faults``
        scenario exercises), but once its server-list view marks the
        master dead it refuses with StaleEpoch, exactly as it fences
        the master's replication.

        Modeling shortcut: the object lookup consults the master's
        hash table (the replica byte copy is modeled by reference, as
        in :class:`SegmentReplica`), but *visibility* is gated on this
        backup's own applied watermark — which is the part that
        matters for staleness and read-your-writes.
        """
        master_id, table_id, key, _span, client_watermark = request.args
        if self._reject_if_fenced(request, master_id):
            return
        yield from self.node.cpu.execute(self.cost.read_service)
        watermark = self.backup_watermarks.get(master_id, 0)
        if client_watermark > watermark:
            # Session check: the client has writes we have not applied.
            request.fail(BackupBehind(
                f"{self.server_id} applied {master_id} up to v{watermark}, "
                f"client session requires v{client_watermark}"))
            return
        master = self.coordinator.lookup_server(master_id)
        if master is None:
            request.fail(BackupBehind(f"no replica source for {master_id}"))
            return
        found = master.hashtable.lookup(table_id, key)
        if found is None:
            # Unknown key: cannot distinguish "never existed" from
            # "not yet replicated" — let the master decide.
            request.fail(BackupBehind(
                f"t{table_id}/{key} not in replicated state"))
            return
        segment, entry = found
        if (master_id, segment.segment_id) not in self.replicas:
            request.fail(BackupBehind(
                f"{self.server_id} holds no replica of "
                f"{master_id}/seg{segment.segment_id}"))
            return
        if entry.version > watermark:
            request.fail(BackupBehind(
                f"t{table_id}/{key} v{entry.version} newer "
                f"than applied watermark v{watermark}"))
            return
        self.ops_completed += 1
        self.reads_completed += 1
        self.backup_reads_served += 1
        request.respond((entry.value, entry.version, entry.value_size))

    def _handle_migrate_in(self, request: RpcRequest) -> Generator:
        """Receive a migrating tablet shard: bulk-append the entries and
        take ownership (RAMCloud's MigrateTablet, used by the paper's
        §IX elastic-sizing discussion)."""
        unit, shard_count, entries, nbytes = request.args
        table_id, index, shard = unit
        yield from self._dispatch_rx(nbytes)
        replay_cpu = (len(entries) * self.cost.replay_per_entry
                      + nbytes * self.cost.replay_per_byte)
        yield from self.node.cpu.execute_sliced(replay_cpu)
        token = self.log_lock.acquire()
        try:
            yield token
        except BaseException:
            # Interrupted (node killed) while queueing for the log lock:
            # withdraw the request so the lock is not leaked.
            self.log_lock.abort(token)
            raise
        try:
            for entry in entries:
                segment, new_entry, _closed = self.log.append(
                    entry.table_id, entry.key, entry.value_size,
                    entry.version, value=entry.value,
                    index_keys=entry.index_keys)
                self.hashtable.insert(entry.table_id, entry.key,
                                      segment, new_entry)
                if self.index_configs and entry.table_id in self.index_configs:
                    self.index_entries.insert(entry.table_id, entry.key)
        finally:
            self.log_lock.release(token)
        self.take_tablet(unit, shard_count, ready=True)
        request.respond("migrated")

    def migrate_shard_out(self, unit, shard_count: int,
                          span: int, target) -> Generator:
        """Push one owned (tablet, shard) unit to ``target`` and drop it
        locally; ``yield from`` this from an orchestration process."""
        table_id, index, shard = unit
        if self.tablets.get(unit) is None:
            raise WrongServer(f"{self.server_id} does not own {unit}")
        # Index tables route tablet membership by key range, data
        # tables by hash — the shard level is hash-based for both.
        boundaries = (self.index_configs.get(table_id)
                      if self.index_configs else None)
        moving = []
        nbytes = 0
        for key in list(self.hashtable.keys_for_table(table_id)):
            h = key_hash(key)
            if boundaries is not None:
                if indexlet_for_entry_key(boundaries, key) != index:
                    continue
            elif h % span != index:
                continue
            if (h // span) % shard_count != shard:
                continue
            _segment, entry = self.hashtable.lookup(table_id, key)
            moving.append(entry)
            nbytes += entry.log_bytes
        # Stop serving the unit while it moves (brief unavailability;
        # clients retry through the map refresh).
        self.tablets[unit] = TabletStatus.RECOVERING
        yield from self.node.cpu.execute_sliced(
            nbytes * self.cost.replay_per_byte)
        yield from target.call(
            self.node, "migrate_in",
            args=(unit, shard_count, moving, nbytes),
            size_bytes=nbytes + 256, response_bytes=64,
            timeout=60.0,
        )
        # Drop the moved keys from the index under the log lock (index
        # mutations and entry liveness must stay consistent with the
        # cleaner's copy-forward); dead entries stay behind for it.
        token = self.log_lock.acquire()
        try:
            yield token
        except BaseException:
            self.log_lock.abort(token)
            raise
        try:
            for entry in moving:
                self.hashtable.remove(entry.table_id, entry.key)
                if self.index_configs and entry.table_id in self.index_configs:
                    self.index_entries.remove(entry.table_id, entry.key)
        finally:
            self.log_lock.release(token)
        self.drop_tablet(unit)
        return len(moving)

    def _handle_free_replica(self, request: RpcRequest) -> Generator:
        master_id, segment_id = request.args
        yield from self.node.cpu.execute(1.0e-6)
        replica = self.replicas.pop((master_id, segment_id), None)
        if replica is not None and replica.on_disk:
            taken = min(self.node.disk.space.level,
                        max(replica.nbytes, replica.segment.bytes_used))
            self.node.disk.space.take(taken)
        request.respond("ack")

    # ------------------------------------------------------------------
    # crash recovery (recovery-master role)
    # ------------------------------------------------------------------

    def _handle_recover_partition(self, request: RpcRequest) -> Generator:
        """Coordinator RPC: replay a partition of a crashed master.

        The replay runs as a dedicated background process — NOT holding
        a worker thread for the whole recovery, mirroring RAMCloud's
        recovery threads.  The worker only pays the scheduling cost; the
        background process answers the coordinator when the partition is
        durable.
        """
        if self.fenced:
            # An evicted server cannot be a recovery master; failing
            # fast lets the coordinator reassign the partition.
            request.fail(NodeUnreachable(
                f"{self.server_id} is fenced (evicted from the cluster)"))
            return
        plan = request.args
        self._spawn(self._run_recovery(request, plan),
                    name=f"{self.name}:recover")
        yield from self.node.cpu.execute(2.0e-6)

    def _run_recovery(self, request: RpcRequest, plan) -> Generator:
        try:
            lost = yield from self._recover_partition(plan)
        except Interrupt:
            if not request.reply.triggered:
                request.fail(NodeUnreachable(f"{self.server_id} crashed"))
            raise
        except BaseException as exc:
            if not request.reply.triggered:
                request.fail(exc)
            return
        request.respond(("recovered", lost))

    def _recover_partition(self, plan) -> Generator:
        """Fetch, filter, replay and re-replicate one recovery partition.

        ``plan`` carries: the crashed master id, the tablet ids this
        partition covers, the table spans, and for each segment the
        backup to read it from.  Replays go through the normal write
        path semantics (append + index + replicate) but batched per
        source segment, and pipelined ``pipeline_width`` segments deep —
        RAMCloud overlaps segment fetch, replay and re-replication,
        which is why recovery drives CPUs to >90 % (Fig. 9a).
        """
        crashed_id = plan["crashed_id"]
        # units: [(table_id, tablet_index, shard, shard_count)]
        units = list(plan["units"])
        spans = plan["spans"]  # table_id → span
        assignments = plan["segments"]  # [(segment_id, backup_id, nbytes)]
        share = plan.get("share", 1.0)
        pipeline_width = plan.get("pipeline_width", 3)
        # Indexlet boundaries for any index tables in this partition:
        # the recovery master must know them to range-route replayed
        # entries (and to serve Search once it takes ownership).  An
        # index is recovered exactly like data — never rebuilt by
        # scanning the base table.
        for index_id in sorted(plan.get("index_ranges", ())):
            self.install_index_config(index_id,
                                      plan["index_ranges"][index_id])

        # (table_id, index) → (shard_count, set of shards we recover)
        unit_filter: Dict[Tuple[int, int], Tuple[int, set]] = {}
        for table_id, index, shard, shard_count in units:
            entry = unit_filter.setdefault((table_id, index),
                                           (shard_count, set()))
            entry[1].add(shard)

        pending = list(assignments)
        lost_ids = set()

        def pump():
            while pending:
                segment_id, backup_id, nbytes = pending.pop(0)
                sources = [backup_id]
                recovered = False
                while True:
                    try:
                        yield from self._recover_one_segment(
                            crashed_id, segment_id, sources[-1], nbytes,
                            unit_filter, spans, share)
                        recovered = True
                        break
                    except StaleEpoch:
                        # WE were evicted mid-recovery (fenced inside
                        # the re-replication path): abandon the lane;
                        # the coordinator reassigns our partitions.
                        return
                    except (NodeUnreachable, RpcTimeout,
                            ObjectDoesntExist):
                        # The designated source died mid-recovery: fall
                        # back to any other live holder of this segment.
                        alternative = self._find_live_replica_source(
                            crashed_id, segment_id, exclude=sources)
                        if alternative is None:
                            break
                        sources.append(alternative)
                if not recovered:
                    # Master and every replica are gone: correlated
                    # failure, this segment's data is lost.
                    lost_ids.add(segment_id)

        lanes = [self._spawn(pump(), name=f"{self.name}:recover-lane{i}")
                 for i in range(min(pipeline_width, max(1, len(pending))))]
        yield self.sim.all_of(lanes)
        if self.fenced:
            # Evicted while recovering: never take ownership; fail the
            # coordinator's RPC so it reassigns the partition.
            raise NodeUnreachable(f"{self.server_id} fenced mid-recovery")
        # Partition replayed and durable: this master now owns the units.
        for table_id, index, shard, shard_count in units:
            self.take_tablet((table_id, index, shard), shard_count,
                             ready=True)
        # Ownership just moved because of a membership change: clients
        # still routing off a map that predates our current server-list
        # epoch get StaleEpoch until they refresh (cache invalidation).
        self.min_client_epoch = max(self.min_client_epoch,
                                    self.server_list_version)
        return sorted(lost_ids)

    def _find_live_replica_source(self, crashed_id: str, segment_id: int,
                                  exclude) -> Optional[str]:
        """Another holder of the segment, per OUR server-list view (no
        ground-truth liveness peek: a stale pick fails its RPC and the
        caller excludes it and asks again).  Peeking the candidate's
        replica index stands in for the replica inventory the
        coordinator collects at planning time."""
        for sid in self.live_view:
            if sid in exclude:
                continue
            backup = self.coordinator.lookup_server(sid)
            if backup is None:
                continue
            if (crashed_id, segment_id) in backup.replicas:
                return sid
        return None

    def _recover_one_segment(self, crashed_id: str, segment_id: int,
                             backup_id: str, nbytes: int,
                             unit_filter, spans, share: float) -> Generator:
        backup = self.coordinator.lookup_server(backup_id)
        if backup is None:
            raise NodeUnreachable(f"backup {backup_id} gone")
        # The backup partitions the segment and ships only this
        # partition's share of the bytes (the disk read, paid once, is
        # of course the whole segment).  The fetching thread busy-polls
        # while it waits — RAMCloud's polling discipline, which drives
        # whole machines past 90 % CPU during recovery (Fig. 9a).
        fetched = max(1, int(nbytes * share))
        entries, _actual_bytes = yield from self.node.cpu.spinning(
            backup.call(
                self.node, "recovery_read",
                args=(crashed_id, segment_id, share),
                size_bytes=64, response_bytes=fetched,
                timeout=30.0,
            ))
        # The fetched bytes cross this master's dispatch thread.
        yield from self._dispatch_rx(fetched)
        mine = []
        my_bytes = 0
        for entry in entries:
            if not entry.live:
                continue
            span = spans[entry.table_id]
            h = key_hash(entry.key)
            tablet_index = self._tablet_index_for(entry.table_id, entry.key,
                                                  h, span)
            spec = unit_filter.get((entry.table_id, tablet_index))
            if spec is None:
                continue
            shard_count, shards = spec
            if (h // span) % shard_count in shards:
                mine.append(entry)
                my_bytes += entry.log_bytes
        if not mine:
            return
        # Data is re-inserted through the normal write path: one
        # serialized replay→re-replicate pipeline per master (Finding 6:
        # "data is re-inserted in the same fashion", so the Finding 3
        # degradation applies to recovery too).
        stream_token = self.replay_lock.acquire()
        # Recovery threads poll while queueing for the stream.
        self.node.cpu.spin_begin()
        try:
            yield stream_token
        except BaseException:
            self.replay_lock.abort(stream_token)
            raise
        finally:
            self.node.cpu.spin_end()
        try:
            rf = self.config.replication_factor
            replay_cpu = (len(mine) * self.cost.replay_per_entry
                          + my_bytes * self.cost.replay_per_byte
                          + my_bytes * rf * self.cost.replay_replication_per_byte)
            yield from self.node.cpu.execute_sliced(replay_cpu)
            token = self.log_lock.acquire()
            try:
                yield token
            except BaseException:
                # Killed while queueing for the log lock mid-recovery:
                # withdraw the request so the lock is not leaked.
                self.log_lock.abort(token)
                raise
            try:
                for entry in mine:
                    segment, new_entry, _closed = self.log.append(
                        entry.table_id, entry.key, entry.value_size,
                        entry.version, value=entry.value,
                        index_keys=entry.index_keys)
                    self.hashtable.insert(entry.table_id, entry.key,
                                          segment, new_entry)
                    if (self.index_configs
                            and entry.table_id in self.index_configs):
                        self.index_entries.insert(entry.table_id, entry.key)
                    # A recovered object keeps its acknowledged version,
                    # so this master's counter must advance past it —
                    # otherwise a post-recovery write could re-issue an
                    # already-acknowledged version number for different
                    # data, and a client holding the old (value,
                    # version) pair could never detect the change.
                    if entry.version >= self._next_version:
                        self._next_version = entry.version + 1
            finally:
                self.log_lock.release(token)
            self.recovery_bytes_replayed += my_bytes
            # Ship the replayed batch to the new backups ("As the
            # segments are written to a server's memory, they are
            # replicated to new backups", §II-B), spinning through the
            # ack waits.
            if rf > 0:
                targets = self._choose_backups_for_bytes()
                for backup_id2 in targets:
                    target = self.coordinator.lookup_server(backup_id2)
                    if target is None:
                        continue
                    yield from self.node.cpu.execute(
                        self.cost.replication_send)
                    try:
                        yield from self.node.cpu.spinning(target.call(
                            self.node, "replicate_segment",
                            args=(self.server_id, self.log.head.segment_id,
                                  my_bytes),
                            size_bytes=my_bytes + 64, response_bytes=64,
                            timeout=30.0,
                        ))
                    except StaleEpoch:
                        self._fence()
                        raise
                    except (NodeUnreachable, RpcTimeout):
                        # Target died while we re-replicated: continue
                        # with the remaining targets; the durability
                        # hole is visible in the recovered segments'
                        # replica sets and repaired like any other.
                        continue
        finally:
            self.replay_lock.release(stream_token)

    def _choose_backups_for_bytes(self) -> Tuple[str, ...]:
        rf = self.config.replication_factor
        candidates = [sid for sid in self.live_view
                      if sid != self.server_id]
        if len(candidates) < rf:
            return tuple(candidates)
        return tuple(self.stream.sample(candidates, rf))

    # ------------------------------------------------------------------
    # cleaner
    # ------------------------------------------------------------------

    def _cleaner_loop(self) -> Generator:
        """Wake periodically; clean while memory utilization exceeds the
        threshold (§II-B: "a cleaning mechanism is triggered whenever a
        server reaches a certain memory utilization threshold")."""
        while True:
            yield self.sim.timeout(0.1)
            while (self.log.memory_utilization
                   >= self.config.cleaner_threshold
                   and not self.killed):
                # Each victim segment is an independent work item for
                # the race detector.
                task_boundary(self.sim)
                cleaned = yield from self._clean_one_segment()
                if not cleaned:
                    break
                if (self.log.memory_utilization
                        < self.config.cleaner_low_watermark):
                    break

    def _clean_one_segment(self) -> Generator:
        candidates = self.log.cleanable_segments()
        if not candidates:
            return False
        victim = candidates[0]
        live = [e for e in victim.live_entries()]
        live_bytes = sum(e.log_bytes for e in live)
        # Copy-forward cost on a worker core, preemptible.
        yield from self.node.cpu.execute_sliced(
            max(live_bytes, 1) * self.cost.cleaner_per_byte)
        token = self.log_lock.acquire()
        try:
            yield token
        except BaseException:
            # The cleaner is interrupted on kill(); withdraw its queued
            # lock request instead of leaking it.
            self.log_lock.abort(token)
            raise
        try:
            for entry in live:
                if not entry.live:
                    continue  # overwritten while we copied
                # Index entries are log records too: the cleaner
                # relocates them like any object, carrying the record's
                # secondary keys forward.  The sorted per-index view is
                # keyed by entry key, which relocation does not change.
                segment, new_entry, _closed = self.log.append(
                    entry.table_id, entry.key, entry.value_size,
                    entry.version, value=entry.value, privileged=True,
                    index_keys=entry.index_keys)
                entry.live = False
                self.hashtable.relocate(entry.table_id, entry.key,
                                        segment, new_entry)
            self.log.free_segment(victim)
        finally:
            self.log_lock.release(token)
        for backup_id in victim.replica_backups:
            if backup_id in self.dead_view:
                continue  # per our view; a stale skip just leaks a free
            backup = self.coordinator.lookup_server(backup_id)
            if backup is None:
                continue
            self._spawn(self._send_free_replica(backup, victim),
                        name=f"{self.name}:free-seg{victim.segment_id}")
        # The victim can no longer be under-replicated: it is gone.
        doomed = [k for k in self.under_replicated
                  if k[0] == victim.segment_id]
        if doomed:
            self.view_race.write("under_replicated", relaxed=True)
            for k in doomed:
                self.under_replicated.discard(k)
        return True

    def _send_free_replica(self, backup: "RamCloudServer",
                           victim: Segment) -> Generator:
        try:
            yield from backup.call(
                self.node, "free_replica",
                args=(self.server_id, victim.segment_id),
                size_bytes=64, response_bytes=64,
                timeout=self.config.rpc_timeout,
            )
        except (NodeUnreachable, RpcTimeout, Interrupt):
            pass

    # ------------------------------------------------------------------
    # bulk loading (experiment setup fast path)
    # ------------------------------------------------------------------

    def bulk_load(self, items) -> int:
        """Populate this master directly, bypassing the simulated RPC
        path (zero simulated time).

        The paper's measurement window starts *after* the YCSB load
        phase; this fast path reproduces the post-load state — log
        segments populated, backup replicas placed and flushed —
        without simulating millions of load RPCs.

        ``items`` is an iterable of ``(table_id, key, value_size)`` or
        ``(table_id, key, value_size, index_keys)`` tuples.  Returns the
        number of objects loaded.
        """
        count = 0
        self._bulk_loading = True
        try:
            self._ensure_head_replicated()
            for item in items:
                table_id, key, value_size = item[:3]
                index_keys = item[3] if len(item) > 3 else None
                version = self._next_version
                self._next_version += 1
                segment, entry, _closed = self.log.append(
                    table_id, key, value_size, version,
                    index_keys=index_keys)
                self.hashtable.insert(table_id, key, segment, entry)
                if self.index_configs and table_id in self.index_configs:
                    self.index_entries.insert(table_id, key)
                count += 1
        finally:
            self._bulk_loading = False
        # Materialize backup replica state for every segment so far.
        for segment in self.log.segments.values():
            for backup_id in segment.replica_backups:
                backup = self.coordinator.lookup_server(backup_id)
                if backup is None:
                    continue
                replica = backup._replica_for(self.server_id, segment)
                replica.nbytes = segment.bytes_used
                backup._advance_watermark(replica, len(segment.entries))
                if segment.closed:
                    replica.closed = True
                    if not replica.on_disk:
                        replica.on_disk = True
                        if backup.node.disk.space.free >= segment.bytes_used:
                            backup.node.disk.space.put(segment.bytes_used)
        return count

    # ------------------------------------------------------------------

    _HANDLERS = {  # simlint: disable=DET003 opcode dispatch table: built at class creation, read-only afterwards
        "read": _handle_read,
        "multiread": _handle_multiread,
        "write": _handle_write,
        "delete": _handle_delete,
        "server_list": _handle_server_list,
        "replicate_append": _handle_replicate_append,
        "replicate_close": _handle_replicate_close,
        "replicate_segment": _handle_replicate_segment,
        "recovery_read": _handle_recovery_read,
        "backup_read": _handle_backup_read,
        "free_replica": _handle_free_replica,
        "recover_partition": _handle_recover_partition,
        "migrate_in": _handle_migrate_in,
        "search": _handle_search,
        "index_lookup": _handle_index_lookup,
        "index_write": _handle_index_write,
        "index_remove": _handle_index_remove,
    }
