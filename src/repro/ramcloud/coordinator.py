"""The RAMCloud coordinator (§II-B).

"A coordinator maintaining meta-data information about storage servers,
backup servers, and data location."

Responsibilities reproduced here:

* cluster membership (enlist / failure detection via ping timeouts);
* the authoritative tablet map, served to clients;
* crash-recovery orchestration: verify the crash, collect the crashed
  master's will and the locations of its segment replicas, assign the
  will's partitions to recovery masters, and update the tablet map when
  they finish (§VII: "When a server is suspected to be crashed, the
  coordinator will check whether that server truly crashed. If it
  happens to be the case, the coordinator will schedule a recovery,
  after checking that the data held by that server is available on
  backups.").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.hardware.node import Node
from repro.net.fabric import Fabric, NodeUnreachable
from repro.net.rpc import RpcRequest, RpcService, RpcTimeout
from repro.ramcloud.config import CostModel, ServerConfig
from repro.ramcloud.indexing import IndexDescriptor
from repro.ramcloud.tablets import TabletMap, TabletStatus, key_hash
from repro.ramcloud.tenancy import TenantSpec, tenant_table_name
from repro.sim.distributions import RandomStream
from repro.sim.kernel import Simulator
from repro.sim.racecheck import shared, task_boundary

__all__ = ["Coordinator", "RecoveryStats", "RepairStats"]


@dataclass
class RepairStats:
    """Durability repair after one server's eviction: how far segment
    replication dropped and how long the surviving masters took to
    restore it (re-replication through ``replicate_segment``).

    ``finished_at`` stays None if under-replication never returned to
    zero inside the watch window (e.g. too few live backups to reach
    the replication factor again)."""

    dead_server: str
    started_at: float
    peak_under_replicated: int = 0
    replicas_lost: int = 0
    segments_repaired: int = 0
    finished_at: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        """Time from eviction to full replication, or None."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


@dataclass
class RecoveryStats:
    """What happened during one crash recovery."""

    crashed_id: str
    detected_at: float
    started_at: float
    finished_at: Optional[float] = None
    partitions: int = 0
    segments: int = 0
    # Segments of the crashed master with no surviving replica anywhere
    # (correlated failures, the paper's §X closing concern): their data
    # is permanently lost.  ``plan_lost_segments`` had no live replica
    # at planning time; ``runtime_lost_segment_ids`` lost their last
    # replica mid-recovery.
    plan_lost_segments: int = 0
    runtime_lost_segment_ids: Set[int] = field(default_factory=set)
    bytes_to_recover: int = 0
    recovery_masters: List[str] = field(default_factory=list)

    @property
    def lost_segments(self) -> int:
        """Distinct segments whose data is permanently gone."""
        return self.plan_lost_segments + len(self.runtime_lost_segment_ids)

    @property
    def data_was_lost(self) -> bool:
        """True if any segment had no surviving replica."""
        return self.lost_segments > 0

    @property
    def duration(self) -> Optional[float]:
        """Recovery wall time, or None while unfinished."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def unavailability(self) -> Optional[float]:
        """Client-visible outage: from the crash being detectable to the
        data being served again."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.detected_at


class Coordinator(RpcService):
    """The (single) coordinator service on its own node."""

    def __init__(self, sim: Simulator, fabric: Fabric, node: Node,
                 config: ServerConfig, cost: CostModel,
                 stream: RandomStream,
                 ping_interval: float = 0.5,
                 ping_timeout: float = 0.4,
                 detection_misses: int = 2,
                 verify_rounds: int = 2,
                 verify_gap: float = 0.1):
        super().__init__(sim, fabric, node, name="coordinator")
        self.config = config
        self.cost = cost
        self.stream = stream
        self.ping_interval = ping_interval
        self.ping_timeout = ping_timeout
        self.detection_misses = detection_misses
        # Honest suspicion handling: after ``detection_misses`` missed
        # pings the coordinator runs a second round of ``verify_rounds``
        # back-to-back pings before declaring the server dead.  There is
        # no ground-truth peek anywhere in the path, so a server that is
        # merely slow, paused or partitioned long enough IS declared
        # dead — false positives are real, which is exactly why the
        # epoch/fencing machinery below exists.
        self.verify_rounds = verify_rounds
        self.verify_gap = verify_gap
        # Repair watcher cadence (see RepairStats / _repair_watcher).
        self.repair_poll = 0.05
        self.repair_grace = 0.2
        self.repair_watch_cap = 60.0
        # How many segments each recovery master fetches/replays/
        # re-replicates concurrently.  RAMCloud pipelines deeply enough
        # to keep recovery masters CPU-bound (Fig. 9a: >90 % CPU).
        self.recovery_pipeline_width = 6

        self.tablet_map = TabletMap()
        self.tablet_map.race = shared(sim, "tabletmap",
                                      obj=self.tablet_map)
        # Secondary indexes: hidden index table id → IndexDescriptor.
        # Indexlets are ordinary tablets of the hidden table, so the
        # recovery/migration machinery moves them without special cases.
        self.indexes: Dict[int, IndexDescriptor] = {}
        # Multi-tenancy: registered tenants and the tables they own.
        self.tenants: Dict[str, TenantSpec] = {}
        self.tenant_of_table: Dict[int, str] = {}
        # Race-detection handle for the membership dicts (debug mode).
        self.race = shared(sim, "coordinator", obj=self)
        self._servers: Dict[str, object] = {}  # server_id → RamCloudServer
        self._live: Dict[str, bool] = {}
        self._missed_pings: Dict[str, int] = {}
        # The epoch-stamped server list: every membership change bumps
        # ``membership_version`` and pushes the new (version, live, dead)
        # view to every live server; ``_dead`` remembers the version at
        # which each server was evicted (its fencing epoch).
        self.membership_version = 0
        self._dead: Dict[str, int] = {}
        self._verifying: set = set()
        self._pushes: List = []
        self.recoveries: List[RecoveryStats] = []
        # One RepairStats per eviction: the under-replication window the
        # death opened and when the survivors closed it.
        self.repairs: List[RepairStats] = []
        self._repair_watchers: List = []
        self._detector = None
        # Observers called with the RecoveryStats the instant a recovery
        # is scheduled (repro.faults anchors "crash a backup
        # mid-recovery" schedules on this).
        self.on_recovery_start: List = []

        self._service = sim.process(self._serve_loop(),
                                    name="coordinator:serve")

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def enlist(self, server) -> None:
        """Register a storage server (object handle kept for metadata
        lookups; all timed interactions still go through RPC).

        Enlistment bumps the membership epoch and installs the new view
        directly on every live server — this models the enlistment RPC
        handshake (the response carries the current server list) at
        zero simulated time, matching the zero-time build-phase enlist.
        Later changes (evictions) disseminate through real RPCs."""
        if server.server_id in self._servers:
            raise ValueError(f"server {server.server_id!r} already enlisted")
        self._servers[server.server_id] = server
        self.race.write(f"live/{server.server_id}")
        self._live[server.server_id] = True
        self._missed_pings[server.server_id] = 0
        # The enlistment response carries existing index/tenant configs
        # (same zero-time handshake modeling as the server list below).
        for index_id in sorted(self.indexes):
            server.install_index_config(index_id,
                                        self.indexes[index_id].boundaries)
        for table_id in sorted(self.tenant_of_table):
            spec = self.tenants[self.tenant_of_table[table_id]]
            server.install_tenant(table_id, spec.name,
                                  spec.default_consistency,
                                  spec.admission_rate)
        self.membership_version += 1
        live, dead = self._view_tuples()
        for sid in live:
            peer = self._servers[sid]
            if not peer.killed:
                peer.apply_server_list(self.membership_version, live, dead)

    def _view_tuples(self):
        """The current server list as ``(live, dead)`` tuples, in
        deterministic enlistment order."""
        live = tuple(sid for sid in self._servers if self._live.get(sid))
        dead = tuple(sorted(self._dead))
        return live, dead

    def lookup_server(self, server_id: str):
        """The server object handle, or None if never enlisted."""
        return self._servers.get(server_id)

    def live_server_ids(self) -> List[str]:
        """Ids of servers currently believed alive (an optimistic scan:
        membership can change under any caller that later yields)."""
        self.race.read("live", relaxed=True)
        return [sid for sid, alive in self._live.items() if alive]

    def is_live(self, server_id: str) -> bool:
        """Whether the coordinator believes the server is alive."""
        return self._live.get(server_id, False)

    # ------------------------------------------------------------------
    # coordinator RPC service
    # ------------------------------------------------------------------

    def _serve_loop(self) -> Generator:
        """Single-threaded service loop (the coordinator is not on the
        data path, one thread suffices)."""
        while True:
            request = yield self.inbox.get()
            # Each request is an unrelated work item: accesses before
            # this point must not pair with accesses after it.
            task_boundary(self.sim)
            yield from self.node.cpu.execute(self.cost.coordinator_service)
            try:
                self._serve(request)
            except Exception as exc:  # surface as RPC error, keep serving
                if not request.reply.triggered:
                    request.fail(exc)

    def _serve(self, request: RpcRequest) -> None:
        if request.op == "get_tablet_map":
            snapshot = self.tablet_map.snapshot()
            # Stamp the snapshot with the membership epoch: clients
            # carry it on data RPCs so masters can reject routes that
            # predate an ownership change (stale-epoch rejection).
            snapshot.membership_version = self.membership_version
            # Live servers (enlistment order) let EVENTUAL reads pick a
            # deterministic backup candidate without extra RNG draws.
            snapshot.live_servers = tuple(self.live_server_ids())
            snapshot.indexes = dict(self.indexes)
            request.respond(snapshot)
        elif request.op == "create_table":
            name, span = request.args[:2]
            tenant = request.args[2] if len(request.args) > 2 else None
            table = self.create_table(name, span, tenant=tenant)
            request.respond(table.table_id)
        elif request.op == "create_index":
            table_id, name, boundaries = request.args
            desc = self.create_index(table_id, name, boundaries)
            request.respond(desc)
        elif request.op == "create_tenant":
            self.register_tenant(request.args)
            request.respond("ok")
        elif request.op == "drop_table":
            self.tablet_map.drop_table(request.args)
            request.respond("ok")
        else:
            request.fail(ValueError(f"unknown coordinator op {request.op!r}"))

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------

    def create_table(self, name: str, span: Optional[int] = None,
                     tenant: Optional[str] = None):
        """Create a table spanning ``span`` servers (the paper sets
        ServerSpan equal to the number of servers).

        With ``tenant``, the table lives in that tenant's namespace
        (``tenant/name``) and every live server learns the tenant's
        default consistency level and admission rate for it."""
        live = self.live_server_ids()
        if span is None:
            span = len(live)
        if not live:
            raise RuntimeError("cannot create a table with no live servers")
        if tenant is not None and tenant not in self.tenants:
            raise KeyError(f"tenant {tenant!r} not registered")
        full_name = tenant_table_name(tenant, name)
        table = self.tablet_map.create_table(full_name, span, live)
        for tablet in self.tablet_map.all_tablets():
            if tablet.table_id == table.table_id:
                self._servers[tablet.server_id].take_tablet(
                    (tablet.table_id, tablet.index, 0), shard_count=1,
                    ready=True)
        if tenant is not None:
            self._bind_tenant_table(table.table_id, tenant)
        return table

    def register_tenant(self, spec: TenantSpec) -> None:
        """Register a tenant; its tables are created with
        ``create_table(..., tenant=spec.name)``."""
        if spec.name in self.tenants:
            raise ValueError(f"tenant {spec.name!r} already registered")
        self.tenants[spec.name] = spec

    def _bind_tenant_table(self, table_id: int, tenant: str) -> None:
        """Record the table's tenant and install its defaults (zero-time
        push, like enlistment) on every live server."""
        spec = self.tenants[tenant]
        self.tenant_of_table[table_id] = tenant
        for sid in self.live_server_ids():
            server = self._servers[sid]
            if not server.killed:
                server.install_tenant(table_id, spec.name,
                                      spec.default_consistency,
                                      spec.admission_rate)

    # ------------------------------------------------------------------
    # secondary indexes
    # ------------------------------------------------------------------

    def create_index(self, table_id: int, name: str,
                     boundaries) -> IndexDescriptor:
        """Create a secondary index over ``table_id``: a hidden table of
        ``len(boundaries)`` range-partitioned tablets (indexlets).

        Because indexlets are ordinary tablets of an ordinary (hidden)
        table, the existing recovery and migration machinery moves them
        without special cases; only key→tablet routing differs (by
        range, not hash).  The boundary list is immutable after
        creation."""
        base = self.tablet_map.table_by_id(table_id)
        if base is None:
            raise KeyError(f"no table id {table_id}")
        boundaries = tuple(boundaries)
        hidden = f"__index:{table_id}:{name}"
        table = self.create_table(hidden, span=len(boundaries))
        desc = IndexDescriptor(index_id=table.table_id, table_id=table_id,
                               name=name, boundaries=boundaries)
        self.race.write("indexes")
        self.indexes[table.table_id] = desc
        # The index inherits the base table's tenant (search and
        # index_lookup admission throttles by the addressed table id).
        tenant = self.tenant_of_table.get(table_id)
        if tenant is not None:
            self._bind_tenant_table(table.table_id, tenant)
        for sid in self.live_server_ids():
            server = self._servers[sid]
            if not server.killed:
                server.install_index_config(table.table_id, boundaries)
        return desc

    def index_entry_route(self, index_id: int, entry_key: str):
        """Where an index-entry mutation must go: ``(owner_id, span)``
        for the indexlet shard owning ``entry_key``, or None if the
        index no longer exists.  A metadata peek (like
        :meth:`lookup_server`); a stale answer fails at the target and
        the caller retries."""
        desc = self.indexes.get(index_id)
        if desc is None:
            return None
        indexlet = desc.indexlet_for(entry_key)
        tablet = self.tablet_map._tablets.get((index_id, indexlet))
        if tablet is None:
            return None
        span = len(desc.boundaries)
        shard = (key_hash(entry_key) // span) % tablet.shard_count
        return tablet.shards[shard], span

    # ------------------------------------------------------------------
    # elastic sizing (§IX "How to choose the right cluster size?")
    # ------------------------------------------------------------------

    def drain_server(self, server_id: str) -> Generator:
        """Migrate every (tablet, shard) unit off ``server_id`` onto the
        least-loaded live servers; ``yield from`` inside a process.

        This is the mechanism behind the paper's §IX suggestion of "a
        smart approach ... at the coordinator level, which can decide
        whether to add or remove nodes depending on the workload".
        """
        source = self._servers[server_id]
        moved = 0
        for tablet, shard in self.tablet_map.tablets_of_server(server_id):
            table = self.tablet_map.table_by_id(tablet.table_id)
            target_id = self._least_loaded(exclude=server_id)
            target = self._servers[target_id]
            unit = (tablet.table_id, tablet.index, shard)
            self.tablet_map.reassign_shard(tablet.tablet_id, shard,
                                           target_id,
                                           TabletStatus.RECOVERING)
            yield from source.migrate_shard_out(
                unit, tablet.shard_count, table.span, target)
            self.tablet_map.set_shard_status(tablet.tablet_id, shard,
                                             TabletStatus.NORMAL)
            moved += 1
        return moved

    def _least_loaded(self, exclude: str) -> str:
        candidates = [sid for sid in self.live_server_ids()
                      if sid != exclude]
        if not candidates:
            raise RuntimeError("no live server to migrate onto")
        load = {sid: 0 for sid in candidates}
        for tablet in self.tablet_map.all_tablets():
            for owner in tablet.shards:
                if owner in load:
                    load[owner] += 1
        return min(sorted(candidates), key=load.get)

    def rebalance(self) -> Generator:
        """Even out tablet-shard ownership over the live servers by live
        migration (run after :meth:`~repro.cluster.deployment.Cluster.
        add_server`); ``yield from`` inside a process.  Returns how many
        units moved."""
        moved = 0
        while True:
            load: Dict[str, int] = {sid: 0 for sid in self.live_server_ids()}
            for tablet in self.tablet_map.all_tablets():
                for owner in tablet.shards:
                    if owner in load:
                        load[owner] += 1
            if not load:
                return moved
            busiest = max(sorted(load), key=load.get)
            idlest = min(sorted(load), key=load.get)
            if load[busiest] - load[idlest] <= 1:
                return moved
            tablet, shard = self.tablet_map.tablets_of_server(busiest)[0]
            table = self.tablet_map.table_by_id(tablet.table_id)
            unit = (tablet.table_id, tablet.index, shard)
            source = self._servers[busiest]
            target = self._servers[idlest]
            self.tablet_map.reassign_shard(tablet.tablet_id, shard,
                                           idlest, TabletStatus.RECOVERING)
            yield from source.migrate_shard_out(
                unit, tablet.shard_count, table.span, target)
            self.tablet_map.set_shard_status(tablet.tablet_id, shard,
                                             TabletStatus.NORMAL)
            moved += 1

    def decommission_server(self, server_id: str) -> Generator:
        """Gracefully remove a server: drain its tablets, retire it from
        membership (no crash recovery fires) and power the machine off —
        the Sierra/Rabbit-style energy lever the paper's §IX cites."""
        moved = yield from self.drain_server(server_id)
        server = self._servers[server_id]
        server.kill()
        # Retire it from the epoch-stamped server list (no recovery —
        # the drain moved its tablets — but masters that replicated
        # segments onto it learn of the loss and re-replicate).
        self._mark_dead(server_id)
        self._watch_repair(server_id)
        server.node.power.powered_off = True
        return moved

    # ------------------------------------------------------------------
    # failure detection
    # ------------------------------------------------------------------

    def start_failure_detector(self) -> None:
        """Begin the periodic ping loop (idempotent)."""
        if self._detector is None:
            self._detector = self.sim.process(self._ping_loop(),
                                              name="coordinator:pings")

    def stop_failure_detector(self) -> None:
        """Halt the ping loop; crashes go undetected afterwards."""
        if self._detector is not None:
            self._detector.interrupt("detector stopped")
            self._detector = None

    def stop_service(self) -> None:
        """Shut the coordinator down for good: stop pinging, stop the
        serve loop, fail anything still queued.  Used by
        :meth:`~repro.cluster.deployment.Cluster.shutdown` so a test can
        drain the schedule completely and assert zero event leaks."""
        self.stop_failure_detector()
        self.shutdown()
        self._service.interrupt("coordinator stopped")
        for proc in self._repair_watchers + self._pushes:
            if proc.is_alive:
                proc.interrupt("coordinator stopped")

    def _ping_loop(self) -> Generator:
        while True:
            yield self.sim.timeout(self.ping_interval)
            for server_id in self.live_server_ids():
                self.sim.process(self._ping_one(server_id),
                                 name=f"coordinator:ping:{server_id}")

    def _ping_one(self, server_id: str) -> Generator:
        server = self._servers[server_id]
        try:
            pong = yield from server.call(self.node, "ping",
                                          timeout=self.ping_timeout)
            self.race.write(f"pings/{server_id}")
            self._missed_pings[server_id] = 0
            # Pong piggybacks the server's server-list version: re-push
            # the list to anyone who missed an update (healed partition,
            # dropped dissemination RPC).
            _ack, version = pong
            if (version < self.membership_version
                    and self._live.get(server_id, False)):
                self._push_server_list(server_id)
        except (NodeUnreachable, RpcTimeout):
            if not self._live.get(server_id, False):
                return
            self.race.write(f"pings/{server_id}")
            self._missed_pings[server_id] += 1
            if self._missed_pings[server_id] >= self.detection_misses:
                self._on_server_suspected(server_id)

    def _on_server_suspected(self, server_id: str) -> None:
        """Suspicion path: verify with a second ping round, then (and
        only then) declare the server dead.  No ground truth anywhere —
        a live server that stays silent through the verification round
        (paused, partitioned) is honestly, wrongly, declared dead."""
        if not self._live.get(server_id, False):
            return
        if server_id in self._verifying:
            return
        self._verifying.add(server_id)
        self.sim.process(self._verify_suspect(server_id),
                         name=f"coordinator:verify:{server_id}")

    def _verify_suspect(self, server_id: str) -> Generator:
        server = self._servers[server_id]
        try:
            for attempt in range(self.verify_rounds):
                if attempt:
                    yield self.sim.timeout(self.verify_gap)
                try:
                    yield from server.call(self.node, "ping",
                                           timeout=self.ping_timeout)
                except (NodeUnreachable, RpcTimeout):
                    continue
                # Alive after all: clear the suspicion.
                self.race.write(f"pings/{server_id}")
                self._missed_pings[server_id] = 0
                return
            if self._live.get(server_id, False):
                self._declare_dead(server_id)
        finally:
            self._verifying.discard(server_id)

    def _mark_dead(self, server_id: str) -> None:
        """Evict a server from the list: bump the epoch, record the
        eviction version, and disseminate the new view."""
        self.race.write(f"live/{server_id}")
        self._live[server_id] = False
        self.membership_version += 1
        self._dead[server_id] = self.membership_version
        for sid in self.live_server_ids():
            self._push_server_list(sid)

    def _push_server_list(self, server_id: str) -> None:
        """Fire-and-forget push of the current server list (failures are
        healed later by the ping piggyback)."""
        proc = self.sim.process(self._push_one(server_id),
                                name=f"coordinator:serverlist:{server_id}")
        self._pushes.append(proc)
        if len(self._pushes) > 64:
            self._pushes = [p for p in self._pushes if p.is_alive]

    def _push_one(self, server_id: str) -> Generator:
        server = self._servers[server_id]
        live, dead = self._view_tuples()
        update = (self.membership_version, live, dead)
        try:
            yield from server.call(
                self.node, "server_list", args=update,
                size_bytes=128 + 16 * (len(live) + len(dead)),
                response_bytes=64, timeout=self.config.rpc_timeout)
        except (NodeUnreachable, RpcTimeout):
            pass  # unreachable now; the ping piggyback re-pushes later

    def _declare_dead(self, server_id: str) -> None:
        """Verified-dead path: evict, disseminate, watch the repair, and
        schedule a recovery exactly once."""
        self._mark_dead(server_id)
        self._watch_repair(server_id)
        stats = RecoveryStats(crashed_id=server_id,
                              detected_at=self.sim.now,
                              started_at=self.sim.now)
        self.recoveries.append(stats)
        for observer in self.on_recovery_start:
            observer(stats)
        self.sim.process(self._run_recovery(server_id, stats),
                         name=f"coordinator:recovery:{server_id}")

    # ------------------------------------------------------------------
    # durability repair tracking
    # ------------------------------------------------------------------

    def under_replicated_total(self) -> int:
        """Segment replicas currently known lost and not yet repaired,
        summed over the live masters (a metrics scan, like the stats
        aggregation in :mod:`repro.cluster.crash`)."""
        return sum(len(self._servers[sid].under_replicated)
                   for sid in self.live_server_ids())

    def _repair_counters(self):
        lost = sum(self._servers[sid].replicas_lost
                   for sid in self.live_server_ids())
        repaired = sum(self._servers[sid].segments_repaired
                       for sid in self.live_server_ids())
        return lost, repaired

    def _watch_repair(self, server_id: str) -> None:
        stats = RepairStats(dead_server=server_id, started_at=self.sim.now)
        self.repairs.append(stats)
        proc = self.sim.process(self._repair_watcher(stats),
                                name=f"coordinator:repair-watch:{server_id}")
        self._repair_watchers.append(proc)

    def _repair_watcher(self, stats: RepairStats) -> Generator:
        """Sample under-replication until the survivors restore full
        replication; fills in the eviction's :class:`RepairStats`."""
        lost0, repaired0 = self._repair_counters()
        deadline = stats.started_at + self.repair_watch_cap
        settle_at = stats.started_at + self.repair_grace
        while self.sim.now < deadline:
            yield self.sim.timeout(self.repair_poll)
            total = self.under_replicated_total()
            if total > stats.peak_under_replicated:
                stats.peak_under_replicated = total
            lost, repaired = self._repair_counters()
            stats.replicas_lost = lost - lost0
            stats.segments_repaired = repaired - repaired0
            if total == 0 and self.sim.now >= settle_at:
                stats.finished_at = self.sim.now
                return

    # ------------------------------------------------------------------
    # crash recovery orchestration
    # ------------------------------------------------------------------

    def _recovery_plan(self, server_id: str, stats: RecoveryStats):
        """Build per-partition recovery plans from the crashed master's
        will and the backups' replica inventories.

        The will splits each of the crashed master's (tablet, shard)
        units into enough subshards that the number of recovery
        partitions ≈ the number of survivors ("to have as many machines
        performing the crash-recovery as possible", §II-B).
        """
        # Survivors are whatever the verified membership state says is
        # alive — nothing else.  A server that is dead but not yet
        # detected can be picked as a recovery master or segment source;
        # the RPC failure surfaces it and the retry rounds (below) and
        # per-segment source fallback absorb it, exactly as in the real
        # system.
        survivors = list(self.live_server_ids())
        if not survivors:
            raise RuntimeError("no survivors to recover onto")

        # Units already RECOVERING were assigned to this server by
        # another in-flight recovery (it died before finishing the
        # replay): that recovery's own retry rounds re-assign them, so
        # claiming them here would have two recoveries fighting over
        # the same shard.
        owned = [(tablet, shard)
                 for tablet, shard in
                 self.tablet_map.tablets_of_server(server_id)
                 if tablet.statuses[shard] != TabletStatus.RECOVERING]
        if not owned:
            stats.finished_at = self.sim.now
            return {}, [], {}, {}

        # How many ways to split each owned unit.
        split = max(1, -(-len(survivors) // len(owned)))  # ceil division

        # units: (table_id, index, shard, shard_count) → recovery master
        offset = self.stream.randint(0, max(len(survivors) - 1, 0))
        partitions: Dict[str, List[Tuple[int, int, int, int]]] = {}
        unit_no = 0
        for tablet, shard in owned:
            if tablet.shard_count == 1 and split > 1:
                owners = []
                for sub in range(split):
                    master = survivors[(offset + unit_no) % len(survivors)]
                    owners.append(master)
                    partitions.setdefault(master, []).append(
                        (tablet.table_id, tablet.index, sub, split))
                    unit_no += 1
                self.tablet_map.split_shard(tablet.tablet_id, 0, owners,
                                            TabletStatus.RECOVERING)
            else:
                master = survivors[(offset + unit_no) % len(survivors)]
                partitions.setdefault(master, []).append(
                    (tablet.table_id, tablet.index, shard,
                     tablet.shard_count))
                unit_no += 1
                self.tablet_map.reassign_shard(tablet.tablet_id, shard,
                                               master,
                                               TabletStatus.RECOVERING)

        # Locate every segment replica of the crashed master.  RAMCloud's
        # setup phase finds the most up-to-date replica of each segment
        # (essential for the open head, whose copies can trail each
        # other); among equally-complete holders, spread the reads.
        # The tie-break coin flip is drawn exactly as often as the old
        # spread-only logic whenever all replicas are complete — the
        # SYNC_RF steady state — keeping those digests bit-identical.
        segment_sources: Dict[int, Tuple[str, int]] = {}
        best_applied: Dict[int, float] = {}
        for sid in survivors:
            backup = self._servers[sid]
            for (master_id, segment_id), replica in backup.replicas.items():
                if master_id != server_id:
                    continue
                nbytes = max(replica.nbytes, replica.segment.bytes_used)
                applied = (float("inf") if replica.entries_applied is None
                           else replica.entries_applied)
                if segment_id not in segment_sources:
                    segment_sources[segment_id] = (sid, nbytes)
                    best_applied[segment_id] = applied
                elif applied > best_applied[segment_id]:
                    segment_sources[segment_id] = (sid, nbytes)
                    best_applied[segment_id] = applied
                elif (applied == best_applied[segment_id]
                      and self.stream.uniform() < 0.5):
                    segment_sources[segment_id] = (sid, nbytes)

        spans = {}
        index_ranges = {}
        for tablet, _shard in owned:
            table = self.tablet_map.table_by_id(tablet.table_id)
            spans[tablet.table_id] = table.span
            # Indexlet boundaries ride in the plan: recovery masters
            # range-route replayed index entries and serve Search from
            # the replayed state — an index is recovered like data,
            # never rebuilt by scanning its base table.
            desc = self.indexes.get(tablet.table_id)
            if desc is not None:
                index_ranges[tablet.table_id] = desc.boundaries

        segments = [(seg_id, src, nbytes)
                    for seg_id, (src, nbytes) in sorted(segment_sources.items())]
        stats.partitions = sum(len(u) for u in partitions.values())
        stats.segments = len(segments)
        # Segments with no live replica cannot be recovered: correlated
        # failures took the master and every backup of those segments.
        # Only data-bearing segments count — a freshly-opened empty head
        # has nothing to lose (and no replicas yet).
        crashed = self._servers[server_id]
        data_segments = sum(1 for s in crashed.log.segments.values()
                            if s.bytes_used > 0)
        stats.plan_lost_segments = max(0, data_segments - len(segments))
        stats.bytes_to_recover = sum(n for _s, _b, n in segments)
        stats.recovery_masters = sorted(partitions)
        return partitions, segments, spans, index_ranges

    def _run_recovery(self, server_id: str,
                      stats: RecoveryStats) -> Generator:
        (partitions, segments, spans,
         index_ranges) = self._recovery_plan(server_id, stats)
        if not partitions:
            return
        total_units = sum(len(u) for u in partitions.values())
        completed: Dict[str, List] = {}
        # Masters whose recover_partition RPC failed: the coordinator
        # just observed them unreachable, so later rounds avoid them
        # even while the ping detector has not evicted them yet.
        failed_masters: set = set()

        # Recovery masters can themselves die mid-recovery; real
        # RAMCloud restarts the affected partitions on other servers,
        # so we retry failed partitions for a few rounds.
        for _round in range(4):
            waits = []
            for master_id, units in partitions.items():
                master = self._servers[master_id]
                plan = {
                    "crashed_id": server_id,
                    "units": units,
                    "spans": spans,
                    "segments": segments,
                    "share": len(units) / total_units,
                    "pipeline_width": self.recovery_pipeline_width,
                }
                if index_ranges:
                    plan["index_ranges"] = index_ranges
                waits.append((master_id, units, self.sim.process(
                    self._recover_on(master, plan, stats),
                    name=f"coordinator:recover-on:{master_id}",
                )))
            failed_units: List = []
            for master_id, units, proc in waits:
                ok = yield proc
                if ok:
                    completed.setdefault(master_id, []).extend(units)
                else:
                    failed_units.extend(units)
                    failed_masters.add(master_id)
            if not failed_units:
                break
            survivors = [sid for sid in self.live_server_ids()
                         if sid not in failed_masters]
            if not survivors:
                survivors = list(self.live_server_ids())
            if not survivors:
                stats.recovery_masters.append("FAILED: no survivors")
                return
            partitions = {}
            offset = self.stream.randint(0, len(survivors) - 1)
            for i, unit in enumerate(failed_units):
                master_id = survivors[(offset + i) % len(survivors)]
                partitions.setdefault(master_id, []).append(unit)
                self.tablet_map.reassign_shard(
                    (unit[0], unit[1]), unit[2], master_id,
                    TabletStatus.RECOVERING)
        else:
            stats.recovery_masters.append("FAILED: retries exhausted")
            return
        # Flip shard statuses in the tablet map; recovery masters already
        # marked their units ready locally.
        for master_id, units in completed.items():
            for table_id, index, shard, _count in units:
                self.tablet_map.reassign_shard((table_id, index), shard,
                                               master_id,
                                               TabletStatus.NORMAL)
        # "At the end of the recovery the segments are cleaned from old
        # backups" (§II-B).
        for sid in self.live_server_ids():
            backup = self._servers[sid]
            doomed = [key for key in backup.replicas if key[0] == server_id]
            for key in doomed:
                replica = backup.replicas.pop(key)
                if replica.on_disk:
                    nbytes = max(replica.nbytes, replica.segment.bytes_used)
                    backup.node.disk.space.take(
                        min(backup.node.disk.space.level, nbytes))
        stats.finished_at = self.sim.now

    def _recover_on(self, master, plan, stats: RecoveryStats) -> Generator:
        """Drive one recovery master; returns True on success, False if
        the master itself became unreachable (never raises, so the
        orchestrator can always collect every partition's outcome)."""
        try:
            _status, lost_ids = yield from master.call(
                self.node, "recover_partition", args=plan,
                size_bytes=1024, response_bytes=64, timeout=600.0)
        except (NodeUnreachable, RpcTimeout):
            return False
        # Segments whose every replica died mid-recovery (correlated
        # failures) are gone for good.  De-duplicated across recovery
        # masters: each of them fetches every segment.
        stats.runtime_lost_segment_ids.update(lost_ids)
        return True
