"""The append-only log-structured memory (§II-B).

"A server uses an append-only log-structured memory to store its data
and a hash-table to index it. The log-structured memory of each server
is divided into 8MB segments."

The log tracks segment lifecycle: the head segment receives appends;
when full it is *closed* (backups then flush their replica to disk) and
a new head is opened (backups for it are chosen by the owner via the
``on_open`` callback).  The cleaner returns segments to the free pool.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ramcloud.config import ServerConfig
from repro.ramcloud.errors import LogOutOfMemory
from repro.ramcloud.segment import LogEntry, Segment
from repro.sim.racecheck import NULL_SHARED, guarded_by

__all__ = ["Log"]


@guarded_by("log_lock")
class Log:
    """One master's log-structured memory.

    Structural mutations (head roll, segment open/free) must hold the
    owning master's ``log_lock``; ``self.race`` records them for the
    debug-mode race detector (installed via :meth:`set_race`).
    """

    # Segments kept back for the cleaner: without headroom to copy live
    # data into, a full log could never be cleaned (RAMCloud reserves
    # "survivor" segments for exactly this reason).
    RESERVED_SEGMENTS = 2

    __slots__ = ("config", "segment_size", "max_segments", "_on_open",
                 "_on_close", "race", "segments", "_next_segment_id",
                 "head", "appended_bytes")

    def __init__(self, config: ServerConfig,
                 on_open: Optional[Callable[[Segment], Tuple[str, ...]]] = None,
                 on_close: Optional[Callable[[Segment], None]] = None):
        self.config = config
        self.segment_size = config.segment_size
        self.max_segments = config.total_segments
        self._on_open = on_open
        self._on_close = on_close
        self.race = NULL_SHARED
        self.segments: Dict[int, Segment] = {}
        self._next_segment_id = 0
        self.head: Segment = self._open_segment()
        self.appended_bytes = 0

    def set_race(self, race) -> None:
        """Install the race-detection handle (debug mode), covering the
        head segment opened before the handle existed."""
        self.race = race
        self.head.race = race

    # -- segment lifecycle ------------------------------------------------

    def _open_segment(self, privileged: bool = False) -> Segment:
        limit = self.max_segments
        if not privileged and self.max_segments > self.RESERVED_SEGMENTS:
            limit = self.max_segments - self.RESERVED_SEGMENTS
        if len(self.segments) >= limit:
            raise LogOutOfMemory(
                f"log full: {len(self.segments)} segments of "
                f"{self.segment_size} bytes (limit {limit})"
            )
        self.race.write("segments")
        segment = Segment(self._next_segment_id, self.segment_size)
        segment.race = self.race
        self._next_segment_id += 1
        self.segments[segment.segment_id] = segment
        if self._on_open is not None:
            segment.replica_backups = tuple(self._on_open(segment))
        return segment

    def _roll_head(self, privileged: bool = False) -> Segment:
        """Close the head and open a new one; returns the closed segment."""
        new_head = self._open_segment(privileged)  # may raise: head intact
        self.race.write("head")
        closed = self.head
        closed.close()
        if self._on_close is not None:
            self._on_close(closed)
        self.head = new_head
        return closed

    def free_segment(self, segment: Segment) -> None:
        """Return a (cleaned or recovered-from) segment to the free pool."""
        if segment is self.head:
            raise ValueError("cannot free the head segment")
        if segment.segment_id not in self.segments:
            raise KeyError(f"segment {segment.segment_id} not in this log")
        self.race.write("segments")
        del self.segments[segment.segment_id]

    # -- appending ----------------------------------------------------------

    def append(self, table_id: int, key: str, value_size: int, version: int,
               value: Optional[bytes] = None,
               is_tombstone: bool = False,
               privileged: bool = False,
               index_keys: Optional[Tuple[Tuple[int, str], ...]] = None,
               ) -> Tuple[Segment, LogEntry, Optional[Segment]]:
        """Append an entry; returns ``(segment, entry, closed_segment)``.

        ``closed_segment`` is non-None when this append rolled the head,
        so the caller can push the close to backups.  ``privileged``
        appends (the cleaner's survivor copies) may dip into the
        reserved segments.
        """
        entry = LogEntry(table_id, key, value_size, version, value=value,
                         is_tombstone=is_tombstone, index_keys=index_keys)
        if entry.log_bytes > self.segment_size:
            raise ValueError(
                f"object of {entry.log_bytes}B exceeds segment size "
                f"{self.segment_size}B"
            )
        closed = None
        self.race.write("head")
        if not self.head.fits(entry):
            closed = self._roll_head(privileged)
        self.head.append(entry)
        self.appended_bytes += entry.log_bytes
        return self.head, entry, closed

    # -- accounting -----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes of DRAM held by allocated segments."""
        return len(self.segments) * self.segment_size

    @property
    def live_bytes(self) -> int:
        """Bytes of live (indexed) data across all segments."""
        return sum(seg.live_bytes for seg in self.segments.values())

    @property
    def memory_utilization(self) -> float:
        """Fraction of the log memory budget in use (cleaner trigger)."""
        return self.used_bytes / (self.max_segments * self.segment_size)

    def closed_segments(self) -> List[Segment]:
        """Segments no longer accepting appends (optimistic snapshot)."""
        self.race.read("segments", relaxed=True)
        return [s for s in self.segments.values() if s.closed]

    def cleanable_segments(self) -> List[Segment]:
        """Closed segments with any dead data, best candidates first
        (lowest live fraction — the cost/benefit policy RAMCloud uses).
        An optimistic snapshot: the cleaner revalidates under the lock."""
        self.race.read("segments", relaxed=True)
        candidates = [s for s in self.segments.values()
                      if s.closed and s.dead_bytes > 0]
        candidates.sort(key=lambda s: s.utilization)
        return candidates
