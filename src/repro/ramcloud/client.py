"""The RAMCloud client library.

A client caches the coordinator's tablet map and routes each operation
directly to the owning master.  On routing failures (crashed master,
stale cache, tablet under recovery) it backs off exponentially
(optionally jittered from a seeded stream, so retry storms decorrelate
without breaking determinism), refreshes the map and retries — which is
exactly why the paper's Fig. 10 client that requests lost data blocks
for the whole duration of crash recovery.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.hardware.node import Node
from repro.net.fabric import NodeUnreachable
from repro.net.rpc import RpcTimeout
from repro.ramcloud.consistency import EVENTUAL
from repro.ramcloud.coordinator import Coordinator
from repro.ramcloud.errors import (
    BackupBehind,
    ObjectDoesntExist,
    RetryLater,
    StaleEpoch,
    TableDoesntExist,
    WrongServer,
)
from repro.ramcloud.tablets import key_hash
from repro.sim.distributions import RandomStream
from repro.sim.kernel import Simulator

__all__ = ["RamCloudClient"]

# Sizes of the RPC envelopes, matching RAMCloud's wire format closely
# enough for the network model.
READ_REQUEST_BYTES = 64
WRITE_OVERHEAD_BYTES = 64
RESPONSE_OVERHEAD_BYTES = 64


class RamCloudClient:  # simlint: disable=PERF001 O(clients) service object; __dict__ cost is amortized
    """One application's connection to the cluster."""

    def __init__(self, sim: Simulator, node: Node, coordinator: Coordinator,
                 retry_backoff: float = 0.05,
                 max_retries: Optional[int] = None,
                 backoff_factor: float = 2.0,
                 backoff_cap: float = 1.0,
                 stream: Optional[RandomStream] = None):
        self.sim = sim
        self.node = node
        self.coordinator = coordinator
        # Retry n sleeps min(retry_backoff * backoff_factor**(n-1),
        # backoff_cap) seconds, scaled by a uniform [0.5, 1.5) jitter
        # when a seeded ``stream`` is supplied.
        self.retry_backoff = retry_backoff
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self.stream = stream
        self.max_retries = max_retries
        self._map = None
        self.rpc_timeout = coordinator.config.rpc_timeout
        # Read-your-writes session state: per-master high-water mark of
        # the versions this client has been acknowledged (plain dict —
        # the client is single-threaded per op, but EVENTUAL reads ship
        # the watermark to backups, which check it against their own
        # applied prefix).
        self.session_watermarks: Dict[str, int] = {}
        # statistics
        self.ops_done = 0
        self.retries = 0
        self.timeouts = 0
        self.redirects = 0
        self.backup_reads = 0

    def _backoff_delay(self, tries: int) -> float:
        """Sleep before retry number ``tries`` (1-based)."""
        delay = min(self.retry_backoff * self.backoff_factor ** (tries - 1),
                    self.backoff_cap)
        if self.stream is not None:
            delay *= 0.5 + self.stream.uniform()
        return delay

    # -- tablet map management ------------------------------------------

    def refresh_map(self) -> Generator:
        """Fetch a fresh tablet-map snapshot from the coordinator."""
        self._map = yield from self.coordinator.call(
            self.node, "get_tablet_map",
            size_bytes=64, response_bytes=1024,
        )
        return self._map

    def _route(self, table_id: int, key: str):
        """Resolve (table, key) → (master service, span) from the cache."""
        if self._map is None:
            raise RuntimeError("call refresh_map() (or any op) first")
        tablet = self._map.tablet_for_key(table_id, key)
        table = self._map.tables_by_id[table_id]
        server_id = tablet.owner_for_key(key, table.span)
        master = self.coordinator.lookup_server(server_id)
        if master is None:
            raise NodeUnreachable(f"unknown server {server_id}")
        return master, table.span

    @property
    def _epoch(self) -> int:
        """The cached map's server-list epoch, stamped onto data RPCs
        so a master can reject routes that predate the membership
        change that moved its tablets (StaleEpoch → refresh + retry)."""
        return self._map.membership_version

    # -- administrative ops -------------------------------------------------

    def create_table(self, name: str, span: int) -> Generator:
        """Create a table via the coordinator; returns the table id."""
        table_id = yield from self.coordinator.call(
            self.node, "create_table", args=(name, span),
            size_bytes=128, response_bytes=64,
        )
        yield from self.refresh_map()
        return table_id

    def table_id(self, name: str) -> int:
        """Resolve a table name from the cached map."""
        if self._map is None or name not in self._map.tables_by_name:
            raise TableDoesntExist(name)
        return self._map.tables_by_name[name].table_id

    # -- data path ---------------------------------------------------------

    def _with_retries(self, op: str, table_id: int, key: str,
                      attempt, args=(),
                      record_write: bool = False) -> Generator:
        """Run ``attempt(master, span, *args)`` with the standard retry
        loop.  ``attempt`` is a bound method (not a per-operation
        closure: the data path allocates one of these per op).

        ``record_write`` folds a successful result (a version number)
        into the session watermark for read-your-writes.
        """
        if self._map is None:
            yield from self.refresh_map()
        tries = 0
        while True:
            try:
                master, span = self._route(table_id, key)
                result = yield from attempt(master, span, *args)
                self.ops_done += 1
                if record_write:
                    self._note_write(master.server_id, result)
                return result
            except (ObjectDoesntExist, TableDoesntExist):
                raise
            except BackupBehind:
                # The backup cannot satisfy this session yet: re-route
                # to the master *immediately*.  This is the expected
                # redirect path of EVENTUAL reads, not a failure — it
                # must not burn a backoff-counted retry (Fig. 6a's
                # give-up accounting would otherwise see phantom
                # failures under healthy operation).
                self.redirects += 1
                # Only the EVENTUAL read attempt raises this, and its
                # consistency level is always the last attempt arg:
                # dropping it to None routes every remaining attempt of
                # this op to the master (the wire-identical sync read).
                args = args[:-1] + (None,)
                continue
            except (NodeUnreachable, WrongServer, RetryLater,
                    StaleEpoch) as exc:
                # StaleEpoch: the cached map predates a membership
                # change — invalidate it and re-route (a fenced zombie
                # answers WrongServer; either way the refresh below
                # finds the new owner).
                del exc
            except RpcTimeout:
                self.timeouts += 1
            tries += 1
            self.retries += 1
            if self.max_retries is not None and tries > self.max_retries:
                raise RpcTimeout(
                    f"{op} t{table_id}/{key}: exhausted {tries} retries")
            yield self.sim.timeout(self._backoff_delay(tries))
            yield from self.refresh_map()

    def _note_write(self, server_id: str, version) -> None:
        """Advance this session's per-master write watermark."""
        if not isinstance(version, int):
            return
        if version > self.session_watermarks.get(server_id, 0):
            self.session_watermarks[server_id] = version

    def _backup_for(self, master, key: str):
        """Deterministically pick a backup candidate for an EVENTUAL
        read of ``key`` — keyed off the snapshot's live-server list, so
        no RNG draw and no divergence between reruns."""
        candidates = [sid for sid in getattr(self._map, "live_servers", ())
                      if sid != master.server_id]
        if not candidates:
            return None
        backup_id = candidates[key_hash(key) % len(candidates)]
        return self.coordinator.lookup_server(backup_id)

    def _read_attempt(self, master, span, table_id, key, level=None):
        if level == EVENTUAL:
            backup = self._backup_for(master, key)
            if backup is not None:
                self.backup_reads += 1
                return backup.call(
                    self.node, "backup_read",
                    args=(master.server_id, table_id, key, span,
                          self.session_watermarks.get(master.server_id, 0)),
                    size_bytes=READ_REQUEST_BYTES,
                    response_bytes=RESPONSE_OVERHEAD_BYTES
                    + self._expected_size(table_id, key),
                    timeout=self.rpc_timeout,
                )
        return master.call(
            self.node, "read", args=(table_id, key, span, self._epoch),
            size_bytes=READ_REQUEST_BYTES,
            response_bytes=RESPONSE_OVERHEAD_BYTES
            + self._expected_size(table_id, key),
            timeout=self.rpc_timeout,
        )

    def read(self, table_id: int, key: str,
             level: Optional[str] = None) -> Generator:
        """Read one object; returns ``(value, version, value_size)``.

        ``level`` only matters for :data:`EVENTUAL`, which first tries
        a backup replica (scaling reads past the owning master) and
        falls back to the master when the backup is behind the
        session's watermark.  SYNC_RF and ASYNC_BOUNDED reads are
        master-only and identical on the wire.
        """
        return self._with_retries("read", table_id, key,
                                  self._read_attempt,
                                  (table_id, key, level))

    def _expected_size(self, table_id: int, key: str) -> int:
        # The response size is only known server-side; use a nominal
        # 1 KB (the paper's record size) — refined after the first read.
        return 1024

    def write(self, table_id: int, key: str, value_size: int,
              value: Optional[bytes] = None,
              expected_version: Optional[int] = None,
              level: Optional[str] = None) -> Generator:
        """Write (insert or update) one object; returns the new version.

        ``expected_version`` makes the write conditional (RAMCloud's
        reject-rules): it only applies if the object is currently at
        exactly that version (0 = must not exist), otherwise
        :class:`~repro.ramcloud.errors.StaleVersion` is raised.

        ``level`` picks the durability/ack point for this write (see
        :mod:`repro.ramcloud.consistency`); None uses the cluster's
        configured default.
        """

        return self._with_retries(
            "write", table_id, key, self._write_attempt,
            (table_id, key, value_size, value, expected_version, level),
            record_write=True)

    def _write_attempt(self, master, span, table_id, key, value_size,
                       value, expected_version, level=None):
        return master.call(
            self.node, "write",
            args=(table_id, key, value_size, value, span,
                  expected_version, self._epoch, level),
            size_bytes=WRITE_OVERHEAD_BYTES + value_size,
            response_bytes=RESPONSE_OVERHEAD_BYTES,
            timeout=self.rpc_timeout,
        )

    def multiread(self, table_id: int, keys) -> Generator:
        """Batched read of many keys (RAMCloud's MultiRead).

        Keys are grouped by owning master and fetched with one RPC per
        master, issued concurrently; returns ``{key: (value, version,
        size)}`` with absent keys omitted.  YCSB's scans (workload E)
        run on this path.
        """
        if self._map is None:
            yield from self.refresh_map()
        keys = list(keys)
        if not keys:
            return {}
        table = self._map.tables_by_id[table_id]

        sim = self.sim
        tries = 0
        while True:
            # Rebuilt per retry on purpose: a failed attempt refreshes
            # the tablet map, which can regroup every key.
            by_master = {}  # simlint: disable=PERF002 regrouped per retry after remap
            for key in keys:
                tablet = self._map.tablet_for_key(table_id, key)
                server_id = tablet.owner_for_key(key, table.span)
                by_master.setdefault(server_id, []).append(key)
            calls = []
            for server_id, batch in by_master.items():
                master = self.coordinator.lookup_server(server_id)
                if master is None:
                    calls = None
                    break
                request_bytes = READ_REQUEST_BYTES + 32 * len(batch)
                response_bytes = (RESPONSE_OVERHEAD_BYTES
                                  + 1024 * len(batch))
                calls.append(sim.process(
                    master.call(self.node, "multiread",
                                args=(table_id, batch, table.span,
                                      self._epoch),
                                size_bytes=request_bytes,
                                response_bytes=response_bytes,
                                timeout=self.rpc_timeout)))
            if calls is not None:
                gathered = sim.all_of(calls)
                try:
                    yield gathered
                    merged = {}  # simlint: disable=PERF002 fresh result per retry
                    for call in calls:
                        merged.update(call.value)
                    self.ops_done += len(keys)
                    return merged
                except (NodeUnreachable, WrongServer, RetryLater,
                        RpcTimeout, StaleEpoch):
                    pass
            tries += 1
            self.retries += 1
            if self.max_retries is not None and tries > self.max_retries:
                raise RpcTimeout(
                    f"multiread t{table_id}: exhausted {tries} retries")
            yield self.sim.timeout(self._backoff_delay(tries))
            yield from self.refresh_map()

    def _delete_attempt(self, master, span, table_id, key, level=None):
        return master.call(
            self.node, "delete",
            args=(table_id, key, span, self._epoch, level),
            size_bytes=READ_REQUEST_BYTES,
            response_bytes=RESPONSE_OVERHEAD_BYTES,
            timeout=self.rpc_timeout,
        )

    def delete(self, table_id: int, key: str,
               level: Optional[str] = None) -> Generator:
        """Delete one object; returns the tombstone's version."""
        return self._with_retries("delete", table_id, key,
                                  self._delete_attempt,
                                  (table_id, key, level),
                                  record_write=True)
