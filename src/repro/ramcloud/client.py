"""The RAMCloud client library.

A client caches the coordinator's tablet map and routes each operation
directly to the owning master.  On routing failures (crashed master,
stale cache, tablet under recovery) it backs off exponentially
(optionally jittered from a seeded stream, so retry storms decorrelate
without breaking determinism), refreshes the map and retries — which is
exactly why the paper's Fig. 10 client that requests lost data blocks
for the whole duration of crash recovery.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.hardware.node import Node
from repro.net.fabric import NodeUnreachable
from repro.net.rpc import RpcTimeout
from repro.ramcloud.consistency import EVENTUAL
from repro.ramcloud.coordinator import Coordinator
from repro.ramcloud.indexing import KEY_SEP, decode_entry_key
from repro.ramcloud.errors import (
    BackupBehind,
    ObjectDoesntExist,
    RetryLater,
    StaleEpoch,
    TableDoesntExist,
    WrongServer,
)
from repro.ramcloud.tablets import key_hash
from repro.sim.distributions import RandomStream
from repro.sim.kernel import Simulator

__all__ = ["RamCloudClient"]

# Sizes of the RPC envelopes, matching RAMCloud's wire format closely
# enough for the network model.
READ_REQUEST_BYTES = 64
WRITE_OVERHEAD_BYTES = 64
RESPONSE_OVERHEAD_BYTES = 64


class RamCloudClient:  # simlint: disable=PERF001 O(clients) service object; __dict__ cost is amortized
    """One application's connection to the cluster."""

    def __init__(self, sim: Simulator, node: Node, coordinator: Coordinator,
                 retry_backoff: float = 0.05,
                 max_retries: Optional[int] = None,
                 backoff_factor: float = 2.0,
                 backoff_cap: float = 1.0,
                 stream: Optional[RandomStream] = None):
        self.sim = sim
        self.node = node
        self.coordinator = coordinator
        # Retry n sleeps min(retry_backoff * backoff_factor**(n-1),
        # backoff_cap) seconds, scaled by a uniform [0.5, 1.5) jitter
        # when a seeded ``stream`` is supplied.
        self.retry_backoff = retry_backoff
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self.stream = stream
        self.max_retries = max_retries
        self._map = None
        self.rpc_timeout = coordinator.config.rpc_timeout
        # Read-your-writes session state: per-master high-water mark of
        # the versions this client has been acknowledged (plain dict —
        # the client is single-threaded per op, but EVENTUAL reads ship
        # the watermark to backups, which check it against their own
        # applied prefix).
        self.session_watermarks: Dict[str, int] = {}
        # statistics
        self.ops_done = 0
        self.retries = 0
        self.timeouts = 0
        self.redirects = 0
        self.backup_reads = 0

    def _backoff_delay(self, tries: int) -> float:
        """Sleep before retry number ``tries`` (1-based)."""
        delay = min(self.retry_backoff * self.backoff_factor ** (tries - 1),
                    self.backoff_cap)
        if self.stream is not None:
            delay *= 0.5 + self.stream.uniform()
        return delay

    # -- tablet map management ------------------------------------------

    def refresh_map(self) -> Generator:
        """Fetch a fresh tablet-map snapshot from the coordinator."""
        self._map = yield from self.coordinator.call(
            self.node, "get_tablet_map",
            size_bytes=64, response_bytes=1024,
        )
        return self._map

    def _route(self, table_id: int, key: str):
        """Resolve (table, key) → (master service, span) from the cache."""
        if self._map is None:
            raise RuntimeError("call refresh_map() (or any op) first")
        tablet = self._map.tablet_for_key(table_id, key)
        table = self._map.tables_by_id[table_id]
        server_id = tablet.owner_for_key(key, table.span)
        master = self.coordinator.lookup_server(server_id)
        if master is None:
            raise NodeUnreachable(f"unknown server {server_id}")
        return master, table.span

    @property
    def _epoch(self) -> int:
        """The cached map's server-list epoch, stamped onto data RPCs
        so a master can reject routes that predate the membership
        change that moved its tablets (StaleEpoch → refresh + retry)."""
        return self._map.membership_version

    # -- administrative ops -------------------------------------------------

    def create_table(self, name: str, span: int,
                     tenant: Optional[str] = None) -> Generator:
        """Create a table via the coordinator; returns the table id.
        With ``tenant``, the table lives in that tenant's namespace
        (the wire args stay a 2-tuple for untenanted tables)."""
        args = (name, span) if tenant is None else (name, span, tenant)
        table_id = yield from self.coordinator.call(
            self.node, "create_table", args=args,
            size_bytes=128, response_bytes=64,
        )
        yield from self.refresh_map()
        return table_id

    def create_tenant(self, spec) -> Generator:
        """Register a :class:`~repro.ramcloud.tenancy.TenantSpec`."""
        yield from self.coordinator.call(
            self.node, "create_tenant", args=spec,
            size_bytes=128, response_bytes=64,
        )

    def create_index(self, table_id: int, name: str,
                     boundaries) -> Generator:
        """Create a secondary index over ``table_id`` with the given
        indexlet ``boundaries``; returns its
        :class:`~repro.ramcloud.indexing.IndexDescriptor`."""
        desc = yield from self.coordinator.call(
            self.node, "create_index",
            args=(table_id, name, tuple(boundaries)),
            size_bytes=256, response_bytes=256,
        )
        yield from self.refresh_map()
        return desc

    def index_id(self, table_id: int, name: str) -> int:
        """Resolve an index by base table and name from the cached map."""
        if self._map is not None:
            for iid, desc in self._map.indexes.items():
                if desc.table_id == table_id and desc.name == name:
                    return iid
        raise TableDoesntExist(f"index {name!r} on table {table_id}")

    def table_id(self, name: str) -> int:
        """Resolve a table name from the cached map."""
        if self._map is None or name not in self._map.tables_by_name:
            raise TableDoesntExist(name)
        return self._map.tables_by_name[name].table_id

    # -- data path ---------------------------------------------------------

    def _with_retries(self, op: str, table_id: int, key: str,
                      attempt, args=(),
                      record_write: bool = False) -> Generator:
        """Run ``attempt(master, span, *args)`` with the standard retry
        loop.  ``attempt`` is a bound method (not a per-operation
        closure: the data path allocates one of these per op).

        ``record_write`` folds a successful result (a version number)
        into the session watermark for read-your-writes.
        """
        if self._map is None:
            yield from self.refresh_map()
        tries = 0
        while True:
            try:
                master, span = self._route(table_id, key)
                result = yield from attempt(master, span, *args)
                self.ops_done += 1
                if record_write:
                    self._note_write(master.server_id, result)
                return result
            except (ObjectDoesntExist, TableDoesntExist):
                raise
            except BackupBehind:
                # The backup cannot satisfy this session yet: re-route
                # to the master *immediately*.  This is the expected
                # redirect path of EVENTUAL reads, not a failure — it
                # must not burn a backoff-counted retry (Fig. 6a's
                # give-up accounting would otherwise see phantom
                # failures under healthy operation).
                self.redirects += 1
                # Only the EVENTUAL read attempt raises this, and its
                # consistency level is always the last attempt arg:
                # dropping it to None routes every remaining attempt of
                # this op to the master (the wire-identical sync read).
                args = args[:-1] + (None,)
                continue
            except (NodeUnreachable, WrongServer, RetryLater,
                    StaleEpoch) as exc:
                # StaleEpoch: the cached map predates a membership
                # change — invalidate it and re-route (a fenced zombie
                # answers WrongServer; either way the refresh below
                # finds the new owner).
                del exc
            except RpcTimeout:
                self.timeouts += 1
            tries += 1
            self.retries += 1
            if self.max_retries is not None and tries > self.max_retries:
                raise RpcTimeout(
                    f"{op} t{table_id}/{key}: exhausted {tries} retries")
            yield self.sim.timeout(self._backoff_delay(tries))
            yield from self.refresh_map()

    def _note_write(self, server_id: str, version) -> None:
        """Advance this session's per-master write watermark."""
        if not isinstance(version, int):
            return
        if version > self.session_watermarks.get(server_id, 0):
            self.session_watermarks[server_id] = version

    def _backup_for(self, master, key: str):
        """Deterministically pick a backup candidate for an EVENTUAL
        read of ``key`` — keyed off the snapshot's live-server list, so
        no RNG draw and no divergence between reruns."""
        candidates = [sid for sid in getattr(self._map, "live_servers", ())
                      if sid != master.server_id]
        if not candidates:
            return None
        backup_id = candidates[key_hash(key) % len(candidates)]
        return self.coordinator.lookup_server(backup_id)

    def _read_attempt(self, master, span, table_id, key, level=None):
        if level == EVENTUAL:
            backup = self._backup_for(master, key)
            if backup is not None:
                self.backup_reads += 1
                return backup.call(
                    self.node, "backup_read",
                    args=(master.server_id, table_id, key, span,
                          self.session_watermarks.get(master.server_id, 0)),
                    size_bytes=READ_REQUEST_BYTES,
                    response_bytes=RESPONSE_OVERHEAD_BYTES
                    + self._expected_size(table_id, key),
                    timeout=self.rpc_timeout,
                )
        return master.call(
            self.node, "read", args=(table_id, key, span, self._epoch),
            size_bytes=READ_REQUEST_BYTES,
            response_bytes=RESPONSE_OVERHEAD_BYTES
            + self._expected_size(table_id, key),
            timeout=self.rpc_timeout,
        )

    def read(self, table_id: int, key: str,
             level: Optional[str] = None) -> Generator:
        """Read one object; returns ``(value, version, value_size)``.

        ``level`` only matters for :data:`EVENTUAL`, which first tries
        a backup replica (scaling reads past the owning master) and
        falls back to the master when the backup is behind the
        session's watermark.  SYNC_RF and ASYNC_BOUNDED reads are
        master-only and identical on the wire.
        """
        return self._with_retries("read", table_id, key,
                                  self._read_attempt,
                                  (table_id, key, level))

    def _expected_size(self, table_id: int, key: str) -> int:
        # The response size is only known server-side; use a nominal
        # 1 KB (the paper's record size) — refined after the first read.
        return 1024

    def write(self, table_id: int, key: str, value_size: int,
              value: Optional[bytes] = None,
              expected_version: Optional[int] = None,
              level: Optional[str] = None,
              index_entries=None) -> Generator:
        """Write (insert or update) one object; returns the new version.

        ``expected_version`` makes the write conditional (RAMCloud's
        reject-rules): it only applies if the object is currently at
        exactly that version (0 = must not exist), otherwise
        :class:`~repro.ramcloud.errors.StaleVersion` is raised.

        ``level`` picks the durability/ack point for this write (see
        :mod:`repro.ramcloud.consistency`); None uses the cluster's
        configured default.

        ``index_entries`` is a tuple of ``(index_id, secondary_key)``
        pairs the object carries; the master maintains the secondary
        indexes synchronously before acknowledging.  Unindexed writes
        keep the 8-tuple wire format unchanged.
        """

        return self._with_retries(
            "write", table_id, key, self._write_attempt,
            (table_id, key, value_size, value, expected_version, level,
             index_entries),
            record_write=True)

    def _write_attempt(self, master, span, table_id, key, value_size,
                       value, expected_version, level=None,
                       index_entries=None):
        args = (table_id, key, value_size, value, span,
                expected_version, self._epoch, level)
        size = WRITE_OVERHEAD_BYTES + value_size
        if index_entries is not None:
            args = args + (tuple(index_entries),)
            size += sum(len(s) for _i, s in index_entries)
        return master.call(
            self.node, "write", args=args,
            size_bytes=size,
            response_bytes=RESPONSE_OVERHEAD_BYTES,
            timeout=self.rpc_timeout,
        )

    def multiread(self, table_id: int, keys) -> Generator:
        """Batched read of many keys (RAMCloud's MultiRead).

        Keys are grouped by owning master and fetched with one RPC per
        master, issued concurrently; returns ``{key: (value, version,
        size)}`` with absent keys omitted.  YCSB's scans (workload E)
        run on this path.
        """
        if self._map is None:
            yield from self.refresh_map()
        keys = list(keys)
        if not keys:
            return {}
        table = self._map.tables_by_id[table_id]

        sim = self.sim
        tries = 0
        while True:
            # Rebuilt per retry on purpose: a failed attempt refreshes
            # the tablet map, which can regroup every key.
            by_master = {}  # simlint: disable=PERF002 regrouped per retry after remap
            for key in keys:
                tablet = self._map.tablet_for_key(table_id, key)
                server_id = tablet.owner_for_key(key, table.span)
                by_master.setdefault(server_id, []).append(key)
            calls = []
            for server_id, batch in by_master.items():
                master = self.coordinator.lookup_server(server_id)
                if master is None:
                    calls = None
                    break
                request_bytes = READ_REQUEST_BYTES + 32 * len(batch)
                response_bytes = (RESPONSE_OVERHEAD_BYTES
                                  + 1024 * len(batch))
                calls.append(sim.process(
                    master.call(self.node, "multiread",
                                args=(table_id, batch, table.span,
                                      self._epoch),
                                size_bytes=request_bytes,
                                response_bytes=response_bytes,
                                timeout=self.rpc_timeout)))
            if calls is not None:
                gathered = sim.all_of(calls)
                try:
                    yield gathered
                    merged = {}  # simlint: disable=PERF002 fresh result per retry
                    for call in calls:
                        merged.update(call.value)
                    self.ops_done += len(keys)
                    return merged
                except (NodeUnreachable, WrongServer, RetryLater,
                        RpcTimeout, StaleEpoch):
                    pass
            tries += 1
            self.retries += 1
            if self.max_retries is not None and tries > self.max_retries:
                raise RpcTimeout(
                    f"multiread t{table_id}: exhausted {tries} retries")
            yield self.sim.timeout(self._backoff_delay(tries))
            yield from self.refresh_map()

    def _delete_attempt(self, master, span, table_id, key, level=None):
        return master.call(
            self.node, "delete",
            args=(table_id, key, span, self._epoch, level),
            size_bytes=READ_REQUEST_BYTES,
            response_bytes=RESPONSE_OVERHEAD_BYTES,
            timeout=self.rpc_timeout,
        )

    def delete(self, table_id: int, key: str,
               level: Optional[str] = None) -> Generator:
        """Delete one object; returns the tombstone's version."""
        return self._with_retries("delete", table_id, key,
                                  self._delete_attempt,
                                  (table_id, key, level),
                                  record_write=True)

    # -- secondary-index range search ---------------------------------------

    def search(self, index_id: int, lo: str, hi: Optional[str] = None,
               limit: int = 1000) -> Generator:
        """Range lookup over a secondary index (RAMCloud's indexed
        read): secondary keys in ``[lo, hi)`` (``hi=None`` means to the
        end of the index), at most ``limit`` index entries.

        Walks the indexlets in boundary order, fanning out over each
        indexlet's shards concurrently and continuing from the last
        returned key when a shard truncates its reply.  Every matching
        entry is then validated against the base table — an entry whose
        object no longer carries that secondary key (a crash window or
        a concurrent delete) is silently dropped, so readers never see
        dangling entries.  Returns ``[(secondary, primary, value,
        version)]`` ordered by ``(secondary, primary)``.
        """
        if self._map is None:
            yield from self.refresh_map()
        desc = self._map.indexes.get(index_id)
        if desc is None:
            yield from self.refresh_map()
            desc = self._map.indexes.get(index_id)
            if desc is None:
                raise TableDoesntExist(f"index {index_id}")
        hi_eff = hi if hi is not None else "￿"
        entry_keys = yield from self._search_entries(desc, lo, hi_eff, limit)
        if not entry_keys:
            return []
        result = yield from self._validate_entries(desc, entry_keys)
        return result

    def lookup_range(self, index_id: int, lo: str,
                     hi: Optional[str] = None,
                     limit: int = 1000) -> Generator:
        """Alias for :meth:`search`."""
        return self.search(index_id, lo, hi, limit)

    def _search_entries(self, desc, lo: str, hi: str,
                        limit: int) -> Generator:
        """The indexlet walk: collect up to ``limit`` matching entry
        keys in ``[lo, hi)`` (entry-key space — encoded secondary+primary
        sorts exactly like (secondary, primary))."""
        sim = self.sim
        index_id = desc.index_id
        span = desc.num_indexlets
        cursor = lo
        found = []
        tries = 0
        while cursor < hi and len(found) < limit:
            indexlet = desc.indexlet_for(cursor)
            tablet = self._map.tablets.get((index_id, indexlet))
            remaining = limit - len(found)
            calls = []  # simlint: disable=PERF002 fresh fan-out per indexlet/retry
            if tablet is None:
                calls = None
            else:
                # One concurrent RPC per shard of this indexlet (the
                # multiread fan-out idiom).
                for shard in range(tablet.shard_count):
                    master = self.coordinator.lookup_server(
                        tablet.shards[shard])
                    if master is None:
                        calls = None
                        break
                    calls.append(sim.process(master.call(
                        self.node, "search",
                        args=(index_id, cursor, hi, remaining, span,
                              shard, self._epoch),
                        size_bytes=READ_REQUEST_BYTES + len(cursor)
                        + len(hi),
                        response_bytes=RESPONSE_OVERHEAD_BYTES
                        + 32 * remaining,
                        timeout=self.rpc_timeout)))
            replied = False
            if calls is not None:
                try:
                    yield sim.all_of(calls)
                    replied = True
                except (NodeUnreachable, WrongServer, RetryLater,
                        RpcTimeout, StaleEpoch):
                    pass
            if not replied:
                tries += 1
                self.retries += 1
                if self.max_retries is not None and tries > self.max_retries:
                    raise RpcTimeout(
                        f"search index {index_id}: exhausted {tries} retries")
                yield self.sim.timeout(self._backoff_delay(tries))
                yield from self.refresh_map()
                continue
            tries = 0
            merged = []  # simlint: disable=PERF002 fresh merge per indexlet
            bound = None  # lowest truncation point across the shards
            for call in calls:
                matches, truncated = call.value
                merged.extend(matches)
                if truncated:
                    # The shard stopped early: it covered only
                    # [cursor, matches[-1]].
                    if bound is None or matches[-1] < bound:
                        bound = matches[-1]
            merged.sort()
            if bound is not None:
                # Beyond the lowest truncation point the merge is
                # incomplete; keep the covered prefix and continue from
                # just past it (next-key continuation).
                merged = [k for k in merged if k <= bound]
            for entry_key in merged:
                if len(found) >= limit:
                    break
                found.append(entry_key)
            if len(found) >= limit:
                break
            if bound is not None:
                cursor = bound + KEY_SEP
            else:
                nxt = indexlet + 1
                cursor = desc.boundaries[nxt] if nxt < span else hi
        self.ops_done += 1
        return found

    def _validate_entries(self, desc, entry_keys) -> Generator:
        """Fetch-and-filter the matched entries against the base table
        (concurrent per-master ``index_lookup`` RPCs, grouped like
        multiread)."""
        sim = self.sim
        table = self._map.tables_by_id[desc.table_id]
        pairs = [decode_entry_key(k) for k in entry_keys]
        tries = 0
        while True:
            # Rebuilt per retry: a refresh can regroup every key.
            by_master = {}  # simlint: disable=PERF002 regrouped per retry after remap
            for secondary, primary in pairs:
                tablet = self._map.tablet_for_key(desc.table_id, primary)
                server_id = tablet.owner_for_key(primary, table.span)
                by_master.setdefault(server_id, []).append(
                    (primary, desc.index_id, secondary))
            calls = []
            for server_id, items in by_master.items():
                master = self.coordinator.lookup_server(server_id)
                if master is None:
                    calls = None
                    break
                calls.append(sim.process(master.call(
                    self.node, "index_lookup",
                    args=(desc.table_id, items, table.span, self._epoch),
                    size_bytes=READ_REQUEST_BYTES + 48 * len(items),
                    response_bytes=RESPONSE_OVERHEAD_BYTES
                    + 1024 * len(items),
                    timeout=self.rpc_timeout)))
            if calls is not None:
                try:
                    yield sim.all_of(calls)
                    merged = {}  # simlint: disable=PERF002 fresh result per retry
                    for call in calls:
                        merged.update(call.value)
                    self.ops_done += len(pairs)
                    results = []
                    for secondary, primary in pairs:
                        got = merged.get(primary)
                        if got is None:
                            continue  # dangling entry: filtered out
                        value, version, _value_size = got
                        results.append((secondary, primary, value, version))
                    return results
                except (NodeUnreachable, WrongServer, RetryLater,
                        RpcTimeout, StaleEpoch):
                    pass
            tries += 1
            self.retries += 1
            if self.max_retries is not None and tries > self.max_retries:
                raise RpcTimeout(
                    f"index_lookup t{desc.table_id}: exhausted "
                    f"{tries} retries")
            yield self.sim.timeout(self._backoff_delay(tries))
            yield from self.refresh_map()
