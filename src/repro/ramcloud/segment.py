"""Log entries and segments.

The log-structured memory is divided into fixed-size segments (8 MB in
the paper, §II-B).  A segment is append-only; deleting or overwriting
an object leaves a dead entry behind (plus a tombstone for deletes) that
only the cleaner reclaims.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.sim.racecheck import NULL_SHARED

__all__ = ["LogEntry", "Segment", "ENTRY_HEADER_BYTES"]

# Per-entry log overhead (entry header + checksum), as in RAMCloud.
ENTRY_HEADER_BYTES = 40


class LogEntry:
    """One object record (or tombstone) in the log."""

    __slots__ = ("table_id", "key", "value_size", "version", "value",
                 "is_tombstone", "live", "index_keys")

    def __init__(self, table_id: int, key: str, value_size: int,
                 version: int, value: Optional[bytes] = None,
                 is_tombstone: bool = False,
                 index_keys: Optional[Tuple[Tuple[int, str], ...]] = None):
        if value_size < 0:
            raise ValueError(f"negative value size: {value_size}")
        self.table_id = table_id
        self.key = key
        self.value_size = value_size
        self.version = version
        self.value = value
        self.is_tombstone = is_tombstone
        # Secondary keys this object carries, as (index_id, secondary)
        # pairs (None for unindexed objects).  Stored in the record — as
        # in RAMCloud/SLIK — so recovery replay and the cleaner can
        # re-derive a record's index entries without consulting anyone.
        self.index_keys = index_keys
        # A live entry is reachable from the hash table; overwrites and
        # deletes mark the old entry dead for the cleaner.
        self.live = not is_tombstone

    @property
    def log_bytes(self) -> int:
        """Bytes this entry occupies in the log."""
        size = ENTRY_HEADER_BYTES + len(self.key) + self.value_size
        if self.index_keys:
            for _index_id, secondary in self.index_keys:
                size += len(secondary)
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "tombstone" if self.is_tombstone else "object"
        return (f"<LogEntry {kind} t{self.table_id}/{self.key} "
                f"v{self.version} {self.value_size}B>")


class Segment:
    """A fixed-size append-only region of the in-memory log."""

    __slots__ = ("segment_id", "capacity", "bytes_used", "entries",
                 "closed", "replica_backups", "race")

    def __init__(self, segment_id: int, capacity: int):
        if capacity <= ENTRY_HEADER_BYTES:
            raise ValueError(f"segment capacity too small: {capacity}")
        self.segment_id = segment_id
        self.capacity = capacity
        self.bytes_used = 0
        self.entries: List[LogEntry] = []
        self.closed = False
        # Race-detection handle shared with the owning Log (debug mode).
        self.race = NULL_SHARED
        # Backup server ids holding replicas of this segment (chosen at
        # open time — §II-B: "a random backup in the cluster is chosen
        # for each new segment").
        self.replica_backups: Tuple[str, ...] = ()

    @property
    def free_bytes(self) -> int:
        """Capacity remaining for appends."""
        return self.capacity - self.bytes_used

    @property
    def live_bytes(self) -> int:
        """Bytes of still-indexed entries."""
        return sum(e.log_bytes for e in self.entries if e.live)

    @property
    def dead_bytes(self) -> int:
        """Bytes of overwritten/deleted entries (cleaner fodder)."""
        return self.bytes_used - self.live_bytes

    @property
    def utilization(self) -> float:
        """Fraction of used bytes still live (cleaner candidate metric)."""
        if self.bytes_used == 0:
            return 0.0
        return self.live_bytes / self.bytes_used

    def fits(self, entry: LogEntry) -> bool:
        """Whether the entry fits in the remaining space."""
        return entry.log_bytes <= self.free_bytes

    def append(self, entry: LogEntry) -> None:
        """Add an entry; the segment must be open and have room."""
        if self.closed:
            raise ValueError(f"append to closed segment {self.segment_id}")
        if not self.fits(entry):
            raise ValueError(
                f"entry of {entry.log_bytes}B does not fit in segment "
                f"{self.segment_id} ({self.free_bytes}B free)"
            )
        if self.race.enabled:
            self.race.write(f"seg{self.segment_id}")
        self.entries.append(entry)
        self.bytes_used += entry.log_bytes

    def close(self) -> None:
        """Seal the segment (backups flush their replica to disk)."""
        self.race.write(f"seg{self.segment_id}")
        self.closed = True

    def live_entries(self) -> Iterator[LogEntry]:
        """Iterate the entries still reachable from the hash table (an
        optimistic scan: the cleaner revalidates per entry under the
        lock before relocating)."""
        self.race.read(f"seg{self.segment_id}", relaxed=True)
        return (e for e in self.entries if e.live)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return (f"<Segment {self.segment_id} {state} "
                f"{self.bytes_used}/{self.capacity}B "
                f"{len(self.entries)} entries>")
