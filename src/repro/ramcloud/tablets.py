"""Tables, tablets and the tablet map.

Data in RAMCloud is stored in tables that can span multiple storage
servers (§II-B).  The paper configures ``ServerSpan`` equal to the
number of servers so each table is split uniformly: we model a table as
``span`` tablets, tablet *i* owning all keys with ``key_hash % span ==
i``, assigned round-robin over the live servers.

The coordinator owns the authoritative :class:`TabletMap`; clients keep
epoch-stamped copies and refresh on routing failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.racecheck import NULL_SHARED

__all__ = ["Table", "Tablet", "TabletMap", "TabletStatus", "key_hash"]


def key_hash(key: str) -> int:
    """Stable hash used for key→tablet routing (never Python's salted
    ``hash``, which would break run-to-run determinism)."""
    h = 14695981039346656037
    for byte in key.encode():
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h


class TabletStatus:
    """Shard states: NORMAL serves requests, RECOVERING rejects with RetryLater."""
    NORMAL = "normal"
    RECOVERING = "recovering"


@dataclass
class Tablet:
    """One shard of a table: keys with ``key_hash % span == index``.

    Normally one server owns the whole tablet.  Crash recovery *splits*
    a tablet into subshards (the crashed master's will partitions its
    data so "as many machines as possible" participate, §II-B): after a
    recovery, ``shards`` lists one owner per subshard and key routing
    adds a second hash level.
    """

    table_id: int
    index: int
    shards: List[str] = field(default_factory=list)  # owner per subshard
    statuses: List[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.shards:
            raise ValueError("tablet needs at least one shard owner")
        if not self.statuses:
            self.statuses = [TabletStatus.NORMAL] * len(self.shards)
        if len(self.statuses) != len(self.shards):
            raise ValueError("statuses must match shards")

    @property
    def tablet_id(self) -> Tuple[int, int]:
        """(table_id, tablet_index)."""
        return (self.table_id, self.index)

    @property
    def shard_count(self) -> int:
        """Number of subshards (1 unless split by recovery)."""
        return len(self.shards)

    @property
    def server_id(self) -> str:
        """Owner of an unsplit tablet (the common case)."""
        if len(self.shards) != 1:
            raise ValueError(
                f"tablet {self.tablet_id} is split over {self.shards}")
        return self.shards[0]

    @property
    def status(self) -> str:
        """RECOVERING if any shard is recovering."""
        for s in self.statuses:
            if s != TabletStatus.NORMAL:
                return s
        return TabletStatus.NORMAL

    def shard_for_key(self, key: str, span: int) -> int:
        """Which subshard of this tablet owns ``key``."""
        return (key_hash(key) // span) % self.shard_count

    def owner_for_key(self, key: str, span: int) -> str:
        """Server id serving ``key``."""
        return self.shards[self.shard_for_key(key, span)]

    def clone(self) -> "Tablet":
        """An independent copy (for client snapshots)."""
        return Tablet(self.table_id, self.index, list(self.shards),
                      list(self.statuses))


@dataclass
class Table:
    """A named table split into ``span`` tablets."""
    table_id: int
    name: str
    span: int


class TabletMap:  # simlint: disable=PERF001 one per coordinator; __dict__ cost is amortized
    """The coordinator's table/tablet directory."""

    def __init__(self):
        self.epoch = 0
        self._tables_by_id: Dict[int, Table] = {}
        self._tables_by_name: Dict[str, Table] = {}
        self._tablets: Dict[Tuple[int, int], Tablet] = {}
        self._next_table_id = 1
        # Race-detection handle (debug mode; the coordinator installs
        # it).  The ``epoch`` counter is deliberately not tracked: it is
        # a single-step atomic increment, never read-modify-written
        # across a yield.
        self.race = NULL_SHARED

    # -- tables ---------------------------------------------------------

    def create_table(self, name: str, span: int,
                     server_ids: List[str]) -> Table:
        """Create a table of ``span`` tablets over ``server_ids``
        round-robin (the paper's uniform ServerSpan distribution)."""
        if name in self._tables_by_name:
            raise ValueError(f"table {name!r} already exists")
        if span < 1:
            raise ValueError(f"span must be >= 1, got {span}")
        if not server_ids:
            raise ValueError("no servers to place tablets on")
        self.race.write("tables")
        table = Table(self._next_table_id, name, span)
        self._next_table_id += 1
        self._tables_by_id[table.table_id] = table
        self._tables_by_name[name] = table
        for i in range(span):
            owner = server_ids[i % len(server_ids)]
            self._tablets[(table.table_id, i)] = Tablet(table.table_id, i,
                                                        [owner])
        self.epoch += 1
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and its tablets."""
        self.race.write("tables")
        table = self._tables_by_name.pop(name, None)
        if table is None:
            raise KeyError(f"no table {name!r}")
        del self._tables_by_id[table.table_id]
        for i in range(table.span):
            del self._tablets[(table.table_id, i)]
        self.epoch += 1

    def table(self, name: str) -> Optional[Table]:
        """Look a table up by name."""
        return self._tables_by_name.get(name)

    def table_by_id(self, table_id: int) -> Optional[Table]:
        """Look a table up by id."""
        return self._tables_by_id.get(table_id)

    # -- routing ----------------------------------------------------------

    def tablet_for_key(self, table_id: int, key: str) -> Tablet:
        """Route a key to its tablet (first hash level)."""
        table = self._tables_by_id.get(table_id)
        if table is None:
            raise KeyError(f"no table id {table_id}")
        index = key_hash(key) % table.span
        # Routing reads are optimistic by design: a stale route fails at
        # the server and the client refreshes (epoch protocol).
        if self.race.enabled:
            self.race.read(f"{table_id}.{index}", relaxed=True)
        return self._tablets[(table_id, index)]

    def tablets_of_server(self, server_id: str) -> List[Tuple[Tablet, int]]:
        """Every (tablet, shard_index) the server owns (optimistic scan)."""
        self.race.read("tables", relaxed=True)
        owned = []
        for tablet in self._tablets.values():
            for shard, owner in enumerate(tablet.shards):
                if owner == server_id:
                    owned.append((tablet, shard))
        return owned

    def all_tablets(self) -> List[Tablet]:
        """Every tablet of every table."""
        return list(self._tablets.values())

    def split_shard(self, tablet_id: Tuple[int, int], shard: int,
                    new_owners: List[str], status: str) -> None:
        """Split one shard of a tablet into ``len(new_owners)`` subshards
        (recovery partitioning).  Only unsplit tablets can be split
        further — recovered shards stay atomic in later recoveries."""
        self.race.write(f"{tablet_id[0]}.{tablet_id[1]}.{shard}")
        tablet = self._tablets[tablet_id]
        if tablet.shard_count == 1:
            tablet.shards = list(new_owners)
            tablet.statuses = [status] * len(new_owners)
        else:
            if len(new_owners) != 1:
                raise ValueError(
                    "a subshard cannot be split again; pass one owner")
            tablet.shards[shard] = new_owners[0]
            tablet.statuses[shard] = status
        self.epoch += 1

    def reassign_shard(self, tablet_id: Tuple[int, int], shard: int,
                       new_server: str,
                       status: str = TabletStatus.NORMAL) -> None:
        """Point one subshard at a new owner."""
        self.race.write(f"{tablet_id[0]}.{tablet_id[1]}.{shard}")
        tablet = self._tablets[tablet_id]
        tablet.shards[shard] = new_server
        tablet.statuses[shard] = status
        self.epoch += 1

    def set_shard_status(self, tablet_id: Tuple[int, int], shard: int,
                         status: str) -> None:
        """Change one subshard's serving status."""
        self.race.write(f"{tablet_id[0]}.{tablet_id[1]}.{shard}")
        self._tablets[tablet_id].statuses[shard] = status
        self.epoch += 1

    # -- client snapshots ----------------------------------------------------

    def snapshot(self) -> "TabletMapSnapshot":
        """An immutable copy for a client cache."""
        self.race.read("tables", relaxed=True)
        tablets = {tid: t.clone() for tid, t in self._tablets.items()}
        tables_by_name = dict(self._tables_by_name)
        tables_by_id = dict(self._tables_by_id)
        return TabletMapSnapshot(self.epoch, tables_by_name, tables_by_id,
                                 tablets)


@dataclass
class TabletMapSnapshot:
    """A client's cached view of the tablet map.

    ``membership_version`` is the coordinator's server-list epoch at
    snapshot time; clients stamp it onto data RPCs so a master can
    reject routes that predate the membership change that moved its
    tablets (see :class:`~repro.ramcloud.errors.StaleEpoch`).

    ``live_servers`` is the live server-id tuple (enlistment order) at
    snapshot time — EVENTUAL reads use it to pick a deterministic
    backup candidate for a key without any extra RNG draw.

    ``indexes`` maps a hidden index table's id to its
    :class:`~repro.ramcloud.indexing.IndexDescriptor`; index tablets
    (indexlets) route by key *range*, not hash, so clients must consult
    it before ``tablet_for_key``.  Empty unless indexes exist."""

    epoch: int
    tables_by_name: Dict[str, Table]
    tables_by_id: Dict[int, Table]
    tablets: Dict[Tuple[int, int], Tablet]
    membership_version: int = 0
    live_servers: Tuple[str, ...] = ()
    indexes: Dict[int, object] = field(default_factory=dict)

    def tablet_for_key(self, table_id: int, key: str) -> Tablet:
        """Route a key to its tablet in this snapshot (range-based for
        index tables, hash-based otherwise)."""
        table = self.tables_by_id.get(table_id)
        if table is None:
            raise KeyError(f"no table id {table_id}")
        if self.indexes:
            desc = self.indexes.get(table_id)
            if desc is not None:
                return self.tablets[(table_id, desc.indexlet_for(key))]
        index = key_hash(key) % table.span
        return self.tablets[(table_id, index)]
