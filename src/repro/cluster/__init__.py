"""Cluster deployment and experiment orchestration.

Builds simulated testbeds shaped like the paper's (§III-B): one
coordinator node, N server nodes running collocated master+backup
services (the PDU-metered nodes), and M client nodes; then runs
workloads and collects the paper's metrics.
"""

from repro.cluster.deployment import Cluster, ClusterSpec
from repro.cluster.experiment import (
    Aggregate,
    ExperimentResult,
    ExperimentSpec,
    repeat_experiment,
    run_experiment,
)
from repro.cluster.crash import (
    CrashExperimentResult,
    CrashExperimentSpec,
    run_crash_experiment,
)
from repro.cluster.durability import (
    DurabilityGapResult,
    DurabilityGapSpec,
    durability_gap_digest,
    run_durability_gap,
)
from repro.cluster.powercap import AdmissionThrottle, PowerCapController

__all__ = [
    "AdmissionThrottle",
    "Aggregate",
    "Cluster",
    "ClusterSpec",
    "PowerCapController",
    "CrashExperimentResult",
    "CrashExperimentSpec",
    "DurabilityGapResult",
    "DurabilityGapSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "durability_gap_digest",
    "repeat_experiment",
    "run_crash_experiment",
    "run_durability_gap",
    "run_experiment",
]
