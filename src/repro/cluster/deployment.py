"""Building the simulated testbed.

The paper reserves 131 Grid'5000 nodes: 40 PDU-equipped nodes for the
RAMCloud cluster, one coordinator node, 90 client nodes.  A
:class:`Cluster` builds the same topology at any size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.hardware.node import Node
from repro.hardware.specs import GRID5000_NANCY_NODE, MachineSpec
from repro.net.fabric import Fabric
from repro.powermgmt import PowerManager, PowerPolicy
from repro.ramcloud.client import RamCloudClient
from repro.ramcloud.config import CostModel, ServerConfig
from repro.ramcloud.coordinator import Coordinator
from repro.ramcloud.server import RamCloudServer
from repro.sim.distributions import RandomStream
from repro.sim.kernel import Simulator

__all__ = ["ClusterSpec", "Cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape and configuration of one deployment."""

    num_servers: int = 10
    num_clients: int = 10
    server_config: ServerConfig = field(default_factory=ServerConfig)
    cost_model: CostModel = field(default_factory=CostModel)
    machine: MachineSpec = GRID5000_NANCY_NODE
    seed: int = 1
    failure_detection: bool = False
    # Adaptive power management (repro.powermgmt, docs/POWER.md).  The
    # default policy (static governor, no cap) creates no controller
    # machinery at all, keeping paper reproductions bit-unchanged.
    power_policy: PowerPolicy = field(default_factory=PowerPolicy)

    def __post_init__(self):
        if self.num_servers < 1:
            raise ValueError("need at least one server")
        if self.num_clients < 0:
            raise ValueError("client count cannot be negative")
        rf = self.server_config.replication_factor
        if rf > 0 and self.num_servers < rf + 1:
            raise ValueError(
                f"replication factor {rf} needs at least {rf + 1} servers"
            )

    def with_(self, **overrides) -> "ClusterSpec":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


class Cluster:  # simlint: disable=PERF001 one per run; __dict__ cost is amortized
    """A running simulated deployment."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self.sim = Simulator()
        self.fabric = Fabric(self.sim)
        self.stream = RandomStream(spec.seed, "cluster")
        self._paused_servers: List[RamCloudServer] = []

        self.coordinator_node = Node(self.sim, spec.machine, "coord")
        self.fabric.attach(self.coordinator_node)
        self.coordinator = Coordinator(
            self.sim, self.fabric, self.coordinator_node,
            spec.server_config, spec.cost_model,
            RandomStream(spec.seed, "coordinator"),
        )

        self.server_nodes: List[Node] = []
        self.servers: List[RamCloudServer] = []
        for i in range(spec.num_servers):
            node = Node(self.sim, spec.machine, f"server{i}")
            self.fabric.attach(node)
            server = RamCloudServer(
                self.sim, self.fabric, node,
                spec.server_config, spec.cost_model, self.coordinator,
                RandomStream(spec.seed, f"server{i}"),
            )
            self.coordinator.enlist(server)
            self.server_nodes.append(node)
            self.servers.append(server)

        self.client_nodes: List[Node] = []
        self.clients: List[RamCloudClient] = []
        for i in range(spec.num_clients):
            node = Node(self.sim, spec.machine, f"client{i}")
            self.fabric.attach(node)
            self.client_nodes.append(node)
            self.clients.append(
                RamCloudClient(self.sim, node, self.coordinator,
                               stream=RandomStream(spec.seed,
                                                   f"client{i}:rpc")))

        # Power management: nothing at all is built for the default
        # policy — no manager objects, no streams, no throttle — so the
        # event schedule of every paper reproduction is untouched.
        self.power_policy = spec.power_policy
        self.power_managers: List[PowerManager] = []
        self.admission_throttle = None
        self.power_cap = None
        if not spec.power_policy.is_default:
            self._create_power_managers()
            if spec.power_policy.power_cap_watts is not None:
                self._create_power_cap(spec.power_policy)

        if spec.failure_detection:
            self.coordinator.start_failure_detector()

    def _create_power_managers(self) -> None:
        policy = self.power_policy
        for i, (node, server) in enumerate(zip(self.server_nodes,
                                               self.servers)):
            self.power_managers.append(PowerManager(
                self.sim, node, server, policy,
                RandomStream(self.spec.seed, f"powermgmt{i}")))

    def _create_power_cap(self, policy: PowerPolicy) -> None:
        from repro.cluster.powercap import (AdmissionThrottle,
                                            PowerCapController)
        self.admission_throttle = AdmissionThrottle(self.sim)
        self.power_cap = PowerCapController(
            self.sim, self.server_nodes, self.servers,
            self.admission_throttle, policy)

    # -- power management ---------------------------------------------------

    def set_governor(self, name: str, index: Optional[int] = None) -> None:
        """Switch the power governor at run time on every server node
        (or only ``index``).  Creates the per-node managers lazily if
        the cluster was built with the default policy — which is how a
        :class:`~repro.faults.schedule.SetGovernor` fault flips a
        static cluster into power-managed mode mid-run."""
        if not self.power_managers:
            # Lazily bring up managers under the *static* governor (a
            # no-op that changes nothing), then switch only the targets.
            self.power_policy = self.power_policy.with_(governor="static")
            self._create_power_managers()
        targets = (self.power_managers if index is None
                   else [self.power_managers[index]])
        for manager in targets:
            manager.set_governor(name)

    def set_power_cap(self, watts: Optional[float]) -> None:
        """Engage, move, or (``None``) lift the cluster power cap at
        run time (the :class:`~repro.faults.schedule.SetPowerCap`
        fault action)."""
        if watts is None:
            if self.power_cap is not None:
                self.power_cap.stop()
                self.power_cap = None
            if self.admission_throttle is not None:
                self.admission_throttle.rate = float("inf")
            return
        if self.power_cap is not None:
            self.power_cap.cap_watts = watts
            return
        self.power_policy = self.power_policy.with_(power_cap_watts=watts)
        self._create_power_cap(self.power_policy)

    # -- table management ---------------------------------------------------

    def create_table(self, name: str, span: Optional[int] = None,
                     tenant: Optional[str] = None) -> int:
        """Create a table directly at the coordinator (experiment setup,
        zero simulated time).  ``span`` defaults to the number of
        servers, the paper's ServerSpan setting.  With ``tenant`` the
        table lives in that tenant's namespace."""
        table = self.coordinator.create_table(name, span, tenant=tenant)
        return table.table_id

    def register_tenant(self, spec) -> None:
        """Register a :class:`~repro.ramcloud.tenancy.TenantSpec` at the
        coordinator (experiment setup, zero simulated time)."""
        self.coordinator.register_tenant(spec)

    def create_index(self, table_id: int, name: str, boundaries):
        """Create a secondary index at the coordinator (experiment
        setup, zero simulated time); returns its descriptor."""
        return self.coordinator.create_index(table_id, name, boundaries)

    def preload(self, table_id: int, num_records: int, record_size: int,
                key_fn=None) -> Dict[str, int]:
        """Bulk-load records through the masters' fast path (§III-C:
        "To run a workload, one needs to fill the data-store first.").

        Returns per-server record counts.  Zero simulated time; backup
        replica state is materialized, closed segments marked on disk.
        """
        if key_fn is None:
            key_fn = default_key
        per_server: Dict[str, List[Tuple[int, str, int]]] = {}
        tablet_map = self.coordinator.tablet_map
        for i in range(num_records):
            key = key_fn(i)
            tablet = tablet_map.tablet_for_key(table_id, key)
            per_server.setdefault(tablet.server_id, []).append(
                (table_id, key, record_size))
        counts = {}
        for server_id, items in per_server.items():
            server = self.coordinator.lookup_server(server_id)
            counts[server_id] = server.bulk_load(items)
        return counts

    def preload_indexed(self, table_id: int, desc, num_records: int,
                        record_size: int, key_fn=None,
                        secondary_fn=None) -> Dict[str, int]:
        """Bulk-load an indexed table: every record carries its
        secondary key, and the matching index entries are loaded into
        the indexlet owners' logs (the post-load state of an indexed
        YCSB run, at zero simulated time)."""
        from repro.ramcloud.indexing import encode_entry_key, secondary_key

        if key_fn is None:
            key_fn = default_key
        if secondary_fn is None:
            secondary_fn = secondary_key
        index_id = desc.index_id
        per_server: Dict[str, List] = {}
        tablet_map = self.coordinator.tablet_map
        for i in range(num_records):
            key = key_fn(i)
            secondary = secondary_fn(i)
            tablet = tablet_map.tablet_for_key(table_id, key)
            per_server.setdefault(tablet.server_id, []).append(
                (table_id, key, record_size,
                 ((index_id, secondary),)))
            entry_key = encode_entry_key(secondary, key)
            indexlet = desc.indexlet_for(entry_key)
            owner = tablet_map._tablets[(index_id, indexlet)].server_id
            per_server.setdefault(owner, []).append(
                (index_id, entry_key, 0))
        counts = {}
        for server_id, items in per_server.items():
            server = self.coordinator.lookup_server(server_id)
            counts[server_id] = server.bulk_load(items)
        return counts

    # -- elastic scale-up ---------------------------------------------------

    def add_server(self) -> RamCloudServer:
        """Bring a new server machine online mid-run (the scale-up half
        of §IX's coordinator-driven sizing).  The server enlists with
        the coordinator; call
        :meth:`~repro.ramcloud.coordinator.Coordinator.rebalance` to
        move load onto it."""
        index = len(self.server_nodes)
        node = Node(self.sim, self.spec.machine, f"server{index}")
        self.fabric.attach(node)
        server = RamCloudServer(
            self.sim, self.fabric, node,
            self.spec.server_config, self.spec.cost_model, self.coordinator,
            RandomStream(self.spec.seed, f"server{index}"),
        )
        self.coordinator.enlist(server)
        self.server_nodes.append(node)
        self.servers.append(server)
        if any(len(n.power.series) for n in self.server_nodes[:index]):
            node.start_metering()
        return server

    # -- power metering -------------------------------------------------------

    def start_metering(self, interval: float = 1.0) -> None:
        """Start the PDU sampling script on every *server* node (the
        paper meters the 40 PDU-equipped RAMCloud nodes, not clients).

        The paper samples at 1 Hz; scaled-down runs lasting well under a
        second should pass a finer ``interval``."""
        for node in self.server_nodes:
            node.start_metering(interval=interval)

    def stop_metering(self) -> None:
        """Stop every server node's PDU sampler."""
        for node in self.server_nodes:
            node.stop_metering()

    # -- failure injection -------------------------------------------------------

    def kill_server(self, index: Optional[int] = None) -> RamCloudServer:
        """Kill the RAMCloud process on one server node (random if
        ``index`` is None, like the paper's §VII methodology)."""
        live = [s for s in self.servers if not s.killed]
        if not live:
            raise RuntimeError("no live servers to kill")
        if index is None:
            victim = self.stream.choice(live)
        else:
            victim = self.servers[index]
            if victim.killed:
                raise ValueError(f"server {index} already killed")
        victim.kill()
        return victim

    def pause_server(self, index: Optional[int] = None) -> RamCloudServer:
        """Silence one server's NIC while its process keeps running —
        the network-silent-but-alive zombie ingredient (random live,
        unpaused victim if ``index`` is None)."""
        candidates = [s for s in self.servers
                      if not s.killed
                      and not self.fabric.is_paused(s.node.name)]
        if not candidates:
            raise RuntimeError("no live unpaused servers to pause")
        if index is None:
            victim = self.stream.choice(candidates)
        else:
            victim = self.servers[index]
            if victim.killed:
                raise ValueError(f"server {index} is dead, cannot pause")
        self.fabric.pause_node(victim.node.name)
        self._paused_servers.append(victim)
        return victim

    def resume_server(self, index: Optional[int] = None) -> RamCloudServer:
        """Wake a paused server's NIC (the earliest still-paused server
        if ``index`` is None)."""
        if index is None:
            paused = [s for s in self._paused_servers
                      if self.fabric.is_paused(s.node.name)]
            if not paused:
                raise RuntimeError("no paused servers to resume")
            victim = paused[0]
        else:
            victim = self.servers[index]
        self.fabric.resume_node(victim.node.name)
        self._paused_servers = [s for s in self._paused_servers
                                if s is not victim]
        return victim

    def inject_faults(self, schedule) -> "FaultInjector":
        """Arm a :class:`~repro.faults.schedule.FaultSchedule` against
        this cluster; returns the started injector (see its ``applied``
        log and ``killed_servers``)."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, schedule).start()

    # -- teardown -------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every long-lived service process (metering, failure
        detector, coordinator, server threads) so ``sim.run()`` can
        drain the schedule completely.  With ``REPRO_SIM_DEBUG=1`` the
        drain then asserts no event leaks — the end-state check the
        fault-scenario suite runs after every schedule."""
        self.stop_metering()
        for manager in self.power_managers:
            manager.stop()
        if self.power_cap is not None:
            self.power_cap.stop()
        self.coordinator.stop_service()
        for server in self.servers:
            if not server.killed:
                server.kill()

    # -- aggregate statistics ------------------------------------------------

    def total_ops_completed(self) -> int:
        """Operations served across all masters."""
        return sum(s.ops_completed for s in self.servers)

    def total_energy_joules(self) -> float:
        """Energy integral over every server node's power trace."""
        return sum(n.power.energy_joules() for n in self.server_nodes)

    def average_power_per_server(self) -> float:
        """Mean PDU reading across server nodes (metering required)."""
        values = [n.power.average_watts() for n in self.server_nodes
                  if len(n.power.series) > 0]
        if not values:
            raise RuntimeError("no power samples; call start_metering()")
        return sum(values) / len(values)

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation (to ``until``, or until idle)."""
        self.sim.run(until=until)


def default_key(i: int) -> str:
    """YCSB-style record keys."""
    return f"user{i}"
