"""Cluster-level power capping (docs/POWER.md).

Data centers provision power for the rack, not the node: when the
fleet approaches its budget, *something* must shed load.  RAMCloud has
no admission control of its own, but the paper's Fig. 13 shows the
lever that works — client-side rate limiting collapses both tail
latency and power draw.  The :class:`PowerCapController` closes that
loop: sample every server's power draw each ``cap_interval``, and when
the fleet exceeds ``power_cap_watts``, clamp the cluster-wide
:class:`AdmissionThrottle` that paces every YCSB client (the same
token-bucket slot arithmetic as ``target_ops_per_second``, but with a
rate the controller can move at run time).

Control law: proportional decrease, gentle multiplicative increase.
Over the cap, the admitted rate is scaled by ``cap / watts`` in one
step (power is near-affine in throughput, so this lands close to the
cap immediately); below ``cap - cap_hysteresis_watts``, the rate is
raised 5 % per tick until the cap — or the clients' natural demand —
binds again.  Inside the hysteresis band the controller holds still,
which is what keeps it from oscillating.

Determinism: the controller measures utilization from its own
``busy_core_seconds()`` snapshots (never ``cpu.mark()``, which belongs
to the PDU sampler) and draws no randomness at all.  It only exists
when a cap is configured, so uncapped runs carry no extra process,
event, or float.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.powermgmt.policy import PowerPolicy
from repro.sim.kernel import Interrupt, Process, Simulator
from repro.sim.monitor import TimeSeries
from repro.sim.racecheck import shared

__all__ = ["AdmissionThrottle", "PowerCapController"]


class AdmissionThrottle:
    """A cluster-wide token bucket with a rate the controller can move.

    Clients call :meth:`reserve` before each operation and sleep the
    returned delay; the controller assigns :attr:`rate` (ops/s, shared
    across all clients, ``inf`` = disengaged).  ``reserve`` never
    yields, so concurrent callers in one timestep serialize cleanly on
    the slot counter.
    """

    def __init__(self, sim: Simulator, name: str = "admission"):
        self.sim = sim
        self.name = name
        self.rate: float = math.inf
        self._next_slot = 0.0
        # rate is written by the controller process and read by every
        # client process; a stale read only mis-paces one operation by
        # one tick, so accesses are relaxed by design.
        self._race = shared(sim, f"throttle:{name}", obj=self, owner=self)

    def reserve(self) -> float:
        """Claim the next admission slot; returns seconds to wait."""
        self._race.read("rate", relaxed=True)
        if math.isinf(self.rate):
            return 0.0
        now = self.sim.now
        slot = self._next_slot if self._next_slot > now else now
        self._next_slot = slot + 1.0 / self.rate
        return slot - now

    def set_rate(self, rate: float) -> None:
        """Assign the admitted cluster rate (ops/s; ``inf`` disengages)."""
        if rate <= 0:
            raise ValueError(f"admission rate must be positive, got {rate}")
        self._race.write("rate", relaxed=True)
        self.rate = rate


class PowerCapController:
    """Holds the fleet's power draw at a cap by throttling admission."""

    #: Multiplicative increase applied per tick while under the band.
    INCREASE = 1.05
    #: Never throttle below this many ops/s per server (forward progress).
    MIN_RATE_PER_SERVER = 100.0

    def __init__(self, sim: Simulator, server_nodes, servers,
                 throttle: AdmissionThrottle, policy: PowerPolicy):
        if policy.power_cap_watts is None:
            raise ValueError("PowerCapController needs a power cap")
        self.sim = sim
        self.server_nodes = list(server_nodes)
        self.servers = list(servers)
        self.throttle = throttle
        self.policy = policy
        self.cap_watts = policy.power_cap_watts
        #: Fleet power as the controller measured it, one point per tick.
        self.watts_series = TimeSeries(name="powercap:fleet-watts")
        #: Admitted rate after each tick (inf while disengaged).
        self.rate_series = TimeSeries(name="powercap:rate")
        self._busy = [n.cpu.busy_core_seconds() for n in self.server_nodes]
        self._ops = sum(s.ops_completed for s in self.servers)
        self._last_time = sim.now
        self._process: Optional[Process] = sim.process(
            self._loop(), name="powercap:controller")

    def stop(self) -> None:
        """Halt the control loop (cluster shutdown)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("power cap controller stopped")
        self._process = None

    # ------------------------------------------------------------------

    def fleet_watts(self) -> float:
        """Fleet power over the window since the last call, from the
        controller's own busy-core-second snapshots (freq- and
        parked-core-aware; dead/powered-off nodes read zero)."""
        elapsed = self.sim.now - self._last_time
        total = 0.0
        for i, node in enumerate(self.server_nodes):
            busy = node.cpu.busy_core_seconds()
            if elapsed > 0:
                util = 100.0 * (busy - self._busy[i]) / (
                    elapsed * node.cpu.cores)
            else:
                util = node.cpu.utilization_since_mark()
            self._busy[i] = busy
            total += node.power.instantaneous_watts(util_pct=util)
        self._last_time = self.sim.now
        return total

    def _measured_ops_rate(self, elapsed: float) -> float:
        ops = sum(s.ops_completed for s in self.servers)
        rate = (ops - self._ops) / elapsed if elapsed > 0 else 0.0
        self._ops = ops
        return rate

    def _loop(self):
        interval = self.policy.cap_interval
        floor = self.MIN_RATE_PER_SERVER * max(1, len(self.servers))
        try:
            while True:
                yield self.sim.timeout(interval)
                watts = self.fleet_watts()
                measured = self._measured_ops_rate(interval)
                self.watts_series.record(self.sim.now, watts)
                rate = self.throttle.rate
                if watts > self.cap_watts:
                    if math.isinf(rate):
                        # Engage at the observed throughput, scaled to
                        # the cap (power ≈ affine in ops/s).
                        base = measured if measured > 0 else floor
                    else:
                        base = rate
                    rate = max(base * self.cap_watts / watts, floor)
                    self.throttle.set_rate(rate)
                elif (not math.isinf(rate)
                      and watts < self.cap_watts
                      - self.policy.cap_hysteresis_watts):
                    self.throttle.set_rate(rate * self.INCREASE)
                self.rate_series.record(self.sim.now, self.throttle.rate)
        except Interrupt:
            return
