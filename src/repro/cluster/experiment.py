"""Running one experiment configuration and collecting the paper's metrics.

Follows the paper's measurement discipline (§III):

* the data store is filled first (bulk preload);
* power metering starts "right before running the benchmark" and stops
  "after all clients finish";
* metrics: aggregated throughput (requests served per second), average
  power per server node, total energy consumed, energy efficiency
  (operations per joule), per-node CPU utilization, per-client latency;
* each reported value is an average over several seeded runs with error
  bars (:func:`repeat_experiment`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.deployment import Cluster, ClusterSpec
from repro.ramcloud.tenancy import TenantStats
from repro.sim.distributions import RandomStream
from repro.ycsb.client import YcsbClient
from repro.ycsb.stats import OperationStats
from repro.ycsb.workload import WorkloadSpec

__all__ = ["ExperimentSpec", "ExperimentResult", "run_experiment",
           "repeat_experiment", "Aggregate"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One cluster+workload configuration."""

    cluster: ClusterSpec
    workload: WorkloadSpec
    table_span: Optional[int] = None  # default: num_servers (ServerSpan)
    pdu_interval: float = 0.05  # finer than the paper's 1 Hz because our
    # scaled-down runs are shorter; energy totals use exact integrals.
    give_up_after: Optional[float] = None
    warmup_fraction: float = 0.0
    # Multi-tenant runs: one TenantSpec per tenant; each gets its own
    # namespaced "usertable" and the clients are assigned round-robin.
    # Empty (the default) builds the single shared table as always.
    tenants: Tuple = ()

    def with_(self, **overrides) -> "ExperimentSpec":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


@dataclass
class ExperimentResult:
    """Everything one run produces."""

    spec: ExperimentSpec
    total_ops: int = 0
    makespan: float = 0.0
    throughput: float = 0.0  # ops/second, aggregated over all clients
    avg_power_per_server: float = 0.0  # watts
    total_energy_joules: float = 0.0
    energy_efficiency: float = 0.0  # ops/joule
    cpu_util_per_node: Dict[str, float] = field(default_factory=dict)
    per_client_stats: List[OperationStats] = field(default_factory=list)
    client_errors: int = 0
    clients_gave_up: int = 0
    crashed: bool = False  # the paper's "experiments were always crashing"
    # Kernel events scheduled over the whole run (preload included) —
    # the work unit tools/bench_kernel.py divides wall time by.
    sim_events: int = 0
    # Runtime lockset race reports (debug mode only; execution order,
    # which is deterministic under a fixed seed).  Empty otherwise.
    race_reports: List[str] = field(default_factory=list)
    # Per-tenant SLA breakout (multi-tenant runs only): tenant name →
    # the dict form of :class:`~repro.ramcloud.tenancy.TenantStats`.
    # Empty on single-tenant runs, keeping their digests unchanged.
    per_tenant_stats: Dict[str, Dict[str, float]] = field(
        default_factory=dict)

    @property
    def cpu_util_min(self) -> float:
        """Least-loaded node's CPU percent (Table I's min)."""
        return min(self.cpu_util_per_node.values())

    @property
    def cpu_util_max(self) -> float:
        """Most-loaded node's CPU percent (Table I's max)."""
        return max(self.cpu_util_per_node.values())

    @property
    def cpu_util_avg(self) -> float:
        """Mean CPU percent across server nodes."""
        values = list(self.cpu_util_per_node.values())
        return sum(values) / len(values)

    def mean_latency(self) -> float:
        """Mean op latency pooled over every client."""
        merged = []
        for stats in self.per_client_stats:
            merged.extend(stats.all_latencies().latencies)
        if not merged:
            raise ValueError("no latency samples")
        return sum(merged) / len(merged)

    def mean_latency_or_zero(self) -> float:
        """:meth:`mean_latency`, 0.0 when the run recorded no samples
        (a crashed run) — the aggregate-friendly variant."""
        try:
            return self.mean_latency()
        except ValueError:
            return 0.0


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Build the cluster, preload, run all clients, collect metrics."""
    cluster = Cluster(spec.cluster)
    workload = spec.workload
    indexed = (workload.index_scan_proportion > 0
               or workload.index_lookup_proportion > 0
               or workload.num_indexlets > 0)
    if spec.tenants:
        for tenant in spec.tenants:
            cluster.register_tenant(tenant)
        table_ids = [cluster.create_table("usertable", span=spec.table_span,
                                          tenant=tenant.name)
                     for tenant in spec.tenants]
    else:
        table_ids = [cluster.create_table("usertable", span=spec.table_span)]
    index_ids: List[Optional[int]] = []
    for table_id in table_ids:
        if indexed:
            from repro.ramcloud.indexing import uniform_boundaries
            desc = cluster.create_index(
                table_id, "sec",
                uniform_boundaries(workload.num_records,
                                   max(1, workload.num_indexlets)))
            cluster.preload_indexed(table_id, desc, workload.num_records,
                                    workload.record_size)
            index_ids.append(desc.index_id)
        else:
            cluster.preload(table_id, workload.num_records,
                            workload.record_size)
            index_ids.append(None)

    clients = []
    for i, rc in enumerate(cluster.clients):
        stream = RandomStream(spec.cluster.seed, f"ycsb{i}")
        slot = i % len(table_ids)
        clients.append(YcsbClient(cluster.sim, rc, table_ids[slot],
                                  spec.workload, stream,
                                  give_up_after=spec.give_up_after,
                                  index_id=index_ids[slot]))

    for node in cluster.server_nodes:
        node.start_metering(interval=spec.pdu_interval)

    start = cluster.sim.now
    start_busy = {n.name: n.cpu.busy_core_seconds()
                  for n in cluster.server_nodes}
    start_disk = {n.name: n.disk.busy_seconds for n in cluster.server_nodes}

    procs = [cluster.sim.process(c.run(), name=f"ycsb:{i}")
             for i, c in enumerate(clients)]
    done = cluster.sim.all_of(procs)
    while not done.triggered:
        cluster.sim.step()
    if not done.ok:
        raise done.value
    end = cluster.sim.now
    cluster.stop_metering()

    makespan = max(end - start, 1e-12)
    result = ExperimentResult(spec=spec)
    result.sim_events = cluster.sim._seq
    if cluster.sim._sanitizer is not None:
        result.race_reports = list(cluster.sim._sanitizer.races.reports)
    result.makespan = makespan
    result.per_client_stats = [c.stats for c in clients]
    result.total_ops = sum(c.stats.total_ops for c in clients)
    result.throughput = result.total_ops / makespan
    result.client_errors = sum(c.stats.errors for c in clients)
    result.clients_gave_up = sum(1 for c in clients if c.gave_up)
    result.crashed = result.clients_gave_up > 0

    power_spec = spec.cluster.machine.power
    cores = spec.cluster.machine.cpu.cores
    total_energy = 0.0
    watts = []
    for node in cluster.server_nodes:
        busy = node.cpu.busy_core_seconds() - start_busy[node.name]
        util_pct = 100.0 * busy / (makespan * cores)
        disk_busy = node.disk.busy_seconds - start_disk[node.name]
        avg_watts = (power_spec.watts(min(util_pct, 100.0))
                     + power_spec.disk_active_watts
                     * min(disk_busy / makespan, 1.0))
        watts.append(avg_watts)
        total_energy += avg_watts * makespan
        result.cpu_util_per_node[node.name] = util_pct
    result.avg_power_per_server = sum(watts) / len(watts)
    result.total_energy_joules = total_energy
    result.energy_efficiency = (result.total_ops / total_energy
                                if total_energy > 0 else 0.0)

    if spec.tenants:
        tenant_of_table = cluster.coordinator.tenant_of_table
        for slot, tenant in enumerate(spec.tenants):
            tstats = TenantStats()
            merged = []
            for i, client in enumerate(clients):
                if i % len(table_ids) != slot:
                    continue
                tstats.ops += client.stats.total_ops
                tstats.client_errors += client.stats.errors
                merged.extend(client.stats.all_latencies().latencies)
            if merged:
                merged.sort()
                rank = max(1, math.ceil(0.99 * len(merged)))
                tstats.p99_latency = merged[rank - 1]
                tstats.mean_latency = sum(merged) / len(merged)
            tstats.bytes_moved = tstats.ops * workload.record_size
            # Dispatch-path drops at the masters, summed over the
            # tenant's tables (base tables and their indexes).
            tstats.throttle_drops = sum(
                throttle.drops
                for server in cluster.servers
                for tid, throttle in server._tenant_throttles.items()
                if tenant_of_table.get(tid) == tenant.name)
            result.per_tenant_stats[tenant.name] = tstats.as_dict()
    return result


@dataclass
class Aggregate:
    """Mean and error bar over repeated seeded runs, per metric."""

    mean: float
    stddev: float
    values: Tuple[float, ...]

    @classmethod
    def of(cls, values: Sequence[float]) -> "Aggregate":
        """Aggregate a list of per-seed values."""
        if not values:
            raise ValueError("no values to aggregate")
        mean = sum(values) / len(values)
        if len(values) > 1:
            var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        else:
            var = 0.0
        return cls(mean=mean, stddev=math.sqrt(var), values=tuple(values))

    def __format__(self, fmt: str) -> str:
        return f"{format(self.mean, fmt)}±{format(self.stddev, fmt)}"


def repeat_experiment(spec: ExperimentSpec, seeds: Sequence[int]
                      ) -> Tuple[Dict[str, Aggregate], List[ExperimentResult]]:
    """Run one configuration once per seed (the paper averages 5 runs);
    returns aggregates over the headline metrics plus the raw results."""
    results = []
    for seed in seeds:
        run_spec = spec.with_(cluster=spec.cluster.with_(seed=seed))
        results.append(run_experiment(run_spec))
    metrics = {
        "throughput": Aggregate.of([r.throughput for r in results]),
        "avg_power_per_server": Aggregate.of(
            [r.avg_power_per_server for r in results]),
        "total_energy_joules": Aggregate.of(
            [r.total_energy_joules for r in results]),
        "energy_efficiency": Aggregate.of(
            [r.energy_efficiency for r in results]),
        "makespan": Aggregate.of([r.makespan for r in results]),
        "mean_latency": Aggregate.of(
            [r.mean_latency_or_zero() for r in results]),
    }
    return metrics, results
