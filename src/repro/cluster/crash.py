"""Crash-recovery experiment runner (paper §VII).

Methodology, following the paper: build a cluster with failure
detection on, insert data, start the PDU scripts, run idle (or with
foreground clients) while a fault schedule plays out — by default a
one-entry :meth:`~repro.faults.schedule.FaultSchedule.single_crash`
killing one server at ``kill_at``, but any schedule (partitions,
degraded disks, correlated crashes) can be passed via ``faults`` — and
record:

* the recovery time and per-phase statistics (Fig. 11a),
* 1 Hz cluster-average CPU and per-node power timelines (Fig. 9a/9b),
* aggregate disk read/write MB/s (Fig. 12),
* per-operation latency of foreground clients (Fig. 10),
* per-node energy during the recovery window (Fig. 11b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.deployment import Cluster, ClusterSpec
from repro.faults.schedule import FaultSchedule
from repro.ramcloud.coordinator import RecoveryStats, RepairStats
from repro.sim.distributions import RandomStream
from repro.sim.monitor import TimeSeries
from repro.ycsb.client import YcsbClient
from repro.ycsb.workload import WorkloadSpec

__all__ = ["CrashExperimentSpec", "CrashExperimentResult",
           "run_crash_experiment"]


@dataclass(frozen=True)
class CrashExperimentSpec:
    """One crash-recovery run."""

    cluster: ClusterSpec
    num_records: int
    record_size: int
    kill_at: float = 60.0
    run_until: float = 240.0
    sample_interval: float = 1.0
    # Index of the server to kill; None = random (paper's default).
    victim_index: Optional[int] = None
    # Optional foreground workload (Fig. 10's two clients).  One YCSB
    # client per cluster client node.
    foreground: Optional[WorkloadSpec] = None
    # If set, foreground client 0 only requests keys owned by the victim
    # and client 1 only requests live keys (Fig. 10's setup).  Requires
    # victim_index.
    split_clients_by_victim: bool = False
    # Custom fault schedule; None = the paper's single kill at
    # ``kill_at`` (of ``victim_index``, random if that is None too).
    faults: Optional[FaultSchedule] = None


@dataclass
class CrashExperimentResult:
    """Timelines and statistics from one crash-recovery run."""
    spec: CrashExperimentSpec
    recovery: Optional[RecoveryStats] = None
    crashed_server: str = ""
    # One RepairStats per server eviction: how many segment replicas
    # the death cost, how far replication dropped, and how long the
    # surviving masters took to restore the replication factor.
    repairs: List[RepairStats] = field(default_factory=list)
    # 1 Hz timelines.
    cluster_cpu: TimeSeries = field(default_factory=lambda: TimeSeries("cpu%"))
    under_replicated: TimeSeries = field(
        default_factory=lambda: TimeSeries("under-replicated segments"))
    disk_read_mbps: TimeSeries = field(
        default_factory=lambda: TimeSeries("read MB/s"))
    disk_write_mbps: TimeSeries = field(
        default_factory=lambda: TimeSeries("write MB/s"))
    per_node_power: Dict[str, TimeSeries] = field(default_factory=dict)
    # Foreground client latency samples [(time, latency)].
    client_latencies: List[List[Tuple[float, float]]] = field(
        default_factory=list)
    # The injector's deterministic (time, description) applied-fault log.
    fault_log: List[Tuple[float, str]] = field(default_factory=list)
    # Runtime lockset race reports (debug mode only; execution order,
    # which is deterministic under a fixed seed).  Empty otherwise.
    race_reports: List[str] = field(default_factory=list)

    @property
    def recovery_time(self) -> Optional[float]:
        """Recovery duration, or None if it never completed."""
        return self.recovery.duration if self.recovery else None

    @property
    def repair_time(self) -> Optional[float]:
        """Time from the first eviction to full re-replication, or None
        if no eviction happened or repair never completed."""
        if not self.repairs:
            return None
        return self.repairs[0].duration

    def avg_power_during_recovery(self) -> float:
        """Average per-node power over the recovery window, survivors
        only (the victim's RAMCloud process is dead)."""
        if self.recovery is None or self.recovery.finished_at is None:
            raise ValueError("no completed recovery in this run")
        start, end = self.recovery.started_at, self.recovery.finished_at
        values = []
        for name, series in self.per_node_power.items():
            if name == self.crashed_server:
                continue
            window = series.window(start, end)
            if len(window):
                values.append(window.mean())
        return sum(values) / len(values)

    def energy_per_node_during_recovery(self) -> float:
        """Joules consumed by an average surviving node during recovery
        (Fig. 11b reports a single node's total)."""
        if self.recovery is None or self.recovery.finished_at is None:
            raise ValueError("no completed recovery in this run")
        return self.avg_power_during_recovery() * self.recovery.duration


def _victim_key_split(cluster: Cluster, table_id: int, victim, num_records: int):
    """Partition preloaded keys into (victim-owned, live) lists."""
    victim_keys, live_keys = [], []
    victim_owned = set(victim.hashtable.keys_for_table(table_id))
    for i in range(num_records):
        key = f"user{i}"
        (victim_keys if key in victim_owned else live_keys).append(key)
    return victim_keys, live_keys


class _PinnedKeyChooser:
    """Cycles over a fixed key list (Fig. 10's targeted clients)."""

    def __init__(self, keys: List[str]):
        if not keys:
            raise ValueError("empty key list")
        self._keys = keys
        self._i = 0

    def next_key(self) -> str:
        """The next key in the pinned cycle."""
        key = self._keys[self._i % len(self._keys)]
        self._i += 1
        return key


def run_crash_experiment(spec: CrashExperimentSpec) -> CrashExperimentResult:
    """Execute one §VII-style crash experiment (see module docstring)."""
    cluster = Cluster(spec.cluster.with_(failure_detection=True))
    result = CrashExperimentResult(spec=spec)
    table_id = cluster.create_table("usertable")
    cluster.preload(table_id, spec.num_records, spec.record_size)

    for node in cluster.server_nodes:
        node.start_metering(interval=spec.sample_interval)
        result.per_node_power[node.name] = node.power.series

    # Timeline sampler: cluster-average CPU and aggregate disk I/O.
    state = {
        "busy": {n.name: n.cpu.busy_core_seconds()
                 for n in cluster.server_nodes},
        "io": {n.name: n.disk.io_counters() for n in cluster.server_nodes},
    }
    cores = spec.cluster.machine.cpu.cores

    def sampler():
        while True:
            yield cluster.sim.timeout(spec.sample_interval)
            now = cluster.sim.now
            cpu_total = 0.0
            read_delta = write_delta = 0
            for node in cluster.server_nodes:
                busy = node.cpu.busy_core_seconds()
                cpu_total += (busy - state["busy"][node.name])
                state["busy"][node.name] = busy
                reads, writes = node.disk.io_counters()
                old_r, old_w = state["io"][node.name]
                read_delta += reads - old_r
                write_delta += writes - old_w
                state["io"][node.name] = (reads, writes)
            n = len(cluster.server_nodes)
            interval = spec.sample_interval
            result.cluster_cpu.record(
                now, 100.0 * cpu_total / (n * cores * interval))
            result.disk_read_mbps.record(
                now, read_delta / interval / (1024 * 1024))
            result.disk_write_mbps.record(
                now, write_delta / interval / (1024 * 1024))
            result.under_replicated.record(
                now, cluster.coordinator.under_replicated_total())

    cluster.sim.process(sampler(), name="crash-sampler")

    # Foreground clients (Fig. 10).
    clients: List[YcsbClient] = []
    if spec.foreground is not None:
        for i, rc in enumerate(cluster.clients):
            stream = RandomStream(spec.cluster.seed, f"fg{i}")
            clients.append(YcsbClient(cluster.sim, rc, table_id,
                                      spec.foreground, stream))

    # The victim must be decided before clients start if we pin keys.
    victim = (cluster.servers[spec.victim_index]
              if spec.victim_index is not None else None)
    if spec.split_clients_by_victim:
        if victim is None:
            raise ValueError("split_clients_by_victim needs victim_index")
        if len(clients) < 2:
            raise ValueError("split_clients_by_victim needs >= 2 clients")
        victim_keys, live_keys = _victim_key_split(
            cluster, table_id, victim, spec.num_records)
        clients[0].keys = _PinnedKeyChooser(victim_keys)
        for extra in clients[1:]:
            extra.keys = _PinnedKeyChooser(live_keys)

    for i, client in enumerate(clients):
        cluster.sim.process(client.run(), name=f"fg-client{i}")

    # The crash (or any richer fault sequence) is a schedule over the
    # repro.faults layer; the paper's methodology is the one-entry case.
    schedule = spec.faults
    if schedule is None:
        schedule = FaultSchedule.single_crash(spec.kill_at,
                                              spec.victim_index)
    injector = cluster.inject_faults(schedule)

    # Run until every recovery completes (plus a settling tail) or the
    # hard cap — not always to run_until, which would burn simulated
    # hours on long-tailed configurations.
    while cluster.sim.now < spec.run_until:
        cluster.run(until=min(spec.run_until, cluster.sim.now + 5.0))
        recoveries = cluster.coordinator.recoveries
        if (recoveries
                and all(r.finished_at is not None for r in recoveries)
                and cluster.sim.now >= spec.kill_at):
            tail = min(spec.run_until,
                       max(r.finished_at for r in recoveries) + 10.0)
            if cluster.sim.now < tail:
                cluster.run(until=tail)
            break

    if injector.killed_servers:
        result.crashed_server = injector.killed_servers[0].server_id
    if cluster.coordinator.recoveries:
        result.recovery = cluster.coordinator.recoveries[0]
    result.repairs = list(cluster.coordinator.repairs)
    result.fault_log = list(injector.applied)
    if cluster.sim._sanitizer is not None:
        result.race_reports = list(cluster.sim._sanitizer.races.reports)
    for client in clients:
        result.client_latencies.append(
            client.stats.all_latencies().samples)
    cluster.stop_metering()
    return result
