"""Measured crash-loss guarantees per consistency level.

The tunable-consistency work (docs/CONSISTENCY.md) changes *what an
acknowledgement promises*; this harness measures the promise instead of
asserting it.  A cluster runs scripted writers at one
:mod:`~repro.ramcloud.consistency` level, a fault schedule crashes a
master at a chosen point, recovery runs to completion, and a
verification phase reads back **every acknowledged write**:

* ``SYNC_RF`` must report zero acknowledged-write loss for every crash
  schedule — the ack waited for all RF backups, so the durable prefix
  covers it (tests enforce this exactly);
* ``ASYNC_BOUNDED`` / ``EVENTUAL`` may lose the acknowledged-but-
  unreplicated tail (at most one staleness bound's worth), and the
  harness counts precisely those entries;
* observed replication staleness is reported against the configured
  bound — while the master lives, it must never be exceeded.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.cluster.deployment import Cluster, ClusterSpec
from repro.faults.schedule import FaultSchedule
from repro.net.rpc import RpcTimeout
from repro.ramcloud.consistency import SYNC_RF, validate_level
from repro.ramcloud.errors import ObjectDoesntExist

__all__ = ["DurabilityGapSpec", "DurabilityGapResult",
           "run_durability_gap", "durability_gap_digest"]


@dataclass(frozen=True)
class DurabilityGapSpec:
    """One crash-loss measurement run."""

    cluster: ClusterSpec
    level: str = SYNC_RF
    writes_per_client: int = 150
    record_size: int = 512
    # Writers pace themselves so the crash lands mid-stream (an idle
    # cluster has no acknowledged-but-unreplicated tail to lose).
    write_interval: float = 0.004
    crash_at: float = 0.25
    victim_index: int = 0
    run_until: float = 120.0
    # Custom schedule; None = the single crash above.  Richer schedules
    # (double crashes, partitions around the kill) ride the same
    # verification phase.
    faults: Optional[FaultSchedule] = None

    def __post_init__(self):
        validate_level(self.level)
        if self.writes_per_client < 1:
            raise ValueError("need at least one write per client")
        if self.write_interval < 0:
            raise ValueError("write interval cannot be negative")
        if self.cluster.num_clients < 1:
            raise ValueError("durability gap needs at least one writer")

    def with_(self, **overrides) -> "DurabilityGapSpec":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


@dataclass
class DurabilityGapResult:
    """What the acknowledgements were worth."""

    spec: DurabilityGapSpec
    # Every (key, version) a writer saw acknowledged, in ack order.
    acked: List[Tuple[str, int]] = field(default_factory=list)
    # The acknowledged writes the verification phase could not read
    # back at (or past) their acknowledged version.
    lost: List[Tuple[str, int]] = field(default_factory=list)
    crashed_servers: List[str] = field(default_factory=list)
    recovery_duration: Optional[float] = None
    # Highest replication staleness any *surviving* flush observed
    # (seconds between an async ack and its batch landing on backups).
    max_observed_staleness: float = 0.0
    staleness_bound: float = 0.0
    async_writes_acked: int = 0
    fault_log: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def acked_writes(self) -> int:
        """Acknowledged writes issued before verification."""
        return len(self.acked)

    @property
    def acknowledged_write_loss(self) -> int:
        """Writes the system confirmed and then lost — the headline."""
        return len(self.lost)


def run_durability_gap(spec: DurabilityGapSpec) -> DurabilityGapResult:
    """Execute one crash-loss run (see module docstring)."""
    cluster = Cluster(spec.cluster.with_(failure_detection=True))
    result = DurabilityGapResult(
        spec=spec,
        staleness_bound=spec.cluster.server_config.staleness_bound_seconds)
    table_id = cluster.create_table("usertable")
    sim = cluster.sim

    def writer(wid: int):
        rc = cluster.clients[wid]
        yield from rc.refresh_map()
        for seq in range(spec.writes_per_client):
            key = f"d{wid}.{seq}"
            try:
                version = yield from rc.write(table_id, key,
                                              spec.record_size,
                                              level=spec.level)
            except RpcTimeout:
                # Gave up mid-recovery (bounded retries); an
                # unacknowledged write carries no promise to verify.
                continue
            result.acked.append((key, version))
            if spec.write_interval > 0:
                yield sim.timeout(spec.write_interval)

    for wid in range(spec.cluster.num_clients):
        sim.process(writer(wid), name=f"gap-writer{wid}")

    schedule = spec.faults
    if schedule is None:
        schedule = FaultSchedule.single_crash(spec.crash_at,
                                              spec.victim_index)
    injector = cluster.inject_faults(schedule)

    # Run until every triggered recovery completes (plus a settling
    # tail for repair and the writers' own retries), or the hard cap.
    while sim.now < spec.run_until:
        cluster.run(until=min(spec.run_until, sim.now + 5.0))
        recoveries = cluster.coordinator.recoveries
        if recoveries and all(r.finished_at is not None
                              for r in recoveries):
            tail = min(spec.run_until,
                       max(r.finished_at for r in recoveries) + 5.0)
            if sim.now < tail:
                cluster.run(until=tail)
            break

    # Survivor-side staleness: the harvest must exclude nothing — a
    # crashed master's counter still reports what it observed while
    # alive, which is exactly the "while the master lives" guarantee.
    for server in cluster.servers:
        if server.max_observed_staleness > result.max_observed_staleness:
            result.max_observed_staleness = server.max_observed_staleness
        result.async_writes_acked += server.async_writes_acked

    # Verification: read back every acknowledged write through a fresh
    # retry budget.  Anything missing or older than its acknowledged
    # version was confirmed to a client and then lost.
    verifier = cluster.clients[0]
    saved_retries = verifier.max_retries
    verifier.max_retries = 40

    def verify():
        yield from verifier.refresh_map()
        for key, version in result.acked:
            try:
                _value, got, _size = yield from verifier.read(table_id, key)
            except ObjectDoesntExist:
                result.lost.append((key, version))
                continue
            if got < version:
                result.lost.append((key, version))

    sim.run_process(sim.process(verify(), name="gap-verify"),
                    until=sim.now + 60.0)
    verifier.max_retries = saved_retries

    result.crashed_servers = [s.server_id for s in injector.killed_servers]
    if cluster.coordinator.recoveries:
        result.recovery_duration = cluster.coordinator.recoveries[0].duration
    result.fault_log = list(injector.applied)
    return result


def durability_gap_digest(result: DurabilityGapResult) -> str:
    """Rerun-identity digest of everything a crash-loss run measured."""
    h = hashlib.sha256()
    h.update(repr((
        result.spec.level,
        tuple(result.acked),
        tuple(result.lost),
        tuple(result.crashed_servers),
        result.recovery_duration,
        result.max_observed_staleness,
        result.async_writes_acked,
        tuple(result.fault_log),
    )).encode())
    return h.hexdigest()
