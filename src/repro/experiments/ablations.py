"""§IX — design-choice ablations the paper discusses.

* **Segment size** (§IX "Faster data reconstruction?"): tuning the
  segment size from 1 to 32 MB; the paper finds 8 MB (RAMCloud's
  hard-coded value) gives the best recovery time on their HDD machines.
* **Worker threads** (§IX "Adapting the degree of concurrency?"):
  "Sometimes having more threads than needed can lead to useless
  context switching" — update-heavy suffers with more workers while
  read-only benefits.
* **Relaxed consistency** (§IX "Tuning the consistency-level?"):
  answering the client without waiting for backup acknowledgements.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cluster import (
    ClusterSpec,
    CrashExperimentSpec,
    ExperimentSpec,
    repeat_experiment,
    run_crash_experiment,
)
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_A, WORKLOAD_C

__all__ = ["run_segment_size_ablation", "run_worker_threads_ablation",
           "run_async_replication_ablation"]


def run_segment_size_ablation(scale: Scale = DEFAULT,
                              segment_mbs: Sequence[int] = (1, 2, 8, 32),
                              servers: int = 9, rf: int = 3,
                              ) -> ComparisonTable:
    """Recovery time vs segment size (paper: 8 MB is best on HDDs —
    smaller segments parallelize better but pay a seek per segment)."""
    table = ComparisonTable(
        "§IX segment size", f"recovery time vs segment size "
        f"({servers} servers, RF {rf})")
    measured: Dict[int, float] = {}
    for seg_mb in segment_mbs:
        spec = CrashExperimentSpec(
            cluster=ClusterSpec(
                num_servers=servers, num_clients=0,
                server_config=ServerConfig(segment_size=seg_mb * MB,
                                           replication_factor=rf),
                seed=3),
            num_records=(scale.recovery_bytes_per_server * servers
                         // scale.recovery_record_size),
            record_size=scale.recovery_record_size,
            kill_at=10.0,
            run_until=10.0 + 60.0 + 90.0 * rf,
        )
        result = run_crash_experiment(spec)
        duration = result.recovery_time
        measured[seg_mb] = duration
        table.add(f"{seg_mb} MB segments", None, duration, " s")
    if 8 in measured:
        best = min(measured, key=measured.get)
        table.note(f"paper: 8 MB gives the best recovery times on HDD "
                   f"machines; our best is {best} MB")
    return table


def run_worker_threads_ablation(scale: Scale = DEFAULT,
                                worker_counts: Sequence[int] = (1, 2, 3, 6),
                                servers: int = 2, clients: int = 24,
                                ) -> ComparisonTable:
    """Throughput of read-only and update-heavy vs worker thread count."""
    table = ComparisonTable(
        "§IX worker threads", f"throughput vs servicing threads "
        f"({servers} servers, {clients} clients)")
    for name, workload in (("C (read-only)", WORKLOAD_C),
                           ("A (update-heavy)", WORKLOAD_A)):
        for workers in worker_counts:
            spec = ExperimentSpec(
                cluster=ClusterSpec(
                    num_servers=servers, num_clients=clients,
                    server_config=ServerConfig(replication_factor=0,
                                               worker_threads=workers)),
                workload=workload.scaled(num_records=scale.num_records,
                                         ops_per_client=scale.ops_per_client),
            )
            metrics, _r = repeat_experiment(spec, scale.seeds[:1])
            table.add(f"workload {name} / {workers} workers", None,
                      metrics["throughput"].mean / 1000.0, "K")
    table.note("the optimal thread count depends on the workload "
               "(Finding 2's discussion): reads want more threads, "
               "updates serialize anyway")
    return table


def run_async_replication_ablation(scale: Scale = DEFAULT,
                                   rf: int = 4, servers: int = 20,
                                   clients: int = 10) -> ComparisonTable:
    """Strong vs relaxed consistency: answer the client without waiting
    for backup acks (§IX 'Tuning the consistency-level?').

    Measured in Fig. 5's latency-bound regime (few clients, high RF),
    where the ack chain sits on every update's critical path; at
    saturation the waits overlap with other requests and the gain
    shrinks — which is itself a finding worth keeping in mind.
    """
    table = ComparisonTable(
        "§IX consistency", f"workload A with RF {rf}: synchronous vs "
        "asynchronous replication")
    results = {}
    for label, async_repl in (("synchronous (wait for acks)", False),
                              ("asynchronous (no ack wait)", True)):
        spec = ExperimentSpec(
            cluster=ClusterSpec(
                num_servers=servers, num_clients=clients,
                server_config=ServerConfig(replication_factor=rf,
                                           async_replication=async_repl)),
            workload=WORKLOAD_A.scaled(num_records=scale.num_records,
                                       ops_per_client=scale.ops_per_client),
        )
        metrics, _r = repeat_experiment(spec, scale.seeds[:1])
        results[async_repl] = metrics
        table.add(f"{label}: throughput", None,
                  metrics["throughput"].mean / 1000.0, "K")
        table.add(f"{label}: energy efficiency", None,
                  metrics["energy_efficiency"].mean, " op/J")
    speedup = (results[True]["throughput"].mean
               / results[False]["throughput"].mean)
    table.add("throughput gain from relaxing consistency", None, speedup,
              "x")
    table.note("the paper predicts this gain but leaves it as future "
               "work; it trades away consistency under master failures")
    return table


def main():  # pragma: no cover - console entry point
    from repro.experiments.scale import active_scale
    scale = active_scale()
    print(run_worker_threads_ablation(scale).render())
    print()
    print(run_async_replication_ablation(scale).render())
    print()
    print(run_segment_size_ablation(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
