"""Extension — the consistency/durability frontier.

The paper measures RAMCloud's write path only at full synchronous
replication (§VI: every ack waits for RF backups).  The tunable
consistency levels (docs/CONSISTENCY.md) expose the frontier the paper
could not see: what does each notch of relaxed durability buy in
latency, throughput and energy efficiency — and what exactly does a
crash cost at that notch?

Two tables:

* :func:`run_consistency_frontier` — workload A at each level on the
  same cluster: throughput, mean op latency, ops/joule;
* :func:`run_durability_gap_table` — the measured crash-loss guarantee
  per level (the :mod:`repro.cluster.durability` harness): acked
  writes, acked-write loss, observed staleness vs the bound, recovery
  time.

The frontier grid is registered in ``SWEEP_CELLS``/``SWEEP_PLANS`` so
``tools/sweep.py frontier`` fans it out across workers with the same
serial-equivalence digests as every other sweep.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.cluster import (
    ClusterSpec,
    DurabilityGapSpec,
    ExperimentSpec,
    repeat_experiment,
    run_durability_gap,
)
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.experiments.sweep import (
    SweepPlan,
    SweepPoint,
    SweepReport,
    outcome_from_experiment,
)
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.consistency import LEVELS
from repro.ycsb.workload import WORKLOAD_A

__all__ = ["run_consistency_frontier", "run_durability_gap_table",
           "frontier_sweep_plan"]


def _frontier_spec(level: str, rf: int, servers: int, clients: int,
                   scale: Scale) -> ExperimentSpec:
    return ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=clients,
            server_config=ServerConfig(replication_factor=rf,
                                       default_consistency=level)),
        workload=WORKLOAD_A.scaled(num_records=scale.num_records,
                                   ops_per_client=scale.ops_per_client),
        give_up_after=5.0,
    )


def _frontier_cell(params: Dict[str, object], seed: int, scale: Scale):
    """Sweep cell runner: one (level, rf, seed) frontier point."""
    from repro.cluster import run_experiment
    spec = _frontier_spec(str(params["level"]), int(params["rf"]),
                          int(params["servers"]), int(params["clients"]),
                          scale)
    spec = spec.with_(cluster=spec.cluster.with_(seed=seed))
    return outcome_from_experiment(run_experiment(spec))


def frontier_sweep_plan(scale: Scale = DEFAULT,
                        seeds: Optional[Sequence[int]] = None,
                        levels: Sequence[str] = LEVELS,
                        rfs: Sequence[int] = (2,),
                        servers: int = 10,
                        clients: int = 10) -> SweepPlan:
    """The consistency frontier grid as a :class:`SweepPlan`."""
    points = tuple(
        SweepPoint.of(f"{level} / RF {rf}",
                      level=level, rf=rf, servers=servers, clients=clients)
        for level in levels for rf in rfs)
    return SweepPlan("frontier", points, tuple(seeds or scale.seeds), scale)


SWEEP_CELLS = {"frontier": _frontier_cell}
SWEEP_PLANS = {"frontier": frontier_sweep_plan}


def run_consistency_frontier(scale: Scale = DEFAULT,
                             levels: Sequence[str] = LEVELS,
                             rf: int = 2,
                             servers: int = 10,
                             clients: int = 10,
                             sweep: Optional[SweepReport] = None,
                             ) -> ComparisonTable:
    """Latency/throughput/ops-per-joule at each consistency level.

    Pass a merged ``sweep`` (from :func:`frontier_sweep_plan`) to render
    from its aggregates instead of re-running the cells serially.
    """
    table = ComparisonTable(
        "Ext. frontier",
        f"workload A per consistency level, {servers} servers / "
        f"{clients} clients / RF {rf}")
    merged = sweep.checked_aggregates() if sweep is not None else None
    for level in levels:
        if merged is not None:
            metrics = merged[f"{level} / RF {rf}"]
        else:
            metrics, _results = repeat_experiment(
                _frontier_spec(level, rf, servers, clients, scale),
                scale.seeds)
        table.add(f"{level} throughput", None,
                  metrics["throughput"].mean / 1000.0, " Kop/s")
        table.add(f"{level} mean latency", None,
                  metrics["mean_latency"].mean * 1e6, " us")
        table.add(f"{level} efficiency", None,
                  metrics["energy_efficiency"].mean, " op/J")
    table.note("no paper column: the paper only measures the sync_rf "
               "point of this frontier (§VI)")
    table.note("scaling note: relaxed levels buy the most at high RF "
               "and write fraction — the ack path drops RF round trips")
    return table


def run_durability_gap_table(scale: Scale = DEFAULT,
                             levels: Sequence[str] = LEVELS,
                             rf: int = 1,
                             servers: int = 4) -> ComparisonTable:
    """Measured crash-loss per level: what the ack was worth."""
    table = ComparisonTable(
        "Ext. durability gap",
        f"acked-write loss under a master crash, {servers} servers / "
        f"RF {rf}")
    for level in levels:
        spec = DurabilityGapSpec(
            cluster=ClusterSpec(
                num_servers=servers, num_clients=2,
                server_config=ServerConfig(log_memory_bytes=64 * MB,
                                           segment_size=1 * MB,
                                           replication_factor=rf),
                seed=scale.seeds[0]),
            level=level,
            # The stream must still be flowing when the crash lands
            # (default crash_at=0.25, one write per 4 ms ⇒ ≥100 writes
            # span it) or there is no in-flight tail to measure.
            writes_per_client=max(100, scale.ops_per_client // 4),
        )
        result = run_durability_gap(spec)
        table.add(f"{level} acked writes", None,
                  float(result.acked_writes), "")
        table.add(f"{level} acked-write loss", None,
                  float(result.acknowledged_write_loss), "")
        table.add(f"{level} observed staleness", None,
                  result.max_observed_staleness * 1e3, " ms")
        if result.recovery_duration is not None:
            table.add(f"{level} recovery time", None,
                      result.recovery_duration * 1e3, " ms")
    table.note("sync_rf loss must be exactly 0 (enforced by "
               "tests/integration/test_durability_gap.py); relaxed "
               "levels may lose at most the in-flight batch")
    table.note(f"staleness bound: "
               f"{ServerConfig().staleness_bound_seconds * 1e3:.0f} ms "
               f"sim-time / {ServerConfig().staleness_bound_bytes} bytes")
    return table


def main():  # pragma: no cover - console entry point
    from repro.experiments.scale import active_scale
    scale = active_scale()
    print(run_consistency_frontier(scale).render())
    print()
    print(run_durability_gap_table(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
