"""Energy proportionality under adaptive power management (docs/POWER.md).

The paper's central negative result is that RAMCloud is nowhere near
energy-proportional: the pinned dispatch core busy-polls the NIC, so an
*idle* 4-core server burns 25 % CPU and ≈75 W, and ops/joule collapses
7× from 1 to 10 servers (Figs. 1–4, Table I).  The authors point at the
polling thread and defer an energy-aware redesign to future work (§X).

This experiment explores that fix space with the knobs
:mod:`repro.powermgmt` models:

* an idle→peak load sweep per governor (``static`` — the paper's
  machine, ``ondemand`` DVFS, ``poll-adaptive`` dispatch blocking +
  core parking), reporting watts, ops/joule, p99 latency and the
  energy-proportionality index per governor;
* a cluster power-cap run (:func:`run_power_cap`): the
  :class:`~repro.cluster.powercap.PowerCapController` throttles the
  Fig. 13 admission path until the fleet holds a configured wattage.

Unlike :func:`~repro.cluster.experiment.run_experiment` (which derives
watts analytically from busy-core seconds), every watt here comes from
the simulated PDU series — the only probe that sees DVFS state and
parked cores — so a governor's savings show up exactly the way the
paper's measurement harness would see them.

Determinism: everything is seeded; :meth:`EnergyProportionalityResult.digest`
is byte-identical across same-seed reruns (asserted by the benchmark).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import Cluster, ClusterSpec
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.powermgmt import PowerPolicy
from repro.ramcloud.config import ServerConfig
from repro.sim.distributions import RandomStream
from repro.ycsb.client import YcsbClient
from repro.ycsb.stats import LatencyRecorder
from repro.ycsb.workload import WORKLOAD_C

__all__ = ["EnergyPoint", "EnergyProportionalityResult",
           "run_energy_proportionality", "PowerCapResult", "run_power_cap",
           "energy_sweep_plan"]

# The paper's idle anchor: 25 % CPU (Table I row 0) through the power
# model's calibration, 57.5 + 0.69 * 25 W.
PAPER_IDLE_WATTS = 74.75
PAPER_IDLE_CPU = 25.0


@dataclass(frozen=True)
class EnergyPoint:
    """One (governor, load) measurement of the sweep."""

    governor: str
    load_fraction: float      # 0.0 = idle, 1.0 = unthrottled peak
    throughput: float         # ops/s, aggregate
    watts_per_server: float   # PDU-measured average
    energy_joules: float      # fleet energy over the measured window
    ops_per_joule: float      # 0.0 at idle
    p99_latency: Optional[float]  # seconds; None at idle
    cpu_pct: float            # mean per-node CPU over the window
    dispatch_sleeps: int      # adaptive-dispatch naps across the fleet
    core_parks: int           # worker core-parking events


@dataclass
class EnergyProportionalityResult:
    """The full sweep plus per-governor summary metrics."""

    points: List[EnergyPoint] = field(default_factory=list)
    #: governor → energy-proportionality index (1 = proportional).
    ep_index: Dict[str, float] = field(default_factory=dict)

    def by_governor(self, governor: str) -> List[EnergyPoint]:
        """The sweep points of one governor, in load order."""
        return sorted((p for p in self.points if p.governor == governor),
                      key=lambda p: p.load_fraction)

    def point(self, governor: str, load_fraction: float) -> EnergyPoint:
        """The single point at (governor, load_fraction)."""
        for p in self.points:
            if p.governor == governor and p.load_fraction == load_fraction:
                return p
        raise KeyError(f"no point ({governor!r}, {load_fraction})")

    def digest(self) -> str:
        """Byte-exact digest of every measured value (same seed → same
        digest; the determinism acceptance check)."""
        h = hashlib.sha256()
        for p in sorted(self.points,
                        key=lambda p: (p.governor, p.load_fraction)):
            h.update(f"{p!r}\n".encode())
        for governor in sorted(self.ep_index):
            h.update(f"ep[{governor}]={self.ep_index[governor]!r}\n".encode())
        return h.hexdigest()


def _policy_for(governor: str) -> PowerPolicy:
    """The cluster policy for one sweep arm.  ``static`` uses the
    all-defaults policy, so that arm builds zero power-management
    machinery — it IS the paper's cluster, event for event."""
    return PowerPolicy(governor=governor)


def _fresh_cluster(governor: str, servers: int, clients: int,
                   seed: int) -> Cluster:
    return Cluster(ClusterSpec(
        num_servers=servers, num_clients=clients,
        server_config=ServerConfig(replication_factor=0),
        seed=seed, power_policy=_policy_for(governor)))


def _metered_window(cluster: Cluster, pdu_interval: float):
    """Start PDU metering; returns the closer that yields the window
    measurements: (makespan, energy_joules, cpu_pct)."""
    start = cluster.sim.now
    for node in cluster.server_nodes:
        node.start_metering(interval=pdu_interval)

    def close():
        end = cluster.sim.now
        cluster.stop_metering()
        makespan = max(end - start, 1e-12)
        energy = sum(node.power.series.integral()
                     for node in cluster.server_nodes)
        cpu = sum(node.cpu.utilization_between(start, end)
                  for node in cluster.server_nodes) / len(cluster.server_nodes)
        return makespan, energy, cpu

    return close


def _fleet_power_counters(cluster: Cluster) -> Tuple[int, int]:
    sleeps = sum(s.dispatch_sleeps for s in cluster.servers)
    parks = sum(s.core_parks for s in cluster.servers)
    return sleeps, parks


def _measure_idle(governor: str, servers: int, seed: int,
                  duration: float, pdu_interval: float) -> EnergyPoint:
    """No clients, no ops: just the running servers, metered."""
    cluster = _fresh_cluster(governor, servers, clients=0, seed=seed)
    # Let start-up transients (worker spin-up, first parking decisions,
    # the ondemand sampler's walk down the P-states) settle first.
    cluster.run(until=1.0)
    close = _metered_window(cluster, pdu_interval)
    cluster.run(until=cluster.sim.now + duration)
    makespan, energy, cpu = close()
    sleeps, parks = _fleet_power_counters(cluster)
    return EnergyPoint(
        governor=governor, load_fraction=0.0, throughput=0.0,
        watts_per_server=energy / makespan / servers,
        energy_joules=energy, ops_per_joule=0.0, p99_latency=None,
        cpu_pct=cpu, dispatch_sleeps=sleeps, core_parks=parks)


def _measure_load(governor: str, servers: int, clients: int, seed: int,
                  scale: Scale, load_fraction: float,
                  per_client_rate: float, duration: float,
                  pdu_interval: float) -> EnergyPoint:
    """One throttled (or, at rate 0, unthrottled) load point."""
    cluster = _fresh_cluster(governor, servers, clients, seed)
    table_id = cluster.create_table("usertable")
    cluster.preload(table_id, scale.num_records, 1024)

    workload = WORKLOAD_C.scaled(num_records=scale.num_records,
                                 ops_per_client=1)
    if per_client_rate > 0:
        ops = max(60, int(per_client_rate * duration))
        workload = workload.scaled(ops_per_client=ops).throttled(
            per_client_rate)
    else:  # unthrottled peak: enough ops to fill the window
        ops = max(scale.ops_per_client, int(40_000 * duration))
        workload = workload.scaled(ops_per_client=ops)

    ycsb = [YcsbClient(cluster.sim, rc, table_id, workload,
                       RandomStream(seed, f"ycsb{i}"))
            for i, rc in enumerate(cluster.clients)]
    # Start metering only now: preload energy is setup, not workload.
    close = _metered_window(cluster, pdu_interval)
    procs = [cluster.sim.process(c.run(), name=f"ycsb:{i}")
             for i, c in enumerate(ycsb)]
    done = cluster.sim.all_of(procs)
    while not done.triggered:
        cluster.sim.step()
    if not done.ok:
        raise done.value
    makespan, energy, cpu = close()

    total_ops = sum(c.stats.total_ops for c in ycsb)
    merged = LatencyRecorder("all")
    for c in ycsb:
        merged.samples.extend(c.stats.all_latencies().samples)
    sleeps, parks = _fleet_power_counters(cluster)
    return EnergyPoint(
        governor=governor, load_fraction=load_fraction,
        throughput=total_ops / makespan,
        watts_per_server=energy / makespan / servers,
        energy_joules=energy,
        ops_per_joule=total_ops / energy if energy > 0 else 0.0,
        p99_latency=merged.percentile(99.0), cpu_pct=cpu,
        dispatch_sleeps=sleeps, core_parks=parks)


def run_energy_proportionality(
        scale: Scale = DEFAULT,
        governors: Sequence[str] = ("static", "ondemand", "poll-adaptive"),
        servers: int = 3, clients: int = 6,
        fractions: Sequence[float] = (0.1, 0.5),
        seed: int = 1,
) -> Tuple[ComparisonTable, EnergyProportionalityResult]:
    """The idle→peak sweep per governor.

    Each governor is measured at idle (0.0), at throttled fractions of
    the static cluster's peak, and unthrottled (1.0).  Every fraction
    uses the same absolute target rate for every governor, so their
    watts and p99 columns are directly comparable.
    """
    smoke = scale.name == "smoke"
    idle_duration = 1.5 if smoke else 2.5
    point_duration = 0.4 if smoke else 0.7
    peak_duration = 0.15 if smoke else 0.3
    pdu_interval = 0.02

    result = EnergyProportionalityResult()

    # Anchor the sweep on the paper configuration's unthrottled peak.
    static_peak = _measure_load("static", servers, clients, seed, scale,
                                1.0, 0.0, peak_duration, pdu_interval)
    for governor in governors:
        points = [_measure_idle(governor, servers, seed, idle_duration,
                                pdu_interval)]
        for fraction in sorted(fractions):
            rate = fraction * static_peak.throughput / clients
            points.append(_measure_load(
                governor, servers, clients, seed, scale, fraction, rate,
                point_duration, pdu_interval))
        if governor == "static":
            points.append(static_peak)
        else:
            points.append(_measure_load(governor, servers, clients, seed,
                                        scale, 1.0, 0.0, peak_duration,
                                        pdu_interval))
        result.points.extend(points)
        from repro.analysis.reports import energy_proportionality_index
        result.ep_index[governor] = energy_proportionality_index(
            [p.throughput for p in points],
            [p.watts_per_server for p in points])

    table = ComparisonTable(
        "§X energy proportionality",
        f"idle→peak sweep per governor ({servers} servers, {clients} "
        f"clients, read-only)")
    light = min(fractions)
    for governor in governors:
        idle = result.point(governor, 0.0)
        peak = result.point(governor, 1.0)
        mid = result.point(governor, light)
        is_static = governor == "static"
        table.add(f"{governor}: idle watts/server",
                  PAPER_IDLE_WATTS if is_static else None,
                  idle.watts_per_server, " W")
        table.add(f"{governor}: idle CPU",
                  PAPER_IDLE_CPU if is_static else None, idle.cpu_pct, "%")
        table.add(f"{governor}: peak throughput", None,
                  peak.throughput / 1000.0, "K")
        table.add(f"{governor}: peak efficiency", None,
                  peak.ops_per_joule, " op/J")
        table.add(f"{governor}: p99 at {light:.0%} load", None,
                  mid.p99_latency * 1e6, " µs",
                  note=f"{mid.core_parks} parks, "
                       f"{mid.dispatch_sleeps} dispatch naps")
        table.add(f"{governor}: proportionality index", None,
                  result.ep_index[governor])
    table.note("watts come from the PDU series (DVFS- and parking-aware), "
               "not the analytic busy-seconds model")
    table.note("static = the paper's machine: flat ≈75 W idle floor from "
               "the busy-polling dispatch core")
    return table, result


# -- sweep integration --------------------------------------------------------


def _energy_cell(params, seed: int, scale: Scale):
    """Sweep cell runner: one full idle→peak governor sweep at ``seed``.

    The cell digest is :meth:`EnergyProportionalityResult.digest` — the
    byte-exact record of every measured point — so serial/parallel
    equivalence covers the whole sweep, not just the summary numbers.
    """
    from repro.experiments.sweep import CellOutcome
    governors = tuple(params.get("governors",
                                 ("static", "ondemand", "poll-adaptive")))
    _table, result = run_energy_proportionality(
        scale, governors=governors,
        servers=int(params.get("servers", 3)),
        clients=int(params.get("clients", 6)),
        fractions=tuple(params.get("fractions", (0.1, 0.5))),
        seed=seed)
    metrics = {}
    for governor in governors:
        peak = result.point(governor, 1.0)
        idle = result.point(governor, 0.0)
        metrics[f"ep_index[{governor}]"] = result.ep_index[governor]
        metrics[f"peak_throughput[{governor}]"] = peak.throughput
        metrics[f"idle_watts[{governor}]"] = idle.watts_per_server
    return CellOutcome(metrics=metrics, digest=result.digest())


def energy_sweep_plan(scale: Scale = DEFAULT, seeds=None,
                      governors: Sequence[str] = ("static", "ondemand",
                                                  "poll-adaptive"),
                      servers: int = 3, clients: int = 6,
                      fractions: Sequence[float] = (0.1, 0.5)):
    """The §X governor sweep as a single-point :class:`SweepPlan`
    (each seed is one whole idle→peak sweep)."""
    from repro.experiments.sweep import SweepPlan, SweepPoint
    point = SweepPoint.of(
        f"{len(governors)} governors / {servers} servers",
        governors=tuple(governors), servers=servers, clients=clients,
        fractions=tuple(fractions))
    return SweepPlan("energy", (point,), tuple(seeds or scale.seeds), scale)


SWEEP_CELLS = {"energy": _energy_cell}
SWEEP_PLANS = {"energy": energy_sweep_plan}


# -- cluster power capping ---------------------------------------------------


@dataclass
class PowerCapResult:
    """What the cap run measured (controller's own view of the fleet)."""

    cap_watts: float
    hysteresis_watts: float
    settled_mean_watts: float
    settled_max_watts: float
    uncapped_watts: float
    throughput: float
    admitted_rate: float
    #: (time, fleet watts) as the controller sampled them.
    watts_points: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def held(self) -> bool:
        """Did the settled fleet power stay within the hysteresis band
        around the cap (one controller tick of overshoot allowed)?"""
        return self.settled_max_watts <= self.cap_watts \
            + self.hysteresis_watts


def _capped_load(servers: int, clients: int, seed: int, scale: Scale,
                 policy: Optional[PowerPolicy], duration: float,
                 settle: float) -> Tuple[Cluster, float, float]:
    """Drive unthrottled demand for ``duration``; returns the cluster,
    the settled-window PDU fleet watts, and the measured throughput."""
    spec = ClusterSpec(
        num_servers=servers, num_clients=clients,
        server_config=ServerConfig(replication_factor=0), seed=seed)
    if policy is not None:
        spec = spec.with_(power_policy=policy)
    cluster = Cluster(spec)
    table_id = cluster.create_table("usertable")
    cluster.preload(table_id, scale.num_records, 1024)
    workload = WORKLOAD_C.scaled(num_records=scale.num_records,
                                 ops_per_client=int(40_000 * duration))
    ycsb = [YcsbClient(cluster.sim, rc, table_id, workload,
                       RandomStream(seed, f"cap{i}"))
            for i, rc in enumerate(cluster.clients)]
    for c in ycsb:
        c.throttle = cluster.admission_throttle  # None when uncapped
    start = cluster.sim.now
    for node in cluster.server_nodes:
        node.start_metering(interval=0.02)
    for i, c in enumerate(ycsb):
        cluster.sim.process(c.run(), name=f"cap:{i}")
    cluster.run(until=start + duration)
    window = (start + settle, start + duration)
    fleet_watts = sum(
        node.power.series.window(*window).time_weighted_mean()
        for node in cluster.server_nodes)
    ops = sum(c.stats.total_ops for c in ycsb)
    return cluster, fleet_watts, ops / duration


def run_power_cap(scale: Scale = DEFAULT, servers: int = 2,
                  clients: int = 4, cap_watts: float = 185.0,
                  seed: int = 1) -> Tuple[ComparisonTable, PowerCapResult]:
    """Hold a fleet power cap on a Fig. 13-style throttled workload.

    Unthrottled demand from ``clients`` closed-loop clients would push
    the fleet well above ``cap_watts``; the
    :class:`~repro.cluster.powercap.PowerCapController` throttles the
    shared admission token bucket until the controller's own fleet
    measurement settles inside the hysteresis band.
    """
    smoke = scale.name == "smoke"
    duration = 1.2 if smoke else 2.0
    settle = 0.6 if smoke else 1.0

    # Baseline: same demand, no cap.
    _, uncapped_watts, uncapped_rate = _capped_load(
        servers, clients, seed, scale, None, duration, settle)

    policy = PowerPolicy(power_cap_watts=cap_watts, cap_interval=0.05,
                         cap_hysteresis_watts=5.0)
    cluster, fleet_watts, throughput = _capped_load(
        servers, clients, seed, scale, policy, duration, settle)
    controller = cluster.power_cap
    settled = controller.watts_series.window(settle, duration)
    result = PowerCapResult(
        cap_watts=cap_watts,
        hysteresis_watts=policy.cap_hysteresis_watts,
        settled_mean_watts=settled.mean(),
        settled_max_watts=settled.max(),
        uncapped_watts=uncapped_watts,
        throughput=throughput,
        admitted_rate=cluster.admission_throttle.rate,
        watts_points=list(zip(settled.times, settled.values)))

    table = ComparisonTable(
        "§X power cap",
        f"cluster cap {cap_watts:.0f} W on {servers} servers / "
        f"{clients} unthrottled clients")
    table.add("uncapped fleet watts", None, uncapped_watts, " W",
              note=f"{uncapped_rate / 1000.0:.0f}K op/s demand")
    table.add("configured cap", None, cap_watts, " W")
    table.add("settled fleet watts (mean)", None,
              result.settled_mean_watts, " W")
    table.add("settled fleet watts (max)", None,
              result.settled_max_watts, " W")
    table.add("throughput under cap", None, throughput / 1000.0, "K")
    rate = result.admitted_rate
    table.add("admitted rate", None,
              None if math.isinf(rate) else rate, " op/s",
              note="inf = cap never engaged" if math.isinf(rate) else "")
    table.note("the controller throttles the Fig. 13 admission path "
               "(client token bucket) — proportional decrease over the "
               "cap, 5 %/tick increase below the hysteresis band")
    return table, result


def main():  # pragma: no cover - console entry point
    from repro.analysis.reports import energy_proportionality_report
    from repro.experiments.scale import active_scale
    scale = active_scale()
    table, result = run_energy_proportionality(scale)
    print(table.render())
    print()
    print(energy_proportionality_report(result))
    print()
    cap_table, _cap = run_power_cap(scale)
    print(cap_table.render())


if __name__ == "__main__":  # pragma: no cover
    main()
