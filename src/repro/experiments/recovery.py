"""§VII — crash recovery.

Reproduces Fig. 9a/9b (cluster CPU and power timelines around a crash),
Fig. 10 (per-operation latency of a lost-data and a live-data client),
Fig. 11a/11b (recovery time and per-node energy vs replication factor)
and Fig. 12 (aggregate disk activity during recovery).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.cluster import (
    ClusterSpec,
    CrashExperimentResult,
    CrashExperimentSpec,
    run_crash_experiment,
)
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.experiments.sweep import (
    SweepPlan,
    SweepPoint,
    SweepReport,
    outcome_from_crash,
)
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_C

__all__ = ["run_fig9_crash_timeline", "run_fig10_latency_crash",
           "run_fig11_recovery_rf", "run_fig12_disk_activity",
           "fig11_sweep_plan"]

# Paper anchors (§VII text + digitized curves).
PAPER_FIG9A_PEAK_CPU = 92.0  # cluster average CPU % during recovery
PAPER_FIG9A_IDLE_CPU = 25.0
PAPER_FIG9B_PEAK_WATTS = 119.0
PAPER_FIG10_BASE_LATENCY_US = 15.0
PAPER_FIG10_RECOVERY_LATENCY_US = 35.0
PAPER_FIG10_BLOCKED_SECONDS = 40.0
PAPER_FIG11A_SECONDS = {1: 10.0, 2: 21.0, 3: 32.0, 4: 44.0, 5: 55.0}
PAPER_FIG11B_KILOJOULES = {1: 1.2, 2: 2.4, 3: 3.7, 4: 5.1, 5: 6.4}
PAPER_FIG12_PEAK_READ_MBPS = 100.0
PAPER_FIG12_PEAK_WRITE_MBPS = 400.0


def _crash_spec(scale: Scale, servers: int, rf: int,
                bytes_per_server: int, kill_at: float = 60.0,
                clients: int = 0, seed: int = 3,
                **overrides) -> CrashExperimentSpec:
    record_size = scale.recovery_record_size
    num_records = bytes_per_server * servers // record_size
    run_until = kill_at + 60.0 + 90.0 * rf
    defaults = dict(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=clients,
            server_config=ServerConfig(replication_factor=rf),
            seed=seed),
        num_records=num_records,
        record_size=record_size,
        kill_at=kill_at,
        run_until=run_until,
    )
    defaults.update(overrides)
    return CrashExperimentSpec(**defaults)


def run_fig9_crash_timeline(scale: Scale = DEFAULT,
                            ) -> Tuple[ComparisonTable,
                                       CrashExperimentResult]:
    """Fig. 9a/9b: 10 idle servers, RF 4, random kill at t=60 s."""
    spec = _crash_spec(scale, servers=10, rf=4,
                       bytes_per_server=scale.crash_timeline_bytes_per_server)
    result = run_crash_experiment(spec)
    table = ComparisonTable(
        "Fig. 9", "CPU and power timeline around a crash (10 servers, RF 4)")
    kill_at = spec.kill_at
    idle_cpu = [v for t, v in result.cluster_cpu.items() if t < kill_at]
    recovery_cpu = [v for t, v in result.cluster_cpu.items()
                    if result.recovery.started_at < t
                    <= result.recovery.finished_at]
    table.add("idle cluster CPU", PAPER_FIG9A_IDLE_CPU,
              sum(idle_cpu) / len(idle_cpu), "%")
    table.add("peak cluster CPU during recovery", PAPER_FIG9A_PEAK_CPU,
              max(recovery_cpu), "%")
    table.add("peak surviving-node power", PAPER_FIG9B_PEAK_WATTS,
              result.avg_power_during_recovery(), "W")
    table.add("recovery time", None, result.recovery_time, " s")
    table.note("paper Fig. 9b shows a higher pre-crash baseline "
               "(~100 W) than Fig. 1b's calibration anchors; we keep "
               "the Fig. 1b calibration")
    return table, result


def run_fig10_latency_crash(scale: Scale = DEFAULT,
                            ) -> Tuple[ComparisonTable,
                                       CrashExperimentResult]:
    """Fig. 10: two clients during a targeted crash — one pinned to the
    victim's data (blocked for the whole recovery), one to live data
    (1.4–2.4x latency during recovery)."""
    servers = 10
    record_size = scale.recovery_record_size
    num_records = (scale.crash_timeline_bytes_per_server * servers
                   // record_size)
    # Throttled probes (the latency trace needs samples, not load):
    # 1000 op/s per client keeps the event count bounded over the
    # minutes-long recovery window.
    foreground = WORKLOAD_C.scaled(num_records=num_records,
                                   ops_per_client=10_000_000,
                                   record_size=record_size,
                                   ).throttled(1000.0)
    spec = _crash_spec(
        scale, servers=servers, rf=4,
        bytes_per_server=scale.crash_timeline_bytes_per_server,
        clients=2, victim_index=3, split_clients_by_victim=True,
        foreground=foreground,
    )
    result = run_crash_experiment(spec)
    table = ComparisonTable(
        "Fig. 10", "per-op latency around a crash (2 clients)")
    lost, live = result.client_latencies[0], result.client_latencies[1]
    kill_at = spec.kill_at
    end = result.recovery.finished_at

    def mean_us(samples, lo, hi):
        window = [lat for t, lat in samples if lo < t <= hi]
        return 1e6 * sum(window) / len(window) if window else None

    # The paper's baseline is 1 KB reads at ~15 µs; our recovery dataset
    # uses larger records, so latency baselines scale with record size.
    base_live = mean_us(live, 0.0, kill_at)
    during_live = mean_us(live, kill_at, end)
    blocked = max((lat for _t, lat in lost), default=None)
    table.add("live-data client baseline latency",
              PAPER_FIG10_BASE_LATENCY_US, base_live, " µs",
              note=f"records are {scale.recovery_record_size // 1024} KB "
                   "here, not 1 KB")
    table.add("live-data client latency during recovery",
              PAPER_FIG10_RECOVERY_LATENCY_US, during_live, " µs")
    if base_live and during_live:
        table.add("live-data slowdown during recovery", 2.0,
                  during_live / base_live, "x",
                  note="paper reports 1.4–2.4x")
    table.add("lost-data client blocked for",
              PAPER_FIG10_BLOCKED_SECONDS, blocked, " s",
              note="equals the recovery time")
    table.add("recovery time", 40.0, result.recovery_time, " s")
    return table, result


def _fig11_cell(params: Dict[str, object], seed: int, scale: Scale):
    """Sweep cell runner: one (servers, rf, seed) crash-recovery run of
    the Fig. 11 grid."""
    spec = _crash_spec(scale, servers=int(params["servers"]),
                       rf=int(params["rf"]),
                       bytes_per_server=scale.recovery_bytes_per_server,
                       kill_at=10.0, seed=seed)
    return outcome_from_crash(run_crash_experiment(spec))


def fig11_sweep_plan(scale: Scale = DEFAULT,
                     seeds: Optional[Sequence[int]] = None,
                     rfs: Sequence[int] = (1, 2, 3, 4, 5),
                     servers: int = 9) -> SweepPlan:
    """The Fig. 11 grid as a :class:`SweepPlan`.

    Defaults to the serial runner's pinned seed 3, so a merged sweep
    renders the exact table :func:`run_fig11_recovery_rf` produces
    today; pass ``seeds`` to average recovery times over reruns the
    way the paper did.
    """
    points = tuple(SweepPoint.of(f"RF {rf}", servers=servers, rf=rf)
                   for rf in rfs)
    return SweepPlan("fig11", points, tuple(seeds or (3,)), scale)


SWEEP_CELLS = {"fig11": _fig11_cell}
SWEEP_PLANS = {"fig11": fig11_sweep_plan}


def run_fig11_recovery_rf(scale: Scale = DEFAULT,
                          rfs: Sequence[int] = (1, 2, 3, 4, 5),
                          servers: int = 9,
                          sweep: Optional[SweepReport] = None,
                          ) -> Tuple[ComparisonTable, ComparisonTable]:
    """Fig. 11a (recovery time vs RF) and Fig. 11b (per-node energy
    during recovery vs RF); 9 servers, ≈1.085 GB to recover.

    Pass a merged ``sweep`` (from :func:`fig11_sweep_plan`) to render
    from its aggregates instead of re-running the cells serially.
    """
    time_table = ComparisonTable(
        "Fig. 11a", f"recovery time vs replication factor ({servers} "
        "servers, ~1.085 GB/server)")
    energy_table = ComparisonTable(
        "Fig. 11b", "per-node energy during recovery vs RF")
    durations: Dict[int, float] = {}
    merged = sweep.checked_aggregates() if sweep is not None else None
    for rf in rfs:
        if merged is not None:
            metrics = merged.get(f"RF {rf}")
            # ``recovery_time`` is aggregated only when every seed's
            # recovery finished (metric-key intersection).
            if metrics is None or "recovery_time" not in metrics:
                time_table.add(f"RF {rf}", PAPER_FIG11A_SECONDS.get(rf),
                               None, " s", note="recovery did not finish")
                continue
            durations[rf] = metrics["recovery_time"].mean
            time_table.add(f"RF {rf}", PAPER_FIG11A_SECONDS.get(rf),
                           durations[rf], " s")
            energy_table.add(
                f"RF {rf}", PAPER_FIG11B_KILOJOULES.get(rf),
                metrics["energy_per_node_joules"].mean / 1000.0, " kJ")
            continue
        spec = _crash_spec(scale, servers=servers, rf=rf,
                           bytes_per_server=scale.recovery_bytes_per_server,
                           kill_at=10.0)
        result = run_crash_experiment(spec)
        if result.recovery is None or result.recovery.finished_at is None:
            time_table.add(f"RF {rf}", PAPER_FIG11A_SECONDS.get(rf), None,
                           " s", note="recovery did not finish")
            continue
        durations[rf] = result.recovery_time
        time_table.add(f"RF {rf}", PAPER_FIG11A_SECONDS.get(rf),
                       result.recovery_time, " s")
        energy_table.add(
            f"RF {rf}", PAPER_FIG11B_KILOJOULES.get(rf),
            result.energy_per_node_during_recovery() / 1000.0, " kJ")
    if len(durations) >= 2:
        lo, hi = min(durations), max(durations)
        time_table.add(f"growth RF{lo}→RF{hi}",
                       PAPER_FIG11A_SECONDS[5] / PAPER_FIG11A_SECONDS[1]
                       if (lo, hi) == (1, 5) else None,
                       durations[hi] / durations[lo], "x")
    time_table.note("Finding 6: recovery time grows with the replication "
                    "factor because replay re-inserts data through the "
                    "replicated write path")
    return time_table, energy_table


def run_fig12_disk_activity(scale: Scale = DEFAULT, rf: int = 4,
                            servers: int = 9,
                            ) -> Tuple[ComparisonTable,
                                       CrashExperimentResult]:
    """Fig. 12: aggregate disk read/write MB/s during recovery."""
    spec = _crash_spec(scale, servers=servers, rf=rf,
                       bytes_per_server=scale.recovery_bytes_per_server,
                       kill_at=10.0)
    result = run_crash_experiment(spec)
    table = ComparisonTable(
        "Fig. 12", f"aggregate disk activity during recovery "
        f"({servers} nodes, RF {rf})")
    start = result.recovery.started_at
    end = result.recovery.finished_at
    reads = [v for t, v in result.disk_read_mbps.items() if start < t <= end]
    writes = [v for t, v in result.disk_write_mbps.items()
              if start < t <= end]
    table.add("peak aggregate read", PAPER_FIG12_PEAK_READ_MBPS,
              max(reads, default=0.0), " MB/s")
    table.add("peak aggregate write", PAPER_FIG12_PEAK_WRITE_MBPS,
              max(writes, default=0.0), " MB/s")
    read_total = sum(reads)
    write_total = sum(writes)
    if read_total:
        table.add("write/read volume ratio", float(rf),
                  write_total / read_total, "x",
                  note="re-replication writes RF copies of what was read")
    overlap = sum(1 for r, w in zip(reads, writes) if r > 0 and w > 0)
    table.add("seconds with overlapping read+write", None, float(overlap),
              " s", note="the head contention the paper blames for slow "
                         "small-cluster recovery")
    return table, result


def main():  # pragma: no cover - console entry point
    from repro.experiments.scale import active_scale
    scale = active_scale()
    fig9, _r = run_fig9_crash_timeline(scale)
    print(fig9.render())
    print()
    fig10, _r = run_fig10_latency_crash(scale)
    print(fig10.render())
    print()
    fig11a, fig11b = run_fig11_recovery_rf(scale)
    print(fig11a.render())
    print()
    print(fig11b.render())
    print()
    fig12, _r = run_fig12_disk_activity(scale)
    print(fig12.render())


if __name__ == "__main__":  # pragma: no cover
    main()
