"""Paper-vs-measured comparison tables.

Every experiment runner returns a :class:`ComparisonTable`: rows of
(configuration, paper value, measured value).  The same table renders
the console output of the benchmarks and feeds EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["ComparisonRow", "ComparisonTable"]


@dataclass
class ComparisonRow:
    """One (configuration, paper value, measured value) point."""
    label: str
    paper: Optional[float]
    measured: Optional[float]
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """measured/paper, or None when either side is missing."""
        if not self.paper or self.measured is None:
            return None
        return self.measured / self.paper


@dataclass
class ComparisonTable:
    """One figure/table's worth of paper-vs-measured points."""

    experiment_id: str  # e.g. "Fig. 5"
    title: str
    rows: List[ComparisonRow] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, label: str, paper: Optional[float],
            measured: Optional[float], unit: str = "",
            note: str = "") -> None:
        """Append one comparison point."""
        self.rows.append(ComparisonRow(label, paper, measured, unit, note))

    def note(self, text: str) -> None:
        """Attach a caveat shown under the table."""
        self.notes.append(text)

    def measured_series(self) -> List[float]:
        """All measured values, in row order."""
        return [r.measured for r in self.rows if r.measured is not None]

    def paper_series(self) -> List[float]:
        """All paper values, in row order."""
        return [r.paper for r in self.rows if r.paper is not None]

    def render(self) -> str:
        """Fixed-width console table."""
        width = max([len(r.label) for r in self.rows] + [13])
        lines = [f"== {self.experiment_id}: {self.title} =="]
        header = (f"{'configuration':<{width}}  {'paper':>12}  "
                  f"{'measured':>12}  {'ratio':>6}  note")
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            paper = _fmt(row.paper, row.unit)
            measured = _fmt(row.measured, row.unit)
            ratio = f"{row.ratio:.2f}" if row.ratio is not None else "-"
            lines.append(f"{row.label:<{width}}  {paper:>12}  "
                         f"{measured:>12}  {ratio:>6}  {row.note}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Markdown table for EXPERIMENTS.md."""
        lines = [f"### {self.experiment_id}: {self.title}", "",
                 "| configuration | paper | measured | ratio |",
                 "|---|---|---|---|"]
        for row in self.rows:
            ratio = f"{row.ratio:.2f}" if row.ratio is not None else "—"
            lines.append(
                f"| {row.label} | {_fmt(row.paper, row.unit)} "
                f"| {_fmt(row.measured, row.unit)} | {ratio} |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)


def _fmt(value: Optional[float], unit: str) -> str:
    if value is None:
        return "—"
    if abs(value) >= 1000:
        text = f"{value:,.0f}"
    elif abs(value) >= 10:
        text = f"{value:.1f}"
    else:
        text = f"{value:.2f}"
    return f"{text}{unit}"
