"""Per-figure/table reproduction runners.

Each module reproduces one section of the paper's evaluation and knows
the paper's reported numbers, so every runner prints a
paper-vs-measured comparison:

* :mod:`repro.experiments.peak` — §IV: Fig. 1a/1b, Table I, Fig. 2
* :mod:`repro.experiments.workloads` — §V: Table II, Fig. 3, Fig. 4a/4b
* :mod:`repro.experiments.replication` — §VI: Fig. 5, 6a/6b, 7, 8
* :mod:`repro.experiments.recovery` — §VII: Fig. 9a/9b, 10, 11a/11b, 12
* :mod:`repro.experiments.throttling` — §IX: Fig. 13
* :mod:`repro.experiments.ablations` — §IX design-choice ablations
  (segment size, worker threads, relaxed-consistency replication)

All runners accept a :class:`~repro.experiments.scale.Scale` so the
benchmark harness can trade fidelity for runtime (DESIGN.md §5).
"""

from repro.experiments.scale import Scale, SMOKE, DEFAULT, FULL
from repro.experiments.reporting import ComparisonTable

__all__ = ["ComparisonTable", "Scale", "SMOKE", "DEFAULT", "FULL"]
