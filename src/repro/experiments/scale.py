"""Experiment scaling knobs (DESIGN.md §5).

The paper ran ≈3000 runs / ≈1000 hours with up to 300 M requests per
configuration.  We measure steady-state rates with scaled-down op
counts; ``Scale`` centralizes the scaling so every runner and benchmark
uses consistent sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Tuple

__all__ = ["Scale", "SMOKE", "DEFAULT", "FULL", "active_scale",
           "set_active_scale"]


@dataclass(frozen=True)
class Scale:
    """How big each run is."""

    name: str
    # YCSB sizing (paper §V: 100 K records, 100 K ops per client).
    num_records: int = 20_000
    ops_per_client: int = 600
    # Seeds per configuration (paper: 5 runs with error bars).
    seeds: Tuple[int, ...] = (1, 2)
    # Crash experiments: bytes per server (paper: ≈1.085 GB/server) and
    # record size (paper: 1 KB; we use larger records so entry objects
    # stay affordable — costs are per-byte-dominated, see DESIGN.md §4).
    recovery_bytes_per_server: int = 1085 * 1024 * 1024
    recovery_record_size: int = 8 * 1024
    # Fig. 9/10 use 10 M × 1 KB ≈ 0.97 GB/server over 10 servers.
    crash_timeline_bytes_per_server: int = 994 * 1024 * 1024

    def with_(self, **overrides) -> "Scale":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


# Quick shapes-only runs (CI-sized).
SMOKE = Scale(name="smoke", num_records=5_000, ops_per_client=200,
              seeds=(1,),
              recovery_bytes_per_server=128 * 1024 * 1024,
              crash_timeline_bytes_per_server=96 * 1024 * 1024)
# The benchmark default: enough to place every point with stable shape.
DEFAULT = Scale(name="default")
# Closer to the paper's op counts (slow; for overnight validation).
FULL = Scale(name="full", num_records=100_000, ops_per_client=5_000,
             seeds=(1, 2, 3, 4, 5))

_SCALES = {s.name: s for s in (SMOKE, DEFAULT, FULL)}


def active_scale() -> Scale:
    """The scale benchmarks run at; override with REPRO_SCALE=smoke|default|full."""
    name = os.environ.get("REPRO_SCALE", "default")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r}: choose from {sorted(_SCALES)}") from None


def set_active_scale(name: str) -> Scale:
    """Validate ``name`` and make it the process-wide active scale.

    This module is the one sanctioned writer of ``REPRO_SCALE`` (the
    DET002 contract): entry points set the scale here instead of
    poking ``os.environ`` themselves, so spawned sweep workers and
    lazy ``active_scale()`` readers all agree on where the knob lives.
    """
    try:
        scale = _SCALES[name]
    except KeyError:
        raise ValueError(
            f"scale {name!r}: choose from {sorted(_SCALES)}") from None
    os.environ["REPRO_SCALE"] = scale.name
    return scale
