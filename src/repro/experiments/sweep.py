"""repro.sweep — the parallel multi-seed sweep runner (ROADMAP item 1).

The paper's results come from ≈3000 runs on a 131-node testbed; ours
come from grids of (experiment, config-point, seed) cells that today
run strictly serially inside each ``run_fig*`` runner.  Determinism
makes those cells embarrassingly parallel: two runs of the same cell
are byte-identical (``tests/analyze/test_determinism.py``), so fanning
cells across worker *processes* must change nothing but wall-clock
time.  This module makes that property load-bearing and keeps it
tested:

* :class:`SweepPlan` names a registered experiment and the grid of
  :class:`SweepPoint` config points × seeds to run;
* :func:`run_sweep` fans one worker process per cell through a
  ``ProcessPoolExecutor`` (``spawn`` context: workers import the tree
  fresh and share no interpreter state with the parent), streams back
  per-cell :class:`CellOutcome` payloads — headline metrics plus the
  cell's **determinism digest** — and merges them into the same
  :class:`~repro.cluster.experiment.Aggregate` statistics the serial
  path produces (bit-identical: same floats, same seed order);
* ``serial_check=k`` re-runs a deterministic sample of ``k`` completed
  cells in-process and asserts digest-for-digest equality, so the
  parallel path can never silently fork behaviour from the serial one;
* a worker killed mid-cell (OOM, SIGKILL) breaks the pool; the runner
  quarantines the affected cells, retries each alone in a fresh pool so
  only the true culprit pays its retry budget, and still produces a
  complete merged report for the surviving cells.

Experiments register a *cell runner* — ``runner(params, seed, scale) ->
CellOutcome`` — in their module-level ``SWEEP_CELLS`` dict and a plan
factory in ``SWEEP_PLANS``; see :mod:`repro.experiments.peak` for the
pattern.  The registry is resolved lazily (inside functions) in both
the parent and the workers, so this module never imports the experiment
modules at import time and there is no cycle.

Environment isolation: every cell — serial, parallel, or
serial-check — executes through :func:`_execute_cell`, which pins the
digest-relevant environment (``REPRO_SIM_DEBUG``) from the plan and
restores the whole environment afterwards, so a cell that mutates
global state cannot leak into a sibling scheduled onto the same worker
(``tests/sweep/test_seed_isolation.py``).  Under debug mode the runner
additionally fingerprints every registered module-state watch
(:func:`repro.sim.sanitize.watch_cell_state`) around the cell and
raises :class:`~repro.sim.sanitize.CellStateError` on divergence — the
runtime half of the static DET001–DET006 state-isolation lint.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.experiment import Aggregate
from repro.experiments.scale import DEFAULT, Scale
from repro.sim.sanitize import (cell_state_fingerprint, check_cell_state,
                                watch_cell_state)

__all__ = [
    "CellOutcome", "CellResult", "SerialEquivalenceError", "SweepCell",
    "SweepPlan", "SweepPoint", "SweepReport", "cell_registry",
    "crash_experiment_digest", "experiment_digest", "list_experiments",
    "outcome_from_crash", "outcome_from_experiment", "plan_for",
    "run_sweep",
]

SCHEMA = 1

# Experiment modules that contribute SWEEP_CELLS / SWEEP_PLANS entries.
# Imported lazily so that those modules may import this one.
_EXPERIMENT_MODULES = (
    "repro.experiments.peak",
    "repro.experiments.workloads",
    "repro.experiments.replication",
    "repro.experiments.recovery",
    "repro.experiments.energy_proportionality",
    "repro.experiments.durability",
    "repro.experiments.indexing",
)


# -- determinism digests ------------------------------------------------
#
# The canonical byte-exact digests of everything an experiment measures.
# These started life in tests/analyze/test_determinism.py (which now
# imports them from here); the sweep runner computes them per cell so
# serial and parallel execution can be compared digest-for-digest.


def experiment_digest(result) -> str:
    """Byte-exact digest of everything an ``ExperimentResult`` measured."""
    h = hashlib.sha256()

    def feed(label, value):
        h.update(f"{label}={value!r}\n".encode())

    feed("total_ops", result.total_ops)
    feed("makespan", result.makespan)
    feed("throughput", result.throughput)
    feed("avg_power_per_server", result.avg_power_per_server)
    feed("total_energy_joules", result.total_energy_joules)
    feed("energy_efficiency", result.energy_efficiency)
    feed("client_errors", result.client_errors)
    for node in sorted(result.cpu_util_per_node):
        feed(f"cpu[{node}]", result.cpu_util_per_node[node])
    for i, stats in enumerate(result.per_client_stats):
        feed(f"client[{i}].ops", stats.total_ops)
        latencies = stats.all_latencies().latencies
        for latency in latencies:
            feed(f"client[{i}].lat", latency)
    # Per-tenant SLA breakout (multi-tenant runs only; empty otherwise,
    # so single-tenant digests are byte-identical to before it existed).
    for tenant in sorted(result.per_tenant_stats):
        stats = result.per_tenant_stats[tenant]
        for key in sorted(stats):
            feed(f"tenant[{tenant}].{key}", stats[key])
    # Race reports (nonempty only under REPRO_SIM_DEBUG=1) must also be
    # byte-identical across same-seed runs.
    for report in result.race_reports:
        feed("race", report)
    return h.hexdigest()


def crash_experiment_digest(result) -> str:
    """Byte-exact digest of everything a ``CrashExperimentResult`` measured."""
    h = hashlib.sha256()

    def feed(label, value):
        h.update(f"{label}={value!r}\n".encode())

    feed("crashed_server", result.crashed_server)
    for t, description in result.fault_log:
        feed("fault", (t, description))
    stats = result.recovery
    feed("recovery", (stats.crashed_id, stats.detected_at,
                      stats.started_at, stats.finished_at,
                      stats.partitions, stats.segments,
                      stats.bytes_to_recover, stats.lost_segments,
                      tuple(stats.recovery_masters)))
    for i, repair in enumerate(result.repairs):
        feed(f"repair[{i}]", (repair.dead_server, repair.started_at,
                              repair.peak_under_replicated,
                              repair.replicas_lost,
                              repair.segments_repaired,
                              repair.finished_at))
    for series in (result.cluster_cpu, result.disk_read_mbps,
                   result.disk_write_mbps, result.under_replicated):
        feed(f"{series.name}.times", result.cluster_cpu.times)
        feed(f"{series.name}.values", series.values)
    for name in sorted(result.per_node_power):
        feed(f"power[{name}]", result.per_node_power[name].values)
    for report in result.race_reports:
        feed("race", report)
    return h.hexdigest()


# -- cell payloads ------------------------------------------------------


@dataclass(frozen=True)
class CellOutcome:
    """What one cell sends back across the process boundary: headline
    scalar metrics plus the determinism digest of the full result."""

    metrics: Dict[str, float]
    digest: str
    events: int = 0
    ops: int = 0


def outcome_from_experiment(result) -> CellOutcome:
    """Standard outcome for a YCSB-style ``ExperimentResult`` cell —
    carries exactly the per-seed floats ``repeat_experiment`` aggregates,
    so merged sweep statistics are bit-identical to the serial path."""
    return CellOutcome(
        metrics={
            "throughput": result.throughput,
            "avg_power_per_server": result.avg_power_per_server,
            "total_energy_joules": result.total_energy_joules,
            "energy_efficiency": result.energy_efficiency,
            "makespan": result.makespan,
            "cpu_util_avg": result.cpu_util_avg,
            "mean_latency": result.mean_latency_or_zero(),
            "total_ops": float(result.total_ops),
            "client_errors": float(result.client_errors),
            "crashed": 1.0 if result.crashed else 0.0,
        },
        digest=experiment_digest(result),
        events=result.sim_events,
        ops=result.total_ops,
    )


def outcome_from_crash(result) -> CellOutcome:
    """Standard outcome for a ``CrashExperimentResult`` cell."""
    metrics: Dict[str, float] = {
        "finished": 1.0 if (result.recovery is not None
                            and result.recovery.finished_at is not None)
        else 0.0,
    }
    if metrics["finished"]:
        metrics["recovery_time"] = result.recovery_time
        metrics["energy_per_node_joules"] = (
            result.energy_per_node_during_recovery())
        metrics["avg_power_during_recovery"] = (
            result.avg_power_during_recovery())
    return CellOutcome(metrics=metrics,
                       digest=crash_experiment_digest(result))


# -- plans ---------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One config point of the grid: a label plus the runner params."""

    label: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, label: str, **params: Any) -> "SweepPoint":
        """Build a point from keyword params (canonical key order)."""
        return cls(label=label, params=tuple(sorted(params.items())))

    def as_dict(self) -> Dict[str, Any]:
        """The params as the dict the cell runner receives."""
        return dict(self.params)


@dataclass(frozen=True)
class SweepCell:
    """One (experiment, config-point, seed) unit of work."""

    experiment: str
    point: SweepPoint
    seed: int

    @property
    def key(self) -> Tuple[str, str, int]:
        """The cell's stable identity (experiment, point label, seed)."""
        return (self.experiment, self.point.label, self.seed)


@dataclass(frozen=True)
class SweepPlan:
    """A grid of cells over one registered experiment.

    ``debug=None`` (the default) pins every cell to the parent's
    ``REPRO_SIM_DEBUG`` at :func:`run_sweep` time, so serial and
    parallel executions of the same plan see the same sanitizer mode.
    """

    experiment: str
    points: Tuple[SweepPoint, ...]
    seeds: Tuple[int, ...]
    scale: Scale = DEFAULT
    debug: Optional[bool] = None

    def cells(self) -> Tuple[SweepCell, ...]:
        """Every cell, in canonical (point, seed) order — the order the
        serial path runs them and the merge aggregates them in."""
        return tuple(SweepCell(self.experiment, point, seed)
                     for point in self.points for seed in self.seeds)


@dataclass
class CellResult:
    """One cell's fate: its outcome, or the error that exhausted it."""

    cell: SweepCell
    outcome: Optional[CellOutcome]
    attempts: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the cell produced an outcome."""
        return self.outcome is not None


class SerialEquivalenceError(AssertionError):
    """A parallel cell's digest differs from its in-process rerun."""


# -- the registry --------------------------------------------------------

_registry_cache: Optional[Dict[str, Callable]] = None
_plans_cache: Optional[Dict[str, Callable]] = None


def cell_registry() -> Dict[str, Callable]:
    """experiment name → cell runner, collected from every experiment
    module's ``SWEEP_CELLS`` (resolved identically in parent and
    workers, so a spawn-context worker sees the same mapping)."""
    global _registry_cache
    if _registry_cache is None:
        import importlib
        registry: Dict[str, Callable] = {"_selftest": _selftest_cell}
        for name in _EXPERIMENT_MODULES:
            module = importlib.import_module(name)
            registry.update(getattr(module, "SWEEP_CELLS", {}))
        _registry_cache = registry  # simlint: disable=DET001 resolve-once registry: import-derived, identical in every process
    return _registry_cache


def _selftest_plan(scale: Scale = DEFAULT,
                   seeds: Optional[Sequence[int]] = None,
                   **params) -> "SweepPlan":
    """Plan for the built-in test experiment (hidden from listings)."""
    point = SweepPoint.of("selftest", servers=2, clients=1, **params)
    return SweepPlan("_selftest", (point,), tuple(seeds or (1, 2)), scale)


def _plan_registry() -> Dict[str, Callable]:
    global _plans_cache
    if _plans_cache is None:
        import importlib
        plans: Dict[str, Callable] = {"_selftest": _selftest_plan}
        for name in _EXPERIMENT_MODULES:
            module = importlib.import_module(name)
            plans.update(getattr(module, "SWEEP_PLANS", {}))
        _plans_cache = plans  # simlint: disable=DET001 resolve-once registry: import-derived, identical in every process
    return _plans_cache


def list_experiments() -> List[str]:
    """The public experiments ``plan_for`` knows how to plan."""
    return sorted(name for name in _plan_registry() if not
                  name.startswith("_"))


def plan_for(experiment: str, scale: Scale = DEFAULT,
             seeds: Optional[Sequence[int]] = None, **kwargs) -> SweepPlan:
    """The default :class:`SweepPlan` for a registered experiment."""
    try:
        factory = _plan_registry()[experiment]
    except KeyError:
        raise ValueError(
            f"unknown sweep experiment {experiment!r}: "
            f"choose from {list_experiments()}") from None
    return factory(scale, seeds=tuple(seeds) if seeds else None, **kwargs)


# -- cell execution (shared by the serial path, the workers, and the
#    serial-equivalence check) -------------------------------------------


def _resolve_debug(debug: Optional[bool]) -> bool:
    if debug is not None:
        return debug
    return os.environ.get("REPRO_SIM_DEBUG", "0") not in ("", "0")


def _execute_cell(experiment: str, params: Dict[str, Any], seed: int,  # simlint: disable=DET001 the isolation harness itself: resolves the sanctioned lazy registry
                  scale: Scale, debug: bool, attempt: int) -> CellOutcome:
    """Run one cell with a pinned environment.

    The environment snapshot/restore is the seed-isolation contract: a
    runner that mutates ``os.environ`` (deliberately or not) cannot
    leak into the next cell scheduled onto the same worker process, and
    the digest-relevant ``REPRO_SIM_DEBUG`` is always set from the plan
    rather than inherited.

    Under debug mode the registered cell-state watches are
    fingerprinted before the cell and re-checked after it succeeds
    (outside the env-restoring ``finally``, so a runner's own exception
    is never masked): a cell that leaves *any* watched module state
    behind fails with :class:`~repro.sim.sanitize.CellStateError`
    instead of silently poisoning the sibling cells this worker runs
    next.
    """
    saved = dict(os.environ)
    state_before = cell_state_fingerprint() if debug else None
    try:
        os.environ["REPRO_SIM_DEBUG"] = "1" if debug else "0"
        os.environ["REPRO_SWEEP_ATTEMPT"] = str(attempt)
        runner = cell_registry()[experiment]
        outcome = runner(dict(params), seed, scale)
    finally:
        os.environ.clear()
        os.environ.update(saved)
    if state_before is not None:
        check_cell_state(state_before,
                         context=f"({experiment!r}, seed={seed}, "
                                 f"attempt={attempt})")
    return outcome


def _worker(payload: Tuple[str, Dict[str, Any], int, Scale, bool, int]
            ) -> CellOutcome:
    """Pool entry point (module-level so spawn can pickle it)."""
    experiment, params, seed, scale, debug, attempt = payload
    return _execute_cell(experiment, params, seed, scale, debug, attempt)


def _payload(plan: SweepPlan, cell: SweepCell, debug: bool, attempt: int):
    return (cell.experiment, cell.point.as_dict(), cell.seed, plan.scale,
            debug, attempt)


# -- the report -----------------------------------------------------------


@dataclass
class SweepReport:
    """The merged result of one sweep, in canonical plan order."""

    plan: SweepPlan
    results: List[CellResult]
    parallel: bool
    workers: int
    serial_checked: List[Tuple[str, str, int]] = field(default_factory=list)

    def digests(self) -> Dict[Tuple[str, int], str]:
        """(point label, seed) → determinism digest, completed cells only."""
        return {(r.cell.point.label, r.cell.seed): r.outcome.digest
                for r in self.results if r.ok}

    def failed(self) -> List[CellResult]:
        """Cells that exhausted their retry budget."""
        return [r for r in self.results if not r.ok]

    def checked_aggregates(self) -> Dict[str, Dict[str, Aggregate]]:
        """:meth:`aggregates`, refusing to render a partial sweep.

        The figure runners use this: a table silently missing a failed
        point (or mislabelling it "did not finish") is worse than an
        error naming the dead cells.
        """
        failed = self.failed()
        if failed:
            cells = ", ".join(repr(r.cell.key) for r in failed)
            raise RuntimeError(
                f"sweep has {len(failed)} failed cell(s): {cells}")
        return self.aggregates()

    def aggregates(self) -> Dict[str, Dict[str, Aggregate]]:
        """point label → metric → :class:`Aggregate` over its seeds.

        Values are fed in plan seed order, so the result is bit-identical
        to what the serial ``repeat_experiment`` path computes for the
        same cells.  Only metrics present in every completed seed of a
        point are aggregated; points with no completed seed are absent.
        """
        merged: Dict[str, Dict[str, Aggregate]] = {}
        for point in self.plan.points:
            rows = [r for r in self.results
                    if r.ok and r.cell.point.label == point.label]
            if not rows:
                continue
            keys = set(rows[0].outcome.metrics)
            for row in rows[1:]:
                keys &= set(row.outcome.metrics)
            merged[point.label] = {
                key: Aggregate.of([row.outcome.metrics[key] for row in rows])
                for key in sorted(keys)}
        return merged

    def merged_digest(self) -> str:
        """One digest over every cell digest (order-independent: keyed
        and sorted by cell identity, so scheduling cannot perturb it)."""
        h = hashlib.sha256()
        for result in sorted(self.results, key=lambda r: r.cell.key):
            if result.ok:
                h.update(f"{result.cell.key}={result.outcome.digest}\n"
                         .encode())
            else:
                h.update(f"{result.cell.key}=FAILED\n".encode())
        return h.hexdigest()

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable dump (the ``tools/sweep.py --json`` file)."""
        return {
            "schema": SCHEMA,
            "experiment": self.plan.experiment,
            "scale": self.plan.scale.name,
            "seeds": list(self.plan.seeds),
            "parallel": self.parallel,
            "workers": self.workers,
            "merged_digest": self.merged_digest(),
            "serial_checked": [list(key) for key in self.serial_checked],
            "cells": [{
                "point": r.cell.point.label,
                "params": {k: list(v) if isinstance(v, tuple) else v
                           for k, v in r.cell.point.params},
                "seed": r.cell.seed,
                "attempts": r.attempts,
                "error": r.error,
                "digest": r.outcome.digest if r.ok else None,
                "events": r.outcome.events if r.ok else None,
                "ops": r.outcome.ops if r.ok else None,
                "metrics": dict(r.outcome.metrics) if r.ok else None,
            } for r in self.results],
            "aggregates": {
                label: {metric: {"mean": agg.mean, "stddev": agg.stddev,
                                 "values": list(agg.values)}
                        for metric, agg in metrics.items()}
                for label, metrics in self.aggregates().items()},
        }


# -- the runner -----------------------------------------------------------


def _src_root() -> str:
    return os.path.abspath(os.path.join(os.path.dirname(__file__),
                                        "..", ".."))


def _run_cell_inprocess(plan: SweepPlan, cell: SweepCell,
                        debug: bool) -> CellResult:
    try:
        outcome = _execute_cell(cell.experiment, cell.point.as_dict(),
                                cell.seed, plan.scale, debug, attempt=1)
    except Exception as exc:
        return CellResult(cell, None, attempts=1,
                          error=f"{type(exc).__name__}: {exc}")
    return CellResult(cell, outcome)


def _run_cells_parallel(plan: SweepPlan, cells: Sequence[SweepCell],
                        order: Sequence[int], debug: bool, workers: int,
                        retries: int, results: Dict[int, CellResult],
                        on_cell: Optional[Callable]) -> None:
    ctx = get_context("spawn")
    # Failed executions each cell may still absorb.  A broken pool
    # charges every affected cell one (the culprit is unknowable), but
    # quarantine then reruns each alone, so an innocent cell wins its
    # life back on the very next attempt.
    budget = {i: retries + 1 for i in order}
    attempts = {i: 0 for i in order}

    def finish(i: int, outcome: Optional[CellOutcome], error: Optional[str]):
        results[i] = CellResult(cells[i], outcome, attempts[i], error)
        if on_cell is not None:
            on_cell(results[i])

    pending = list(order)
    while pending:
        batch, pending = pending, []
        quarantine: List[int] = []
        with ProcessPoolExecutor(max_workers=min(workers, len(batch)),
                                 mp_context=ctx) as pool:
            futures = {}
            for i in batch:
                attempts[i] += 1
                futures[pool.submit(
                    _worker, _payload(plan, cells[i], debug,
                                      attempts[i]))] = i
            for future in as_completed(futures):
                i = futures[future]
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    budget[i] -= 1
                    quarantine.append(i)
                except Exception as exc:
                    budget[i] -= 1
                    error = f"{type(exc).__name__}: {exc}"
                    if budget[i] > 0:
                        pending.append(i)
                    else:
                        finish(i, None, error)
                else:
                    finish(i, outcome, None)
        # Quarantine: a worker died and took the pool with it.  Rerun
        # each affected cell alone in a fresh single-worker pool — a
        # solo crash is definitive blame.  Every quarantined cell gets
        # at least one solo run even with its budget exhausted (the
        # batch break charged innocents it cannot tell from the
        # culprit), so a bystander always wins its result back while
        # the true crasher fails after exactly its retry budget.
        for i in sorted(quarantine):
            solo_ran = False
            while i not in results:
                if budget[i] <= 0 and solo_ran:
                    finish(i, None, "worker crashed mid-cell "
                                    f"(SIGKILL/OOM) after {attempts[i]} "
                                    "attempts")
                    break
                attempts[i] += 1
                solo_ran = True
                with ProcessPoolExecutor(max_workers=1,
                                         mp_context=ctx) as solo:
                    try:
                        outcome = solo.submit(
                            _worker, _payload(plan, cells[i], debug,
                                              attempts[i])).result()
                    except BrokenProcessPool:
                        budget[i] -= 1
                    except Exception as exc:
                        budget[i] -= 1
                        if budget[i] <= 0:
                            finish(i, None, f"{type(exc).__name__}: {exc}")
                    else:
                        finish(i, outcome, None)


def _serial_equivalence_check(report: SweepReport, debug: bool,
                              count: int) -> None:
    """Rerun ``count`` completed cells in-process; digests must match."""
    ok = [r for r in report.results if r.ok]
    # Deterministic, scheduling-independent sample: rank by the hash of
    # the cell identity and take the first ``count``.
    ranked = sorted(ok, key=lambda r: hashlib.sha256(
        repr(r.cell.key).encode()).hexdigest())
    mismatches = []
    for result in ranked[:count]:
        rerun = _run_cell_inprocess(report.plan, result.cell, debug)
        report.serial_checked.append(result.cell.key)
        if not rerun.ok:
            mismatches.append(f"{result.cell.key}: in-process rerun "
                              f"failed: {rerun.error}")
        elif rerun.outcome.digest != result.outcome.digest:
            mismatches.append(
                f"{result.cell.key}: parallel digest "
                f"{result.outcome.digest[:16]}… != serial "
                f"{rerun.outcome.digest[:16]}…")
    if mismatches:
        raise SerialEquivalenceError(
            "parallel sweep diverged from the serial path:\n  "
            + "\n  ".join(mismatches))


def run_sweep(plan: SweepPlan, *, parallel: bool = True,
              workers: Optional[int] = None, retries: int = 1,
              serial_check: int = 0,
              schedule: Optional[Sequence[int]] = None,
              on_cell: Optional[Callable[[CellResult], None]] = None,
              ) -> SweepReport:
    """Run every cell of ``plan`` and merge the results.

    ``parallel=False`` is the serial reference path: the same cells,
    in canonical plan order, in this process.  ``schedule`` (parallel
    only) permutes the submission order — the report is always in plan
    order, and digests must be schedule-independent (tested).
    ``serial_check=k`` reruns ``k`` completed cells in-process and
    raises :class:`SerialEquivalenceError` on any digest mismatch.
    ``on_cell`` streams each :class:`CellResult` as it completes.
    """
    cells = list(plan.cells())
    if not cells:
        raise ValueError("plan has no cells")
    order = list(range(len(cells)))
    if schedule is not None:
        if sorted(schedule) != order:
            raise ValueError(
                f"schedule must be a permutation of 0..{len(cells) - 1}")
        order = list(schedule)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    debug = _resolve_debug(plan.debug)
    results: Dict[int, CellResult] = {}

    if not parallel:
        for i in order:
            results[i] = _run_cell_inprocess(plan, cells[i], debug)
            if on_cell is not None:
                on_cell(results[i])
        workers = 0
    else:
        workers = workers or max(1, min(len(cells), os.cpu_count() or 1))
        # Spawned workers import the tree from scratch: make sure they
        # can find it even when the parent runs off PYTHONPATH=src.
        saved_path = os.environ.get("PYTHONPATH")
        entries = (saved_path or "").split(os.pathsep) if saved_path else []
        if _src_root() not in entries:
            os.environ["PYTHONPATH"] = os.pathsep.join(
                [_src_root()] + entries)
        try:
            _run_cells_parallel(plan, cells, order, debug, workers,
                                retries, results, on_cell)
        finally:
            if saved_path is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = saved_path

    report = SweepReport(plan=plan,
                         results=[results[i] for i in range(len(cells))],
                         parallel=parallel, workers=workers)
    if serial_check and parallel:
        _serial_equivalence_check(report, debug, serial_check)
    return report


def write_report(report: SweepReport, path: str) -> None:
    """Dump a report as JSON (the merged-results artifact CI uploads)."""
    with open(path, "w") as fh:
        json.dump(report.to_json(), fh, indent=1)
        fh.write("\n")


# -- the harness's own test experiment ------------------------------------


_SELFTEST_LEAK: Optional[int] = None  # written by leaky cells, on purpose

# The selftest leak is watched so the debug-mode cell-state check can
# prove it catches a real module-global leak (tests/sweep/
# test_cell_state.py) — the runtime half of DET001.
watch_cell_state("repro.experiments.sweep._SELFTEST_LEAK",
                 lambda: _SELFTEST_LEAK)


def _selftest_cell(params: Dict[str, Any], seed: int,
                   scale: Scale) -> CellOutcome:
    """The sweep harness's built-in test experiment (tests/sweep/).

    A tiny read-only run with hooks that emulate misbehaving workers:

    * ``crash_attempts=N`` — SIGKILL the worker process on attempts
      1..N (the worker-crash/retry tests);
    * ``fail=True`` — raise a plain exception instead of crashing;
    * ``leak=True`` — after producing its result, pollute every global
      a sloppy worker could: flip ``REPRO_SIM_DEBUG``, plant an env
      knob a sibling would read, reseed the global ``random`` module
      and write a module global (the seed-isolation tests);
    * ``require_debug="1"`` — assert the pinned sanitizer mode arrived
      intact (fails the cell if a sibling's leak got through);
    * ``pid_salt=True`` — salt the digest with the worker's PID,
      emulating execution-environment-dependent results (the
      serial-equivalence check must catch this).

    The workload length reads ``REPRO_SWEEP_SELFTEST_BUMP`` from the
    environment, so an env leak from a sibling cell would visibly
    change this cell's digest — that is what makes the isolation tests
    meaningful rather than vacuous.
    """
    import random as _random  # simlint: disable=SIM003 deliberate leak under test
    import signal

    attempt = int(os.environ.get("REPRO_SWEEP_ATTEMPT", "1"))
    if attempt <= int(params.get("crash_attempts", 0)):
        os.kill(os.getpid(), signal.SIGKILL)  # a worker dying mid-cell
    if params.get("require_debug") is not None:
        got = os.environ.get("REPRO_SIM_DEBUG")
        if got != params["require_debug"]:
            raise AssertionError(
                f"REPRO_SIM_DEBUG={got!r} leaked into a sibling cell "
                f"(expected {params['require_debug']!r})")
    if params.get("fail"):
        raise RuntimeError("selftest cell asked to fail")

    bump = int(os.environ.get("REPRO_SWEEP_SELFTEST_BUMP", "0"))
    from repro.cluster import ClusterSpec, ExperimentSpec, run_experiment
    from repro.ramcloud.config import ServerConfig
    from repro.ycsb.workload import WORKLOAD_C
    spec = ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=int(params.get("servers", 1)),
            num_clients=int(params.get("clients", 1)),
            server_config=ServerConfig(replication_factor=0),
            seed=seed),
        workload=WORKLOAD_C.scaled(num_records=scale.num_records,
                                   ops_per_client=scale.ops_per_client
                                   + bump),
    )
    outcome = outcome_from_experiment(run_experiment(spec))
    if params.get("pid_salt"):
        salted = hashlib.sha256(
            f"{outcome.digest}:{os.getpid()}".encode()).hexdigest()  # simlint: disable=DET005 deliberately env-dependent digest under test
        outcome = CellOutcome(metrics=outcome.metrics, digest=salted,
                              events=outcome.events, ops=outcome.ops)

    if params.get("leak"):
        # Pollute on purpose; _execute_cell must contain all of it.
        os.environ["REPRO_SIM_DEBUG"] = (
            "0" if os.environ.get("REPRO_SIM_DEBUG") == "1" else "1")
        os.environ["REPRO_SWEEP_SELFTEST_BUMP"] = "50"
        _random.seed(0)  # simlint: disable=SIM003 deliberate leak under test
        global _SELFTEST_LEAK
        _SELFTEST_LEAK = seed  # simlint: disable=DET001 deliberate leak under test
    return outcome
