"""Extensions the paper names as future work (§X).

* **Request distributions** — "We consider as well evaluating the
  system with different request distributions": uniform vs YCSB's
  scrambled-zipfian vs latest on the read-heavy workload.
* **Network transport** — the companion study [24] examines the network
  dimension; we compare the paper's Infiniband-20G against Gigabit
  Ethernet on the same read-only workload.
* **Scans** — "one could think of scans to assess the indexing
  mechanism of the system": YCSB workload E over RAMCloud's MultiRead,
  and its interaction with concurrent updates.
* **Elastic sizing** — §IX's coordinator-driven scale-down: drain and
  power off surplus servers under light load, measure the watts saved.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.cluster import ClusterSpec, ExperimentSpec, repeat_experiment
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.hardware.specs import (
    GIGABIT_ETHERNET,
    GRID5000_NANCY_NODE,
    INFINIBAND_20G,
)
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_B, WORKLOAD_C, WORKLOAD_E

__all__ = ["run_request_distribution_extension", "run_transport_extension",
           "run_scan_extension", "run_elastic_sizing_extension",
           "run_correlated_failures_extension"]


def run_request_distribution_extension(scale: Scale = DEFAULT,
                                       distributions: Sequence[str] = (
                                           "uniform", "zipfian", "latest"),
                                       servers: int = 4, clients: int = 24,
                                       ) -> ComparisonTable:
    """Workloads under different request distributions, at saturation.

    Two opposing effects emerge:

    * read-only (C): skew imbalances per-server load, so the hottest
      master saturates first and aggregate throughput drops below
      uniform;
    * read-heavy (B): skew *concentrates the update contention* on a
      few masters, leaving the rest to serve cheap reads — aggregate
      throughput can exceed the uniform case.
    """
    table = ComparisonTable(
        "§X request distributions", f"throughput by request distribution "
        f"({servers} servers, {clients} clients, saturated)")
    for name, preset in (("C", WORKLOAD_C), ("B", WORKLOAD_B)):
        for distribution in distributions:
            workload = preset.scaled(
                num_records=scale.num_records,
                ops_per_client=scale.ops_per_client,
                request_distribution=distribution)
            spec = ExperimentSpec(
                cluster=ClusterSpec(
                    num_servers=servers, num_clients=clients,
                    server_config=ServerConfig(replication_factor=0)),
                workload=workload,
            )
            metrics, results = repeat_experiment(spec, scale.seeds)
            table.add(f"workload {name} / {distribution}", None,
                      metrics["throughput"].mean / 1000.0, "K",
                      note=f"CPU spread "
                           f"{min(results[0].cpu_util_per_node.values()):.0f}–"
                           f"{max(results[0].cpu_util_per_node.values()):.0f}%")
    table.note("read-only loses to imbalance under skew; read-heavy can "
               "gain because write contention concentrates on few masters")
    return table


def run_transport_extension(scale: Scale = DEFAULT,
                            servers: int = 5, clients: int = 10,
                            ) -> ComparisonTable:
    """Infiniband vs Gigabit Ethernet on read-only traffic.

    The paper runs everything on RAMCloud's Infiniband transport and
    defers the network dimension to [24]; this extension quantifies
    what the slower NIC costs in our substrate.
    """
    table = ComparisonTable(
        "§X transports", f"read-only throughput by transport "
        f"({servers} servers, {clients} clients)")
    for nic in (INFINIBAND_20G, GIGABIT_ETHERNET):
        machine = replace(GRID5000_NANCY_NODE, nic=nic)
        spec = ExperimentSpec(
            cluster=ClusterSpec(
                num_servers=servers, num_clients=clients,
                server_config=ServerConfig(replication_factor=0),
                machine=machine),
            workload=WORKLOAD_C.scaled(num_records=scale.num_records,
                                       ops_per_client=scale.ops_per_client),
        )
        metrics, results = repeat_experiment(spec, scale.seeds[:1])
        table.add(nic.name, None, metrics["throughput"].mean / 1000.0, "K",
                  note=f"mean latency "
                       f"{results[0].mean_latency() * 1e6:.1f} µs")
    table.note("one-way latency 2 µs vs 30 µs: Ethernet roughly doubles "
               "the closed-loop op time, halving per-client throughput")
    return table


def run_scan_extension(scale: Scale = DEFAULT,
                       scan_lengths: Sequence[int] = (10, 100, 500),
                       servers: int = 5, clients: int = 10,
                       ) -> ComparisonTable:
    """Workload E (95 % scans / 5 % inserts) over MultiRead, by scan
    length — the indexing-mechanism assessment the paper defers (§X).

    Throughput is reported in *records* per second (a scan of length L
    returns L records) so lengths are comparable.
    """
    table = ComparisonTable(
        "§X scans", f"workload E: records/s by max scan length "
        f"({servers} servers, {clients} clients)")
    for max_len in scan_lengths:
        workload = WORKLOAD_E.scaled(
            num_records=scale.num_records,
            ops_per_client=max(50, scale.ops_per_client // 4),
            max_scan_length=max_len)
        spec = ExperimentSpec(
            cluster=ClusterSpec(
                num_servers=servers, num_clients=clients,
                server_config=ServerConfig(replication_factor=0)),
            workload=workload,
        )
        metrics, _results = repeat_experiment(spec, scale.seeds[:1])
        # A scan of length L returns L records: expected records per op.
        records_per_op = (workload.scan_proportion * (max_len + 1) / 2
                          + workload.insert_proportion)
        table.add(f"max scan length {max_len}", None,
                  metrics["throughput"].mean / 1000.0, "K ops/s",
                  note=f"≈{metrics['throughput'].mean * records_per_op:,.0f}"
                       " records/s")
    table.note("longer scans amortize per-RPC costs: scans/s falls, "
               "records/s rises")
    return table


def run_elastic_sizing_extension(scale: Scale = DEFAULT,
                                 servers: int = 6,
                                 keep: int = 3) -> ComparisonTable:
    """§IX elastic scale-down: drain and power off surplus servers under
    light read-only load; report the fleet watts before and after."""
    from repro.cluster import Cluster
    from repro.sim.distributions import RandomStream
    from repro.ycsb.client import YcsbClient

    cluster = Cluster(ClusterSpec(
        num_servers=servers, num_clients=2,
        server_config=ServerConfig(replication_factor=0), seed=3))
    table_id = cluster.create_table("cache")
    cluster.preload(table_id, scale.num_records, 1024)
    cluster.start_metering(interval=0.05)

    def run_load(tag):
        clients = [YcsbClient(cluster.sim, rc, table_id,
                              WORKLOAD_C.scaled(
                                  num_records=scale.num_records,
                                  ops_per_client=scale.ops_per_client),
                              RandomStream(3, f"{tag}{i}"))
                   for i, rc in enumerate(cluster.clients)]
        procs = [cluster.sim.process(c.run()) for c in clients]
        done = cluster.sim.all_of(procs)
        while not done.triggered:
            cluster.sim.step()
        total = sum(c.stats.total_ops for c in clients)
        span = (max(c.stats.finished_at for c in clients)
                - min(c.stats.started_at for c in clients))
        return total / span

    def fleet_watts():
        cluster.run(until=cluster.sim.now + 1.0)
        now = cluster.sim.now
        return sum(
            node.power.series.window(now - 0.5, now).mean()
            if len(node.power.series.window(now - 0.5, now)) else 0.0
            for node in cluster.server_nodes)

    before_thr = run_load("warm")
    before_watts = fleet_watts()

    def orchestrate():
        for i in range(keep, servers):
            yield from cluster.coordinator.decommission_server(f"server{i}")

    proc = cluster.sim.process(orchestrate())
    while proc.is_alive:
        cluster.sim.step()
    after_thr = run_load("post")
    after_watts = fleet_watts()

    table = ComparisonTable(
        "§IX elastic sizing", f"scale {servers}→{keep} servers under "
        "light read-only load")
    table.add("fleet power before", None, before_watts, " W")
    table.add("fleet power after", None, after_watts, " W")
    table.add("power saved", None,
              100.0 * (1 - after_watts / before_watts), " %")
    table.add("throughput before", None, before_thr / 1000.0, "K")
    table.add("throughput after", None, after_thr / 1000.0, "K")
    table.note("live tablet migration: no crash recovery, no data loss; "
               "the §IX 'smart coordinator' the paper proposes")
    return table


def run_correlated_failures_extension(scale: Scale = DEFAULT,
                                      rfs: Sequence[int] = (1, 2, 3),
                                      simultaneous: int = 3,
                                      servers: int = 8,
                                      trials: int = 5) -> ComparisonTable:
    """Correlated failures — the paper's closing concern (§X: "An
    interesting aspect to consider then would be correlated failures").

    Kill ``simultaneous`` servers at the same instant (a rack/PDU event)
    and count how often some segment lost the master AND every replica.
    Random replica placement makes loss likely at low RF — the Copysets
    problem the paper cites [28].
    """
    from repro.cluster import Cluster

    table = ComparisonTable(
        "§X correlated failures",
        f"{simultaneous} simultaneous crashes on {servers} servers: "
        "segment-loss probability by RF")
    record_size = scale.recovery_record_size
    for rf in rfs:
        loss_events = 0
        lost_segments = 0
        total_segments = 0
        for trial in range(trials):
            cluster = Cluster(ClusterSpec(
                num_servers=servers, num_clients=0,
                server_config=ServerConfig(replication_factor=rf),
                seed=100 + trial, failure_detection=True))
            table_id = cluster.create_table("t")
            cluster.preload(
                table_id,
                64 * 1024 * 1024 * servers // record_size, record_size)
            cluster.run(until=1.0)
            victims = [cluster.kill_server() for _ in range(simultaneous)]
            total_segments += sum(len(v.log.segments) for v in victims)
            cluster.run(until=400.0)
            recoveries = cluster.coordinator.recoveries
            lost = sum(r.lost_segments for r in recoveries)
            lost_segments += lost
            if lost:
                loss_events += 1
        table.add(f"RF {rf}: trials with data loss", None,
                  100.0 * loss_events / trials, " %")
        table.add(f"RF {rf}: segments lost", None,
                  100.0 * lost_segments / max(total_segments, 1), " %")
    table.note(f"{trials} seeded trials per RF; a segment dies only if "
               f"the master AND all RF backups are among the "
               f"{simultaneous} dead machines, so RF ≥ {simultaneous} is "
               "safe here — but random placement makes lower RFs lose "
               "data far more often than copyset placement would [28]")
    return table


def main():  # pragma: no cover - console entry point
    from repro.experiments.scale import active_scale
    scale = active_scale()
    print(run_request_distribution_extension(scale).render())
    print()
    print(run_transport_extension(scale).render())
    print()
    print(run_scan_extension(scale).render())
    print()
    print(run_elastic_sizing_extension(scale).render())
    print()
    print(run_correlated_failures_extension(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
