"""§VI — replication's impact on performance and energy efficiency.

Reproduces Fig. 5 (throughput vs replication factor for 20 servers),
Fig. 6a (throughput vs RF for 10–40 servers at 60 clients), Fig. 6b
(total energy for the same grid), Fig. 7 (average power per node, 40
servers) and Fig. 8 (energy efficiency vs RF).

All runs use the update-heavy workload A, as in the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec, ExperimentSpec, repeat_experiment
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.experiments.sweep import (
    SweepPlan,
    SweepPoint,
    SweepReport,
    outcome_from_experiment,
)
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_A

__all__ = ["run_fig5_replication", "run_fig6_replication_scale",
           "run_fig7_power_rf", "run_fig8_efficiency_rf",
           "fig5_sweep_plan"]

# Fig. 5 (20 servers): exact where stated in the text, digitized (~)
# elsewhere.  Kop/s.
PAPER_FIG5_KOPS = {
    (10, 1): 78, (10, 2): 65, (10, 3): 52, (10, 4): 43,
    (30, 1): 140, (30, 2): 115, (30, 3): 75, (30, 4): 41,
    (60, 1): 160, (60, 2): 120, (60, 3): 80, (60, 4): 50,
}
# Fig. 6a (60 clients): RF>2 at 10 servers crashed in the paper (None).
PAPER_FIG6A_KOPS = {
    (10, 1): 128, (10, 2): 95, (10, 3): None, (10, 4): None,
    (20, 1): 160, (20, 2): 120, (20, 3): 80, (20, 4): 50,
    (30, 1): 200, (30, 2): 150, (30, 3): 105, (30, 4): 70,
    (40, 1): 237, (40, 2): 180, (40, 3): 130, (40, 4): 90,
}
# Fig. 6b (total energy, kJ): anchors from the text — 20 servers: 81 kJ
# at RF1 rising 351 % to 285 kJ at RF4; 40 servers rises 345 %.
PAPER_FIG6B_KILOJOULES = {
    (20, 1): 81, (20, 4): 285,
    (30, 1): 94, (30, 4): 330,
    (40, 1): 104, (40, 4): 463,
}
# Fig. 7 (40 servers, 60 clients): 103 W at RF1 up to 115 W at RF4.
PAPER_FIG7_WATTS = {1: 103, 2: 108, 3: 112, 4: 115}
# Fig. 8 (op/joule): text gives RF1 values 1500/1900/2300 for 20/30/40
# servers, declining toward ~500 at RF4.
PAPER_FIG8_OPS_PER_JOULE = {
    (20, 1): 1500, (20, 4): 550,
    (30, 1): 1900, (30, 4): 600,
    (40, 1): 2300, (40, 4): 650,
}


def _spec(servers: int, clients: int, rf: int, scale: Scale,
          give_up_after: Optional[float] = 5.0) -> ExperimentSpec:
    return ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=clients,
            server_config=ServerConfig(replication_factor=rf)),
        workload=WORKLOAD_A.scaled(num_records=scale.num_records,
                                   ops_per_client=scale.ops_per_client),
        give_up_after=give_up_after,
    )


def _measure(servers: int, clients: int, rf: int, scale: Scale):
    metrics, results = repeat_experiment(
        _spec(servers, clients, rf, scale), scale.seeds)
    crashed = any(r.crashed for r in results)
    return metrics, crashed


def _fig5_cell(params: Dict[str, object], seed: int, scale: Scale):
    """Sweep cell runner: one (servers, clients, rf, seed) point of the
    §VI replication grid — the exact run ``repeat_experiment`` performs."""
    from repro.cluster import run_experiment
    spec = _spec(int(params["servers"]), int(params["clients"]),
                 int(params["rf"]), scale)
    spec = spec.with_(cluster=spec.cluster.with_(seed=seed))
    return outcome_from_experiment(run_experiment(spec))


def fig5_sweep_plan(scale: Scale = DEFAULT,
                    seeds: Optional[Sequence[int]] = None,
                    client_counts: Sequence[int] = (10, 30, 60),
                    rfs: Sequence[int] = (1, 2, 3, 4),
                    servers: int = 20) -> SweepPlan:
    """The Fig. 5 grid as a :class:`SweepPlan`."""
    points = tuple(
        SweepPoint.of(f"{clients} clients / RF {rf}",
                      servers=servers, clients=clients, rf=rf)
        for clients in client_counts for rf in rfs)
    return SweepPlan("fig5", points, tuple(seeds or scale.seeds), scale)


SWEEP_CELLS = {"fig5": _fig5_cell}
SWEEP_PLANS = {"fig5": fig5_sweep_plan}


def run_fig5_replication(scale: Scale = DEFAULT,
                         client_counts: Sequence[int] = (10, 30, 60),
                         rfs: Sequence[int] = (1, 2, 3, 4),
                         servers: int = 20,
                         sweep: Optional[SweepReport] = None,
                         ) -> ComparisonTable:
    """Fig. 5: throughput of 20 servers vs replication factor.

    Pass a merged ``sweep`` (from :func:`fig5_sweep_plan`) to render
    from its aggregates instead of re-running the cells serially.
    """
    table = ComparisonTable(
        "Fig. 5", f"workload A throughput vs RF, {servers} servers (Kop/s)")
    merged = sweep.checked_aggregates() if sweep is not None else None
    for clients in client_counts:
        for rf in rfs:
            if merged is not None:
                metrics = merged[f"{clients} clients / RF {rf}"]
                crashed = any(v > 0 for v in metrics["crashed"].values)
            else:
                metrics, crashed = _measure(servers, clients, rf, scale)
            table.add(f"{clients} clients / RF {rf}",
                      PAPER_FIG5_KOPS.get((clients, rf)),
                      metrics["throughput"].mean / 1000.0, "K",
                      note="run crashed (timeouts)" if crashed else "")
    return table


def run_fig6_replication_scale(scale: Scale = DEFAULT,
                               server_counts: Sequence[int] = (10, 20, 30, 40),
                               rfs: Sequence[int] = (1, 2, 3, 4),
                               clients: int = 60,
                               ) -> Tuple[ComparisonTable, ComparisonTable]:
    """Fig. 6a (throughput) and Fig. 6b (total energy), 60 clients."""
    throughput = ComparisonTable(
        "Fig. 6a", f"workload A throughput vs RF at {clients} clients (Kop/s)")
    energy = ComparisonTable(
        "Fig. 6b", "total energy vs RF (ratios; absolute kJ is run-scaled)")
    energy_measured: Dict[Tuple[int, int], float] = {}
    for servers in server_counts:
        for rf in rfs:
            metrics, crashed = _measure(servers, clients, rf, scale)
            paper = PAPER_FIG6A_KOPS.get((servers, rf))
            note = ""
            if paper is None:
                note = "paper run crashed (excessive timeouts)"
            if crashed:
                note = (note + "; " if note else "") + "our run crashed too"
            throughput.add(f"{servers} servers / RF {rf}", paper,
                           metrics["throughput"].mean / 1000.0, "K",
                           note=note)
            energy_measured[(servers, rf)] = (
                metrics["total_energy_joules"].mean)
    for servers in server_counts:
        base = energy_measured.get((servers, min(rfs)))
        peak = energy_measured.get((servers, max(rfs)))
        paper_base = PAPER_FIG6B_KILOJOULES.get((servers, min(rfs)))
        paper_peak = PAPER_FIG6B_KILOJOULES.get((servers, max(rfs)))
        paper_ratio = (paper_peak / paper_base
                       if paper_base and paper_peak else None)
        if base and peak:
            energy.add(f"{servers} servers energy ratio RF4/RF1",
                       paper_ratio, peak / base, "x")
            energy.add(f"{servers} servers energy RF1 (this run)",
                       None, base / 1000.0, " kJ")
    energy.note("paper: RF 1→4 costs 3.51x at 20 servers, 3.45x at 40 "
                "servers (§VI)")
    return throughput, energy


def run_fig7_power_rf(scale: Scale = DEFAULT,
                      rfs: Sequence[int] = (1, 2, 3, 4),
                      servers: int = 40, clients: int = 60,
                      ) -> ComparisonTable:
    """Fig. 7: average power per node of 40 servers vs RF."""
    table = ComparisonTable(
        "Fig. 7", f"average power per node, {servers} servers / "
        f"{clients} clients (W)")
    for rf in rfs:
        metrics, _crashed = _measure(servers, clients, rf, scale)
        table.add(f"RF {rf}", PAPER_FIG7_WATTS.get(rf),
                  metrics["avg_power_per_server"].mean, "W")
    return table


def run_fig8_efficiency_rf(scale: Scale = DEFAULT,
                           server_counts: Sequence[int] = (20, 30, 40),
                           rfs: Sequence[int] = (1, 2, 3, 4),
                           clients: int = 60) -> ComparisonTable:
    """Fig. 8: energy efficiency vs RF — more servers are MORE efficient
    with replication on (Finding 4, the reverse of Finding 1)."""
    table = ComparisonTable(
        "Fig. 8", f"energy efficiency vs RF at {clients} clients (op/joule)")
    measured: Dict[Tuple[int, int], float] = {}
    for servers in server_counts:
        for rf in rfs:
            metrics, _crashed = _measure(servers, clients, rf, scale)
            eff = metrics["energy_efficiency"].mean
            measured[(servers, rf)] = eff
            table.add(f"{servers} servers / RF {rf}",
                      PAPER_FIG8_OPS_PER_JOULE.get((servers, rf)), eff,
                      " op/J")
    # Finding 4 check: at RF1, efficiency increases with server count.
    if all((s, 1) in measured for s in server_counts):
        ordered = [measured[(s, 1)] for s in sorted(server_counts)]
        table.note("Finding 4 (more servers → better efficiency at RF1): "
                   + ("HOLDS" if ordered == sorted(ordered) else "VIOLATED")
                   + f" ({', '.join(f'{v:.0f}' for v in ordered)} op/J)")
    table.note("the paper's absolute op/J scale cannot be reconciled with "
               "its own Fig. 6a/6b (which imply ≈74 op/J for the same "
               "runs); compare orderings, not absolutes")
    return table


def main():  # pragma: no cover - console entry point
    from repro.experiments.scale import active_scale
    scale = active_scale()
    print(run_fig5_replication(scale).render())
    print()
    fig6a, fig6b = run_fig6_replication_scale(scale)
    print(fig6a.render())
    print()
    print(fig6b.render())
    print()
    print(run_fig7_power_rf(scale).render())
    print()
    print(run_fig8_efficiency_rf(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
