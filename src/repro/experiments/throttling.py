"""§IX — request throttling (Fig. 13).

"while limiting the throughput at client level we could run the
scenario with 10 servers presented in Section VI while avoiding crashes
and having linear throughput increase."
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster import ClusterSpec, ExperimentSpec, repeat_experiment
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_A

__all__ = ["run_fig13_throttling"]

# Fig. 13: perfectly linear — clients × rate (op/s).
PAPER_FIG13_OPS = {
    (200, 10): 2_000, (200, 30): 6_000, (200, 60): 12_000,
    (500, 10): 5_000, (500, 30): 15_000, (500, 60): 30_000,
}


def run_fig13_throttling(scale: Scale = DEFAULT,
                         rates: Sequence[float] = (200.0, 500.0),
                         client_counts: Sequence[int] = (10, 30, 60),
                         servers: int = 10, rf: int = 2) -> ComparisonTable:
    """Fig. 13: throttled update-heavy clients on 10 servers at RF 2."""
    table = ComparisonTable(
        "Fig. 13", f"throttled workload A throughput "
        f"({servers} servers, RF {rf})")
    for rate in rates:
        for clients in client_counts:
            # Each client must run long enough to establish the rate:
            # ops_per_client / rate seconds of pacing.
            ops = max(50, min(scale.ops_per_client, 300))
            spec = ExperimentSpec(
                cluster=ClusterSpec(
                    num_servers=servers, num_clients=clients,
                    server_config=ServerConfig(replication_factor=rf)),
                workload=WORKLOAD_A.scaled(
                    num_records=scale.num_records, ops_per_client=ops,
                ).throttled(rate),
            )
            metrics, _results = repeat_experiment(spec, scale.seeds[:1])
            table.add(f"rate {rate:.0f}/s / {clients} clients",
                      PAPER_FIG13_OPS.get((rate, clients)),
                      metrics["throughput"].mean, " op/s")
    table.note("linear in clients at both rates = the cluster is never "
               "saturated, so no timeouts/crashes (§IX)")
    return table


def main():  # pragma: no cover - console entry point
    from repro.experiments.scale import active_scale
    print(run_fig13_throttling(active_scale()).render())


if __name__ == "__main__":  # pragma: no cover
    main()
