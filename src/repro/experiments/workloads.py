"""§V — the energy footprint with read-update workloads.

Reproduces Table II (aggregated throughput of 10 servers for workloads
A/B/C at 10–90 clients), Fig. 3 (scalability factors vs the 10-client
baseline), Fig. 4a (average power per node for 20 servers) and Fig. 4b
(total energy at 90 clients).  Replication is disabled throughout, as
in the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec, ExperimentSpec, repeat_experiment
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.experiments.sweep import (
    SweepPlan,
    SweepPoint,
    SweepReport,
    outcome_from_experiment,
)
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WorkloadSpec

__all__ = ["run_table2_throughput", "run_fig3_scalability", "run_fig4_power",
           "fig4_sweep_plan"]

WORKLOADS = {"A": WORKLOAD_A, "B": WORKLOAD_B, "C": WORKLOAD_C}

# Table II, exact values from the paper (Kop/s).
PAPER_TABLE2_KOPS = {
    ("A", 10): 98, ("A", 20): 106, ("A", 30): 64, ("A", 60): 63, ("A", 90): 64,
    ("B", 10): 236, ("B", 20): 454, ("B", 30): 622, ("B", 60): 816,
    ("B", 90): 844,
    ("C", 10): 236, ("C", 20): 482, ("C", 30): 753, ("C", 60): 1433,
    ("C", 90): 2004,
}
# Fig. 4a, digitized (W per node, 20 servers).
PAPER_FIG4A_WATTS = {
    ("C", 10): 82, ("C", 30): 82, ("C", 60): 82, ("C", 90): 93,
    ("B", 10): 92, ("B", 30): 92, ("B", 60): 92, ("B", 90): 100,
    ("A", 10): 90, ("A", 30): 95, ("A", 60): 103, ("A", 90): 110,
}
# Fig. 4b, digitized (total energy at 90 clients, kJ): B is +28 % over C,
# A is +492 % over C (both ratios are stated exactly in the text).
PAPER_FIG4B_KILOJOULES = {"C": 25.0, "B": 32.0, "A": 148.0}


def _spec(workload: WorkloadSpec, servers: int, clients: int,
          scale: Scale) -> ExperimentSpec:
    return ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=clients,
            server_config=ServerConfig(replication_factor=0)),
        workload=workload.scaled(num_records=scale.num_records,
                                 ops_per_client=scale.ops_per_client),
    )


def run_table2_throughput(scale: Scale = DEFAULT,
                          client_counts: Sequence[int] = (10, 20, 30, 60, 90),
                          workload_names: Sequence[str] = ("A", "B", "C"),
                          servers: int = 10,
                          ) -> Tuple[ComparisonTable,
                                     Dict[Tuple[str, int], float]]:
    """Table II: throughput of 10 servers for workloads A, B, C."""
    table = ComparisonTable(
        "Table II", f"aggregated throughput, {servers} servers (Kop/s)")
    measured: Dict[Tuple[str, int], float] = {}
    for name in workload_names:
        for clients in client_counts:
            metrics, _r = repeat_experiment(
                _spec(WORKLOADS[name], servers, clients, scale), scale.seeds)
            kops = metrics["throughput"].mean / 1000.0
            measured[(name, clients)] = kops
            table.add(f"workload {name} / {clients} clients",
                      PAPER_TABLE2_KOPS.get((name, clients)), kops, "K")
    table.note("replication disabled; 100 K records scaled to "
               f"{scale.num_records}")
    return table, measured


def run_fig3_scalability(scale: Scale = DEFAULT,
                         client_counts: Sequence[int] = (10, 20, 30, 60, 90),
                         ) -> ComparisonTable:
    """Fig. 3: throughput scaling factor relative to 10 clients.

    The paper's reading: read-only scales perfectly (factor ≈
    clients/10), read-heavy collapses between 30 and 60 clients,
    update-heavy never scales at all.
    """
    _table2, measured = run_table2_throughput(scale, client_counts)
    baseline = client_counts[0]
    table = ComparisonTable(
        "Fig. 3", f"scalability factor vs {baseline}-client baseline")
    for name in ("C", "B", "A"):
        base_paper = PAPER_TABLE2_KOPS.get((name, baseline))
        base_measured = measured[(name, baseline)]
        for clients in client_counts:
            paper_point = PAPER_TABLE2_KOPS.get((name, clients))
            paper_factor = (paper_point / base_paper
                            if paper_point and base_paper else None)
            measured_factor = measured[(name, clients)] / base_measured
            table.add(f"workload {name} / {clients} clients",
                      paper_factor, measured_factor, "x",
                      note=f"perfect = {clients / baseline:.0f}x")
    return table


def _fig4_cell(params: Dict[str, object], seed: int, scale: Scale):
    """Sweep cell runner: one (workload, servers, clients, seed) point
    of the §V grid — the exact run ``repeat_experiment`` performs."""
    from repro.cluster import run_experiment
    spec = _spec(WORKLOADS[str(params["workload"])],
                 int(params["servers"]), int(params["clients"]), scale)
    spec = spec.with_(cluster=spec.cluster.with_(seed=seed))
    return outcome_from_experiment(run_experiment(spec))


def fig4_sweep_plan(scale: Scale = DEFAULT,
                    seeds: Optional[Sequence[int]] = None,
                    client_counts: Sequence[int] = (10, 30, 60, 90),
                    servers: int = 20,
                    workload_names: Sequence[str] = ("C", "B", "A"),
                    ) -> SweepPlan:
    """The Fig. 4a/4b grid as a :class:`SweepPlan`."""
    points = tuple(
        SweepPoint.of(f"workload {name} / {clients} clients",
                      workload=name, servers=servers, clients=clients)
        for name in workload_names for clients in client_counts)
    return SweepPlan("fig4", points, tuple(seeds or scale.seeds), scale)


SWEEP_CELLS = {"fig4": _fig4_cell}
SWEEP_PLANS = {"fig4": fig4_sweep_plan}


def run_fig4_power(scale: Scale = DEFAULT,
                   client_counts: Sequence[int] = (10, 30, 60, 90),
                   servers: int = 20,
                   sweep: Optional[SweepReport] = None,
                   ) -> Tuple[ComparisonTable, ComparisonTable]:
    """Fig. 4a (power per node vs clients) and Fig. 4b (total energy at
    90 clients, same total work per configuration).

    Pass a merged ``sweep`` (from :func:`fig4_sweep_plan`) to render
    from its aggregates instead of re-running the cells serially.
    """
    power = ComparisonTable(
        "Fig. 4a", f"average power per node, {servers} servers (W)")
    energy = ComparisonTable(
        "Fig. 4b", "total energy at 90 clients (kJ, scaled run)")
    energy_measured: Dict[str, float] = {}
    merged = sweep.checked_aggregates() if sweep is not None else None
    for name in ("C", "B", "A"):
        for clients in client_counts:
            if merged is not None:
                metrics = merged[f"workload {name} / {clients} clients"]
            else:
                metrics, _r = repeat_experiment(
                    _spec(WORKLOADS[name], servers, clients, scale),
                    scale.seeds)
            power.add(f"workload {name} / {clients} clients",
                      PAPER_FIG4A_WATTS.get((name, clients)),
                      metrics["avg_power_per_server"].mean, "W")
            if clients == max(client_counts):
                energy_measured[name] = metrics["total_energy_joules"].mean
    # Our runs are scaled down, so absolute joules are not comparable —
    # compare the paper's stated ratios instead.
    c_joules = energy_measured.get("C")
    for name in ("C", "B", "A"):
        joules = energy_measured.get(name)
        if joules is None or c_joules is None:
            continue
        energy.add(f"workload {name} energy ratio vs C",
                   PAPER_FIG4B_KILOJOULES[name] / PAPER_FIG4B_KILOJOULES["C"],
                   joules / c_joules, "x")
        energy.add(f"workload {name} total energy (this run)",
                   None, joules / 1000.0, " kJ")
    energy.note("paper ratios: B consumes 28 % more than C, A consumes "
                "4.92x C (§V)")
    return power, energy


def main():  # pragma: no cover - console entry point
    from repro.experiments.scale import active_scale
    scale = active_scale()
    table2, _measured = run_table2_throughput(scale)
    print(table2.render())
    print()
    print(run_fig3_scalability(scale).render())
    print()
    fig4a, fig4b = run_fig4_power(scale)
    print(fig4a.render())
    print()
    print(fig4b.render())


if __name__ == "__main__":  # pragma: no cover
    main()
