"""§IV — the energy footprint of peak performance.

Reproduces Fig. 1a (aggregated read-only throughput), Fig. 1b (average
power per server), Table I (per-node CPU usage) and Fig. 2 (energy
efficiency), with the paper's methodology: replication disabled,
read-only workload, uniform data and request distribution, one client
per machine, Infiniband.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec, ExperimentSpec, repeat_experiment
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.experiments.sweep import (
    SweepPlan,
    SweepPoint,
    SweepReport,
    outcome_from_experiment,
)
from repro.ramcloud.config import ServerConfig
from repro.ycsb.workload import WORKLOAD_C

__all__ = ["run_fig1_peak", "run_table1_cpu", "run_fig2_efficiency",
           "fig1_sweep_plan"]

# Paper values.  Text-sourced numbers are exact; curve points without a
# number in the text are digitized from the figures (marked ~ in notes).
PAPER_FIG1A_KOPS = {  # (servers, clients) → Kop/s
    (1, 1): 30, (1, 10): 300, (1, 30): 372,
    (5, 1): 30, (5, 10): 310, (5, 30): 900,
    (10, 1): 30, (10, 10): 310, (10, 30): 910,
}
PAPER_FIG1B_WATTS = {  # (servers, clients) → W/server
    (1, 1): 92, (1, 10): 127, (1, 30): 127,
    (5, 1): 93, (5, 10): 124, (5, 30): 124,
    (10, 1): 95, (10, 10): 122, (10, 30): 122,
}
PAPER_TABLE1_CPU = {  # (servers, clients) → average CPU %
    (1, 0): 25.0, (1, 1): 49.81, (1, 2): 74.16, (1, 3): 79.66,
    (1, 4): 89.80, (1, 5): 94.34, (1, 10): 98.35, (1, 30): 99.26,
    (5, 1): 49.7, (5, 5): 85.4, (5, 10): 97.2, (5, 30): 97.0,
    (10, 1): 49.8, (10, 5): 76.4, (10, 10): 92.5, (10, 30): 95.4,
}
PAPER_FIG2_OPS_PER_JOULE = {  # (servers, clients) → op/joule
    (1, 1): 320, (1, 10): 2400, (1, 30): 3000,
    (5, 1): 65, (5, 10): 500, (5, 30): 1450,
    (10, 1): 32, (10, 10): 250, (10, 30): 395,
}


def _peak_spec(servers: int, clients: int, scale: Scale,
               seed: int = 1) -> ExperimentSpec:
    return ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=clients,
            server_config=ServerConfig(replication_factor=0),
            seed=seed),
        workload=WORKLOAD_C.scaled(num_records=scale.num_records,
                                   ops_per_client=scale.ops_per_client),
    )


def _fig1_cell(params: Dict[str, object], seed: int,
               scale: Scale):
    """Sweep cell runner: one (servers, clients, seed) point of the
    §IV read-only grid — the exact run ``repeat_experiment`` performs."""
    from repro.cluster import run_experiment
    result = run_experiment(_peak_spec(int(params["servers"]),
                                       int(params["clients"]),
                                       scale, seed=seed))
    return outcome_from_experiment(result)


def fig1_sweep_plan(scale: Scale = DEFAULT,
                    seeds: Optional[Sequence[int]] = None,
                    server_counts: Sequence[int] = (1, 5, 10),
                    client_counts: Sequence[int] = (1, 10, 30),
                    ) -> SweepPlan:
    """The Fig. 1/Fig. 2 grid as a :class:`SweepPlan` (one sweep feeds
    both runners — they measure the same cells)."""
    points = tuple(
        SweepPoint.of(f"{servers} servers / {clients} clients",
                      servers=servers, clients=clients)
        for servers in server_counts for clients in client_counts)
    return SweepPlan("fig1", points, tuple(seeds or scale.seeds), scale)


SWEEP_CELLS = {"fig1": _fig1_cell}
SWEEP_PLANS = {"fig1": fig1_sweep_plan}


def run_fig1_peak(scale: Scale = DEFAULT,
                  server_counts: Sequence[int] = (1, 5, 10),
                  client_counts: Sequence[int] = (1, 10, 30),
                  sweep: Optional[SweepReport] = None,
                  ) -> Tuple[ComparisonTable, ComparisonTable]:
    """Fig. 1a (throughput) and Fig. 1b (average power per server).

    Pass a merged ``sweep`` (from :func:`fig1_sweep_plan` through
    :func:`~repro.experiments.sweep.run_sweep`) to render from its
    aggregates instead of re-running the cells serially — bit-identical
    output, parallel wall-clock.
    """
    throughput = ComparisonTable(
        "Fig. 1a", "read-only aggregated throughput (Kop/s)")
    power = ComparisonTable(
        "Fig. 1b", "average power per server (W)")
    merged = sweep.checked_aggregates() if sweep is not None else None
    for servers in server_counts:
        for clients in client_counts:
            label = f"{servers} servers / {clients} clients"
            if merged is not None:
                metrics = merged[label]
            else:
                metrics, _results = repeat_experiment(
                    _peak_spec(servers, clients, scale), scale.seeds)
            throughput.add(label,
                           PAPER_FIG1A_KOPS.get((servers, clients)),
                           metrics["throughput"].mean / 1000.0, "K")
            power.add(label,
                      PAPER_FIG1B_WATTS.get((servers, clients)),
                      metrics["avg_power_per_server"].mean, "W")
    throughput.note("paper points without an exact number in the text "
                    "are digitized from the figure")
    power.note("power model calibrated on the paper's (CPU%, W) anchors "
               "— DESIGN.md §4")
    return throughput, power


def run_table1_cpu(scale: Scale = DEFAULT,
                   grid: Sequence[Tuple[int, int]] = (
                       (1, 0), (1, 1), (1, 2), (1, 3), (1, 4), (1, 5),
                       (1, 10), (1, 30), (5, 5), (5, 30), (10, 5), (10, 30)),
                   ) -> ComparisonTable:
    """Table I: average CPU usage per node for the read-only grid."""
    table = ComparisonTable(
        "Table I", "average per-node CPU usage, read-only workload (%)")
    for servers, clients in grid:
        if clients == 0:
            # Idle measurement: no workload, just the running servers.
            from repro.cluster import Cluster
            cluster = Cluster(ClusterSpec(
                num_servers=servers, num_clients=0,
                server_config=ServerConfig(replication_factor=0)))
            cluster.start_metering()
            cluster.run(until=5.0)
            measured = sum(
                n.cpu.utilization_between(0.0, 5.0)
                for n in cluster.server_nodes) / servers
        else:
            metrics, results = repeat_experiment(
                _peak_spec(servers, clients, scale), scale.seeds)
            measured = sum(r.cpu_util_avg for r in results) / len(results)
        table.add(f"{servers} servers / {clients} clients",
                  PAPER_TABLE1_CPU.get((servers, clients)), measured, "%")
    table.note("the idle row is the pinned dispatch core: 1 of 4 cores "
               "busy-polling = 25 %")
    return table


def run_fig2_efficiency(scale: Scale = DEFAULT,
                        server_counts: Sequence[int] = (1, 5, 10),
                        client_counts: Sequence[int] = (1, 10, 30),
                        sweep: Optional[SweepReport] = None,
                        ) -> ComparisonTable:
    """Fig. 2: energy efficiency (operations per joule).

    The same grid as Fig. 1, so the same merged ``sweep`` serves both.
    """
    table = ComparisonTable("Fig. 2", "energy efficiency (op/joule)")
    measured_cache: Dict[Tuple[int, int], float] = {}
    merged = sweep.checked_aggregates() if sweep is not None else None
    for servers in server_counts:
        for clients in client_counts:
            if merged is not None:
                metrics = merged[f"{servers} servers / {clients} clients"]
            else:
                metrics, _results = repeat_experiment(
                    _peak_spec(servers, clients, scale), scale.seeds)
            eff = metrics["energy_efficiency"].mean
            measured_cache[(servers, clients)] = eff
            table.add(f"{servers} servers / {clients} clients",
                      PAPER_FIG2_OPS_PER_JOULE.get((servers, clients)),
                      eff, " op/J")
    # The paper's headline: 1 server at 30 clients is ≈7.6× more
    # efficient than 10 servers at 30 clients.
    if (1, 30) in measured_cache and (10, 30) in measured_cache:
        table.add("efficiency ratio 1 vs 10 servers (30 clients)",
                  7.6,
                  measured_cache[(1, 30)] / measured_cache[(10, 30)])
    return table


def main():  # pragma: no cover - console entry point
    from repro.experiments.scale import active_scale
    scale = active_scale()
    fig1a, fig1b = run_fig1_peak(scale)
    print(fig1a.render())
    print()
    print(fig1b.render())
    print()
    print(run_table1_cpu(scale).render())
    print()
    print(run_fig2_efficiency(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
