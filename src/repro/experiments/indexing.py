"""§X — secondary-index scans and multi-tenant admission.

The paper leaves indexing as future work ("one could think of scans to
assess the indexing mechanism", §X) and never shares a testbed between
tenants, so these tables have no paper column: they characterize the
repro's own log-structured indexlets (ROADMAP item 2) the same way the
§V grids characterize the point workloads.

* :func:`run_fig_index` — throughput/latency of the indexed workload
  mixes (workload E over a secondary index, and a point-lookup-heavy
  mix) as the index is split over 1/2/4 indexlets;
* :func:`run_tenant_mix` — two tenants on one cluster, one throttled by
  per-tenant admission control, with the per-tenant SLA breakout.

Both grids are also registered as sweep cells (``fig_index``,
``tenant_mix``) so the parallel runner can fan them out with the same
serial-equivalence guarantees as ``fig4``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.cluster import ClusterSpec, ExperimentSpec, repeat_experiment
from repro.experiments.reporting import ComparisonTable
from repro.experiments.scale import DEFAULT, Scale
from repro.experiments.sweep import (
    CellOutcome,
    SweepPlan,
    SweepPoint,
    outcome_from_experiment,
)
from repro.ramcloud.config import ServerConfig
from repro.ramcloud.tenancy import TenantSpec
from repro.ycsb.workload import (WORKLOAD_A, WORKLOAD_E_INDEXED,
                                 WORKLOAD_LOOKUP_HEAVY, WorkloadSpec)

__all__ = ["run_fig_index", "run_tenant_mix", "fig_index_sweep_plan",
           "tenant_mix_sweep_plan"]

INDEXED_WORKLOADS: Dict[str, WorkloadSpec] = {
    "E-indexed": WORKLOAD_E_INDEXED,
    "lookup-heavy": WORKLOAD_LOOKUP_HEAVY,
}

# The tenant-mix defaults: an unthrottled "gold" tenant next to a
# "bronze" tenant admitted at this many ops/s per master.
BRONZE_ADMISSION_RATE = 2000.0


def _index_spec(workload: WorkloadSpec, indexlets: int, servers: int,
                clients: int, scale: Scale) -> ExperimentSpec:
    return ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=clients,
            server_config=ServerConfig(replication_factor=0)),
        workload=workload.scaled(num_records=scale.num_records,
                                 ops_per_client=scale.ops_per_client,
                                 num_indexlets=indexlets),
    )


def _tenant_spec(servers: int, clients: int, bronze_rate: float,
                 scale: Scale) -> ExperimentSpec:
    return ExperimentSpec(
        cluster=ClusterSpec(
            num_servers=servers, num_clients=clients,
            server_config=ServerConfig(replication_factor=0)),
        workload=WORKLOAD_A.scaled(num_records=scale.num_records,
                                   ops_per_client=scale.ops_per_client),
        tenants=(TenantSpec("gold"),
                 TenantSpec("bronze", admission_rate=bronze_rate)),
    )


def run_fig_index(scale: Scale = DEFAULT,
                  indexlet_counts: Sequence[int] = (1, 2, 4),
                  servers: int = 4, clients: int = 4) -> ComparisonTable:
    """Indexed workload mixes vs indexlet count (no paper column)."""
    table = ComparisonTable(
        "Fig. index", f"secondary-index mixes, {servers} servers "
                      f"(Kop/s; mean op latency noted)")
    for name, workload in INDEXED_WORKLOADS.items():
        for indexlets in indexlet_counts:
            metrics, _r = repeat_experiment(
                _index_spec(workload, indexlets, servers, clients, scale),
                scale.seeds)
            table.add(
                f"workload {name} / {indexlets} indexlet(s)", None,
                metrics["throughput"].mean / 1000.0, "K",
                note=f"mean latency "
                     f"{metrics['mean_latency'].mean * 1e6:.0f} µs")
    table.note("index entries are log records: maintained through the "
               "write path, cleaned and recovered like data (§X future "
               "work in the paper; ROADMAP item 2 here)")
    return table


def run_tenant_mix(scale: Scale = DEFAULT, servers: int = 4,
                   clients: int = 4,
                   bronze_rate: float = BRONZE_ADMISSION_RATE,
                   ) -> ComparisonTable:
    """Two tenants on one cluster; bronze is admission-throttled."""
    table = ComparisonTable(
        "Tenant mix", f"workload A split across 2 tenants, {servers} "
                      f"servers (bronze admitted at {bronze_rate:.0f} "
                      f"ops/s per master)")
    _metrics, results = repeat_experiment(
        _tenant_spec(servers, clients, bronze_rate, scale), scale.seeds)
    for tenant in ("gold", "bronze"):
        per_seed = [r.per_tenant_stats[tenant] for r in results]
        runs = len(per_seed)
        table.add(f"tenant {tenant} ops", None,
                  sum(s["ops"] for s in per_seed) / runs, "")
        table.add(f"tenant {tenant} p99 latency", None,
                  sum(s["p99_latency"] for s in per_seed) / runs * 1e6,
                  " µs")
        table.add(f"tenant {tenant} throttle drops", None,
                  sum(s["throttle_drops"] for s in per_seed) / runs, "")
    table.note("admission control drops non-admitted requests at the "
               "dispatch path; clients retry with backoff, so bronze "
               "trades p99 latency for the cap")
    return table


# -- sweep cells ---------------------------------------------------------


def _index_cell(params: Dict[str, object], seed: int, scale: Scale):
    """Sweep cell: one (workload, indexlets, seed) point of fig_index."""
    from repro.cluster import run_experiment
    spec = _index_spec(INDEXED_WORKLOADS[str(params["workload"])],
                       int(params["indexlets"]), int(params["servers"]),
                       int(params["clients"]), scale)
    spec = spec.with_(cluster=spec.cluster.with_(seed=seed))
    return outcome_from_experiment(run_experiment(spec))


def _tenant_cell(params: Dict[str, object], seed: int, scale: Scale):
    """Sweep cell: one seeded tenant-mix run.  The standard outcome is
    widened with the per-tenant breakout so the merged report carries
    each tenant's SLA columns (the digest already covers them)."""
    from repro.cluster import run_experiment
    spec = _tenant_spec(int(params["servers"]), int(params["clients"]),
                        float(params["bronze_rate"]), scale)
    spec = spec.with_(cluster=spec.cluster.with_(seed=seed))
    result = run_experiment(spec)
    base = outcome_from_experiment(result)
    metrics = dict(base.metrics)
    for tenant in sorted(result.per_tenant_stats):
        stats = result.per_tenant_stats[tenant]
        metrics[f"tenant[{tenant}].ops"] = stats["ops"]
        metrics[f"tenant[{tenant}].p99_latency"] = stats["p99_latency"]
        metrics[f"tenant[{tenant}].throttle_drops"] = (
            stats["throttle_drops"])
    return CellOutcome(metrics=metrics, digest=base.digest,
                       events=base.events, ops=base.ops)


def fig_index_sweep_plan(scale: Scale = DEFAULT,
                         seeds: Optional[Sequence[int]] = None,
                         indexlet_counts: Sequence[int] = (1, 2, 4),
                         servers: int = 4, clients: int = 4) -> SweepPlan:
    """The :func:`run_fig_index` grid as a :class:`SweepPlan`."""
    points = tuple(
        SweepPoint.of(f"workload {name} / {indexlets} indexlet(s)",
                      workload=name, indexlets=indexlets,
                      servers=servers, clients=clients)
        for name in INDEXED_WORKLOADS for indexlets in indexlet_counts)
    return SweepPlan("fig_index", points, tuple(seeds or scale.seeds),
                     scale)


def tenant_mix_sweep_plan(scale: Scale = DEFAULT,
                          seeds: Optional[Sequence[int]] = None,
                          servers: int = 4, clients: int = 4,
                          bronze_rate: float = BRONZE_ADMISSION_RATE,
                          ) -> SweepPlan:
    """The :func:`run_tenant_mix` cell as a :class:`SweepPlan`."""
    point = SweepPoint.of("gold + bronze", servers=servers,
                          clients=clients, bronze_rate=bronze_rate)
    return SweepPlan("tenant_mix", (point,), tuple(seeds or scale.seeds),
                     scale)


SWEEP_CELLS = {"fig_index": _index_cell, "tenant_mix": _tenant_cell}
SWEEP_PLANS = {"fig_index": fig_index_sweep_plan,
               "tenant_mix": tenant_mix_sweep_plan}


def main():  # pragma: no cover - console entry point
    from repro.experiments.scale import active_scale
    scale = active_scale()
    print(run_fig_index(scale).render())
    print()
    print(run_tenant_mix(scale).render())


if __name__ == "__main__":  # pragma: no cover
    main()
