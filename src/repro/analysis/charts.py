"""Plain-text line charts for time series.

A dependency-free renderer good enough to eyeball the paper's timeline
figures (CPU/power around a crash, disk activity during recovery) in a
terminal or a log file.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_chart", "ascii_multi_chart"]

Series = Sequence[Tuple[float, float]]

_MARKS = "*o+x#@"


def _bucketize(series: Series, x_min: float, x_max: float,
               width: int) -> List[Optional[float]]:
    """Average the series into ``width`` buckets over [x_min, x_max]."""
    sums = [0.0] * width
    counts = [0] * width
    span = max(x_max - x_min, 1e-12)
    for x, y in series:
        if not x_min <= x <= x_max:
            continue
        bucket = min(width - 1, int((x - x_min) / span * width))
        sums[bucket] += y
        counts[bucket] += 1
    return [sums[i] / counts[i] if counts[i] else None
            for i in range(width)]


def ascii_chart(series: Series, title: str = "", width: int = 68,
                height: int = 14, y_label: str = "",
                x_label: str = "") -> str:
    """Render one series as an ASCII line chart."""
    return ascii_multi_chart({y_label or "y": series}, title=title,
                             width=width, height=height, x_label=x_label)


def ascii_multi_chart(named_series: Dict[str, Series], title: str = "",
                      width: int = 68, height: int = 14,
                      x_label: str = "") -> str:
    """Render several series on shared axes, one mark per series."""
    if not named_series:
        raise ValueError("no series to plot")
    points = [p for series in named_series.values() for p in series]
    if not points:
        raise ValueError("all series are empty")
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, series) in enumerate(named_series.items()):
        mark = _MARKS[index % len(_MARKS)]
        buckets = _bucketize(series, x_min, x_max, width)
        for col, value in enumerate(buckets):
            if value is None:
                continue
            frac = (value - y_min) / (y_max - y_min)
            row = height - 1 - int(frac * (height - 1))
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_max:.4g}"), len(f"{y_min:.4g}"))
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_max:.4g}"
        elif i == height - 1:
            label = f"{y_min:.4g}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    axis = f"{'':>{label_width}} +" + "-" * width
    lines.append(axis)
    x_axis = (f"{'':>{label_width}}  {x_min:<.4g}"
              + " " * max(1, width - len(f"{x_min:<.4g}")
                          - len(f"{x_max:.4g}"))
              + f"{x_max:.4g}")
    lines.append(x_axis)
    if x_label:
        lines.append(f"{'':>{label_width}}  ({x_label})")
    if len(named_series) > 1:
        legend = "  ".join(f"{_MARKS[i % len(_MARKS)]} {name}"
                           for i, name in enumerate(named_series))
        lines.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(lines)
