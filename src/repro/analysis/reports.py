"""Report builders over experiment results."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.charts import ascii_chart, ascii_multi_chart

__all__ = ["cpu_usage_table", "crash_timeline_report",
           "energy_proportionality_index", "energy_proportionality_report"]


def cpu_usage_table(results_by_config: Dict[str, Dict[str, float]]) -> str:
    """A Table-I-style report: per configuration, the min/avg/max of the
    per-node CPU utilizations.

    ``results_by_config`` maps a configuration label to a
    ``{node_name: cpu_percent}`` dict (e.g.
    :attr:`~repro.cluster.experiment.ExperimentResult.cpu_util_per_node`).
    """
    if not results_by_config:
        raise ValueError("no configurations")
    width = max(len(label) for label in results_by_config)
    lines = [f"{'configuration':<{width}}  {'min':>6}  {'avg':>6}  {'max':>6}",
             "-" * (width + 24)]
    for label, per_node in results_by_config.items():
        values = list(per_node.values())
        if not values:
            raise ValueError(f"no per-node values for {label!r}")
        lines.append(
            f"{label:<{width}}  {min(values):>5.1f}%  "
            f"{sum(values) / len(values):>5.1f}%  {max(values):>5.1f}%")
    return "\n".join(lines)


def crash_timeline_report(result, width: int = 68) -> str:
    """Render a crash-experiment result the way the paper presents §VII:
    Fig. 9a (cluster CPU), Fig. 9b (per-node power) and Fig. 12
    (aggregate disk activity) as charts, plus the recovery summary."""
    sections = []
    recovery = result.recovery
    header = [f"crash of {result.crashed_server} "
              f"at t={result.spec.kill_at:.0f} s"]
    if recovery is not None and recovery.finished_at is not None:
        header.append(
            f"recovered {recovery.bytes_to_recover / 2**20:.0f} MB in "
            f"{recovery.duration:.1f} s across "
            f"{len(recovery.recovery_masters)} recovery masters "
            f"({recovery.segments} segments)")
    sections.append("\n".join(header))

    sections.append(ascii_chart(result.cluster_cpu.items(),
                                title="cluster average CPU (%)  [Fig. 9a]",
                                width=width, x_label="seconds"))
    survivors = {name: series.items()
                 for name, series in result.per_node_power.items()
                 if name != result.crashed_server}
    if survivors:
        # Average the survivors into one power curve (Fig. 9b).
        merged = {}
        for series in survivors.values():
            for t, v in series:
                merged.setdefault(t, []).append(v)
        avg_power = sorted((t, sum(v) / len(v)) for t, v in merged.items())
        sections.append(ascii_chart(
            avg_power, title="average surviving-node power (W)  [Fig. 9b]",
            width=width, x_label="seconds"))
    sections.append(ascii_multi_chart(
        {"read": result.disk_read_mbps.items(),
         "write": result.disk_write_mbps.items()},
        title="aggregate disk activity (MB/s)  [Fig. 12]",
        width=width, x_label="seconds"))
    if result.client_latencies:
        named = {}
        for i, samples in enumerate(result.client_latencies):
            named[f"client {i + 1}"] = [(t, lat * 1e6) for t, lat in samples]
        sections.append(ascii_multi_chart(
            named, title="per-op latency (µs, bucket means)  [Fig. 10]",
            width=width, x_label="seconds"))
    return "\n\n".join(sections)


def energy_proportionality_report(result, width: int = 68) -> str:
    """Render an energy-proportionality sweep
    (:class:`~repro.experiments.energy_proportionality.EnergyProportionalityResult`)
    the way an operator reads it: one watts-vs-load curve per governor,
    then the per-governor proportionality index and the latency price.

    A perfectly proportional system's curve is a straight line through
    the origin; the paper's machine (``static``) is a flat ≈75 W floor.
    """
    governors = sorted(result.ep_index)
    if not governors:
        raise ValueError("empty sweep result")
    curves = {}
    for governor in governors:
        points = result.by_governor(governor)
        curves[governor] = [(p.throughput / 1000.0, p.watts_per_server)
                            for p in points]
    sections = [ascii_multi_chart(
        curves, title="watts/server vs load (Kop/s) by governor",
        width=width, x_label="Kop/s")]
    lines = [f"{'governor':<16} {'EP index':>8} {'idle W':>7} "
             f"{'peak Kop/s':>10} {'peak op/J':>9}"]
    for governor in governors:
        points = result.by_governor(governor)
        idle, peak = points[0], points[-1]
        lines.append(f"{governor:<16} {result.ep_index[governor]:>8.2f} "
                     f"{idle.watts_per_server:>7.1f} "
                     f"{peak.throughput / 1000.0:>10.1f} "
                     f"{peak.ops_per_joule:>9.0f}")
    sections.append("\n".join(lines))
    return "\n\n".join(sections)


def energy_proportionality_index(loads: Sequence[float],
                                 watts: Sequence[float]) -> float:
    """How proportional is power to load, 0..1?

    1 means perfectly proportional (power scales linearly from 0 at
    idle); 0 means completely flat (the paper's Finding 1 pathology).
    Defined as ``1 - idle_watts / peak_watts`` interpolated over the
    measured (load, watts) curve, the standard EP metric.
    """
    if len(loads) != len(watts) or len(loads) < 2:
        raise ValueError("need matched load/watts series of length >= 2")
    pairs = sorted(zip(loads, watts))
    idle = pairs[0][1]
    peak = pairs[-1][1]
    if peak <= 0:
        raise ValueError("peak power must be positive")
    return max(0.0, 1.0 - idle / peak)
