"""Post-processing and presentation utilities.

Renders the paper's figure types from experiment results: ASCII line
charts of timelines (Fig. 9/10/12), Table-I-style min/avg/max CPU
tables, and recovery reports — everything a user needs to eyeball a
run without a plotting stack.
"""

from repro.analysis.charts import ascii_chart, ascii_multi_chart
from repro.analysis.reports import (
    cpu_usage_table,
    crash_timeline_report,
    energy_proportionality_index,
)

__all__ = [
    "ascii_chart",
    "ascii_multi_chart",
    "cpu_usage_table",
    "crash_timeline_report",
    "energy_proportionality_index",
]
