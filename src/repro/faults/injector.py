"""The fault injector: drives a :class:`FaultSchedule` against a cluster.

The injector is a thin deterministic driver: one simulated process per
anchor walks the schedule's entries in ``(at, declaration)`` order and
applies each action through the hooks the other layers expose
(``Fabric.partition_groups``/``add_rpc_fault``, ``Disk.degrade``,
``Cluster.kill_server``, ...).  It draws no randomness of its own —
the only stochastic choice (a ``CrashServer(index=None)`` victim) is
delegated to the cluster's seeded stream, so the applied-fault log and
every downstream metric are byte-identical across same-seed reruns.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.faults.schedule import (
    ClearRpcFaults,
    CrashServer,
    DegradeDisk,
    DelayRpcs,
    DropRpcs,
    FaultAction,
    FaultSchedule,
    HealAll,
    HealGroups,
    PartitionGroups,
    PauseServer,
    RestoreDisk,
    ResumeServer,
    SetGovernor,
    SetPowerCap,
    resolve_group,
    resolve_node,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies one schedule to one cluster, exactly once."""

    def __init__(self, cluster, schedule: FaultSchedule):
        self.cluster = cluster
        self.schedule = schedule
        # Deterministic log of (sim time, description) per applied fault.
        self.applied: List[Tuple[float, str]] = []
        self.killed_servers: List = []
        self._started = False
        self._recovery_fired = False

    def start(self) -> "FaultInjector":
        """Arm the schedule: start-anchored entries count from now,
        recovery-anchored entries from the first recovery start."""
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        sim = self.cluster.sim
        start_entries = self.schedule.anchored("start")
        if start_entries:
            sim.process(self._driver(start_entries, base=sim.now),
                        name="faults:driver")
        if self.schedule.anchored("recovery"):
            self.cluster.coordinator.on_recovery_start.append(
                self._recovery_started)
        return self

    def _recovery_started(self, stats) -> None:
        del stats
        if self._recovery_fired:
            return
        self._recovery_fired = True
        sim = self.cluster.sim
        sim.process(
            self._driver(self.schedule.anchored("recovery"), base=sim.now),
            name="faults:recovery-driver")

    def _driver(self, entries, base: float):
        sim = self.cluster.sim
        for entry in entries:
            target = base + entry.at
            if sim.now < target:
                yield sim.timeout(target - sim.now)
            self.apply(entry.action)

    # ------------------------------------------------------------------

    def apply(self, action: FaultAction) -> None:
        """Apply one action immediately (the drivers call this; tests
        may too) and append it to the :attr:`applied` log."""
        fabric = self.cluster.fabric
        if isinstance(action, CrashServer):
            victim = self.cluster.kill_server(action.index)
            self.killed_servers.append(victim)
            self._log(f"crash-server {victim.server_id}")
            return
        if isinstance(action, PauseServer):
            victim = self.cluster.pause_server(action.index)
            self._log(f"pause-server {victim.server_id}")
            return
        if isinstance(action, ResumeServer):
            victim = self.cluster.resume_server(action.index)
            self._log(f"resume-server {victim.server_id}")
            return
        if isinstance(action, PartitionGroups):
            fabric.partition_groups(resolve_group(action.group_a),
                                    resolve_group(action.group_b))
        elif isinstance(action, HealGroups):
            fabric.heal_groups(resolve_group(action.group_a),
                               resolve_group(action.group_b))
        elif isinstance(action, HealAll):
            fabric.heal_all()
        elif isinstance(action, DegradeDisk):
            node = fabric.node(resolve_node(action.node))
            node.disk.degrade(action.bandwidth_bytes_per_s)
        elif isinstance(action, RestoreDisk):
            node = fabric.node(resolve_node(action.node))
            node.disk.restore()
        elif isinstance(action, DelayRpcs):
            fabric.add_rpc_fault(action.match, kind="delay",
                                 delay=action.delay)
        elif isinstance(action, DropRpcs):
            fabric.add_rpc_fault(action.match, kind="drop")
        elif isinstance(action, ClearRpcFaults):
            fabric.clear_rpc_faults(action.match)
        elif isinstance(action, SetGovernor):
            self.cluster.set_governor(action.governor, action.index)
        elif isinstance(action, SetPowerCap):
            self.cluster.set_power_cap(action.watts)
        else:
            raise TypeError(f"unknown fault action: {action!r}")
        self._log(action.describe())

    def _log(self, description: str) -> None:
        self.applied.append((self.cluster.sim.now, description))
