"""The declarative fault-schedule vocabulary.

A :class:`FaultSchedule` is a list of :class:`FaultEntry` rows, each an
``(at, action)`` pair.  ``at`` is seconds measured from the moment the
injector starts (``anchor="start"``, the default) or from the instant
the coordinator begins the first crash recovery
(``anchor="recovery"``) — the latter is how "crash a backup
mid-recovery" is expressed without knowing the detection latency in
advance.

Node references are plain strings matching the deployment's node names
(``"server3"``, ``"client0"``, ``"coord"``); bare integers are
shorthand for ``f"server{i}"``.  Everything is a frozen dataclass, so
schedules hash/compare by value and are trivially reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

__all__ = [
    "RpcMatch",
    "FaultAction",
    "CrashServer",
    "PauseServer",
    "ResumeServer",
    "PartitionGroups",
    "HealGroups",
    "HealAll",
    "DegradeDisk",
    "RestoreDisk",
    "DelayRpcs",
    "DropRpcs",
    "ClearRpcFaults",
    "SetGovernor",
    "SetPowerCap",
    "FaultEntry",
    "FaultSchedule",
]

NodeRef = Union[str, int]


def resolve_node(ref: NodeRef) -> str:
    """Normalize a node reference to a node name."""
    if isinstance(ref, int):
        return f"server{ref}"
    return ref


def resolve_group(group: Sequence[NodeRef]) -> Tuple[str, ...]:
    """Normalize a group of node references to a tuple of node names."""
    if isinstance(group, (str, int)):
        return (resolve_node(group),)
    return tuple(resolve_node(ref) for ref in group)


@dataclass(frozen=True)
class RpcMatch:
    """A predicate over in-flight RPCs: ``(src node, dst node, op)``.

    ``None`` fields are wildcards; ``src``/``dst`` accept a single node
    reference or a sequence of them.  Instances are callable, which is
    the shape the fabric's fault table expects.
    """

    op: Optional[str] = None
    src: Optional[Union[NodeRef, Tuple[NodeRef, ...]]] = None
    dst: Optional[Union[NodeRef, Tuple[NodeRef, ...]]] = None

    def __call__(self, src: str, dst: str, op: str) -> bool:
        if self.op is not None and op != self.op:
            return False
        if self.src is not None and src not in resolve_group(self.src):
            return False
        if self.dst is not None and dst not in resolve_group(self.dst):
            return False
        return True

    def describe(self) -> str:
        """A stable one-line rendering for the injector's fault log."""
        def show(value):
            # `or '*'` would swallow the falsy-but-valid server index 0.
            return "*" if value is None else value

        return (f"op={show(self.op)} src={show(self.src)} "
                f"dst={show(self.dst)}")


class FaultAction:
    """Base class for everything a schedule can apply."""

    def describe(self) -> str:
        """A stable one-line rendering for the injector's fault log."""
        return repr(self)


@dataclass(frozen=True)
class CrashServer(FaultAction):
    """Kill the RAMCloud process on one server node.

    ``index`` is the server index; ``None`` picks a random live victim
    from the cluster's seeded stream (the paper's §VII methodology).
    """

    index: Optional[int] = None

    def describe(self) -> str:
        return f"crash-server index={self.index}"


@dataclass(frozen=True)
class PauseServer(FaultAction):
    """Silence one server's NIC while its process keeps running (a
    SIGSTOP, a GC pause, a wedged switch port): the zombie-master
    ingredient.  The failure detector sees only silence, so a long
    enough pause produces an honest false positive — the server is
    declared dead, evicted from the server list, and fenced, while
    still believing it owns its tablets.

    ``index`` is the server index; ``None`` picks a random live,
    unpaused victim from the cluster's seeded stream.
    """

    index: Optional[int] = None

    def describe(self) -> str:
        return f"pause-server index={self.index}"


@dataclass(frozen=True)
class ResumeServer(FaultAction):
    """Wake a paused server's NIC back up.  ``index`` is the server
    index; ``None`` resumes the earliest still-paused server (FIFO), so
    a schedule of symmetric pause/resume pairs needs no bookkeeping.
    """

    index: Optional[int] = None

    def describe(self) -> str:
        return f"resume-server index={self.index}"


@dataclass(frozen=True)
class PartitionGroups(FaultAction):
    """Cut connectivity between every pair across two node groups."""

    group_a: Tuple[NodeRef, ...]
    group_b: Tuple[NodeRef, ...]

    def describe(self) -> str:
        a = ",".join(resolve_group(self.group_a))
        b = ",".join(resolve_group(self.group_b))
        return f"partition [{a}] | [{b}]"


@dataclass(frozen=True)
class HealGroups(FaultAction):
    """Restore connectivity cut by a matching :class:`PartitionGroups`."""

    group_a: Tuple[NodeRef, ...]
    group_b: Tuple[NodeRef, ...]

    def describe(self) -> str:
        a = ",".join(resolve_group(self.group_a))
        b = ",".join(resolve_group(self.group_b))
        return f"heal [{a}] | [{b}]"


@dataclass(frozen=True)
class HealAll(FaultAction):
    """Remove every partition cut."""

    def describe(self) -> str:
        return "heal-all"


@dataclass(frozen=True)
class DegradeDisk(FaultAction):
    """Clamp one node's disk to ``bandwidth_bytes_per_s`` (a failing
    spindle, a throttled RAID rebuild)."""

    node: NodeRef
    bandwidth_bytes_per_s: float

    def describe(self) -> str:
        return (f"degrade-disk {resolve_node(self.node)} "
                f"to {self.bandwidth_bytes_per_s:g} B/s")


@dataclass(frozen=True)
class RestoreDisk(FaultAction):
    """Lift a :class:`DegradeDisk` clamp."""

    node: NodeRef

    def describe(self) -> str:
        return f"restore-disk {resolve_node(self.node)}"


@dataclass(frozen=True)
class DelayRpcs(FaultAction):
    """Add ``delay`` seconds of one-way latency to matching RPCs."""

    match: RpcMatch
    delay: float

    def describe(self) -> str:
        return f"delay-rpcs {self.delay:g}s [{self.match.describe()}]"


@dataclass(frozen=True)
class DropRpcs(FaultAction):
    """Silently drop matching RPCs: the bytes are spent, no reply ever
    arrives, and the caller's own timeout is what surfaces the loss."""

    match: RpcMatch

    def describe(self) -> str:
        return f"drop-rpcs [{self.match.describe()}]"


@dataclass(frozen=True)
class ClearRpcFaults(FaultAction):
    """Remove previously-installed RPC delay/drop faults (all of them,
    or only those whose match equals ``match``)."""

    match: Optional[RpcMatch] = None

    def describe(self) -> str:
        inner = self.match.describe() if self.match is not None else "*"
        return f"clear-rpc-faults [{inner}]"


@dataclass(frozen=True)
class SetGovernor(FaultAction):
    """Switch the power governor at run time (docs/POWER.md): on every
    server node, or only server ``index``.  An operator action rather
    than a failure, but scheduling it through the fault vocabulary lets
    scenarios mix power-mode flips with crashes — e.g. kill a server
    while its workers are parked and assert recovery still replays
    byte-identically."""

    governor: str
    index: Optional[int] = None

    def describe(self) -> str:
        where = "all" if self.index is None else f"server{self.index}"
        return f"set-governor {self.governor} on {where}"


@dataclass(frozen=True)
class SetPowerCap(FaultAction):
    """Engage or move the cluster power cap (watts); ``None`` lifts it."""

    watts: Optional[float]

    def describe(self) -> str:
        if self.watts is None:
            return "set-power-cap none"
        return f"set-power-cap {self.watts:g}W"


@dataclass(frozen=True)
class FaultEntry:
    """One scheduled fault: apply ``action`` at time ``at``.

    ``anchor="start"`` measures ``at`` from injector start;
    ``anchor="recovery"`` measures it from the first recovery start
    (entries with this anchor never fire if no recovery ever begins).
    """

    at: float
    action: FaultAction
    anchor: str = "start"

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"fault time cannot be negative: {self.at}")
        if self.anchor not in ("start", "recovery"):
            raise ValueError(
                f"anchor must be 'start' or 'recovery', got {self.anchor!r}")
        if not isinstance(self.action, FaultAction):
            raise TypeError(f"not a FaultAction: {self.action!r}")


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, validated collection of fault entries."""

    entries: Tuple[FaultEntry, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "entries", tuple(self.entries))
        for entry in self.entries:
            if not isinstance(entry, FaultEntry):
                raise TypeError(f"not a FaultEntry: {entry!r}")

    def __len__(self) -> int:
        return len(self.entries)

    def anchored(self, anchor: str) -> Tuple[FaultEntry, ...]:
        """The entries with the given anchor, in firing order (time,
        then declaration order for ties — both deterministic)."""
        picked = [e for e in self.entries if e.anchor == anchor]
        return tuple(sorted(picked, key=lambda e: e.at))

    @classmethod
    def single_crash(cls, at: float,
                     index: Optional[int] = None) -> "FaultSchedule":
        """The paper's §VII methodology as a one-entry schedule: kill
        one server (random victim if ``index`` is None) at ``at``."""
        return cls((FaultEntry(at=at, action=CrashServer(index=index)),))
