"""Deterministic, schedule-driven fault injection.

The paper's headline results (§VII, Fig. 9-12) are all about behaviour
*under failure*.  This package turns failures into data: a
:class:`~repro.faults.schedule.FaultSchedule` is a declarative list of
(when, what) entries — crash a server, partition node groups, degrade a
disk, delay or drop matching RPCs, heal — and a
:class:`~repro.faults.injector.FaultInjector` applies them at their
simulated instants through hooks in the net, hardware, ramcloud and
cluster layers.

Determinism contract: the same cluster seed plus the same schedule
yields a byte-identical sequence of applied faults and byte-identical
metric digests (see docs/FAULTS.md and tests/analyze/test_determinism.py).
"""

from repro.faults.schedule import (
    ClearRpcFaults,
    CrashServer,
    DegradeDisk,
    DelayRpcs,
    DropRpcs,
    FaultAction,
    FaultEntry,
    FaultSchedule,
    HealAll,
    HealGroups,
    PartitionGroups,
    PauseServer,
    RestoreDisk,
    ResumeServer,
    RpcMatch,
    SetGovernor,
    SetPowerCap,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "FaultAction",
    "FaultEntry",
    "FaultSchedule",
    "FaultInjector",
    "RpcMatch",
    "CrashServer",
    "PauseServer",
    "ResumeServer",
    "PartitionGroups",
    "HealGroups",
    "HealAll",
    "DegradeDisk",
    "RestoreDisk",
    "DelayRpcs",
    "DropRpcs",
    "ClearRpcFaults",
    "SetGovernor",
    "SetPowerCap",
]
