"""A YCSB-compatible workload substrate.

The paper drives RAMCloud with the Yahoo! Cloud Serving Benchmark
(§III-C): workloads A (update-heavy, 50/50), B (read-heavy, 95/5) and
C (read-only), uniform request distribution, one client process per
client node, a fixed number of 1 KB records loaded first and a fixed
number of requests per client.

This package reimplements the relevant parts of YCSB: the standard
core-workload definitions, the key-choosing distributions (uniform,
zipfian with YCSB's scrambling, latest, sequential), the closed-loop
client driver with optional throttling (used by the paper's Fig. 13),
and latency/throughput statistics.
"""

from repro.ycsb.keyspace import (
    LatestKeyChooser,
    SequentialKeyChooser,
    UniformKeyChooser,
    ZipfianKeyChooser,
    make_key_chooser,
)
from repro.ycsb.workload import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    WorkloadSpec,
)
from repro.ycsb.client import YcsbClient
from repro.ycsb.stats import LatencyRecorder, OperationStats

__all__ = [
    "LatencyRecorder",
    "LatestKeyChooser",
    "OperationStats",
    "SequentialKeyChooser",
    "UniformKeyChooser",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "WORKLOAD_F",
    "WorkloadSpec",
    "YcsbClient",
    "ZipfianKeyChooser",
    "make_key_chooser",
]
