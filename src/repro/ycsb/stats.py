"""Latency and throughput statistics for YCSB clients."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["LatencyRecorder", "OperationStats"]


class LatencyRecorder:
    """Collects (time, latency) samples for one operation type."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, latency: float) -> None:
        """Append one (completion time, latency) sample."""
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.samples.append((time, latency))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def latencies(self) -> List[float]:
        """Just the latency values."""
        return [lat for _t, lat in self.samples]

    def mean(self) -> float:
        """Arithmetic mean latency."""
        if not self.samples:
            raise ValueError(f"no samples recorded for {self.name!r}")
        return sum(self.latencies) / len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in (0, 100]."""
        if not self.samples:
            raise ValueError(f"no samples recorded for {self.name!r}")
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        ordered = sorted(self.latencies)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def windowed_means(self, window: float) -> List[Tuple[float, float]]:
        """Average latency per time window — the Fig. 10 time series."""
        if window <= 0:
            raise ValueError("window must be positive")
        buckets: Dict[int, List[float]] = {}
        for t, lat in self.samples:
            buckets.setdefault(int(t / window), []).append(lat)
        return [(b * window, sum(v) / len(v))
                for b, v in sorted(buckets.items())]


class OperationStats:
    """Per-client roll-up across operation types."""

    __slots__ = ("reads", "updates", "inserts", "scans", "index_ops",
                 "started_at", "finished_at", "errors")

    def __init__(self):
        self.reads = LatencyRecorder("read")
        self.updates = LatencyRecorder("update")
        self.inserts = LatencyRecorder("insert")
        self.scans = LatencyRecorder("scan")
        # Secondary-index operations (range Search and indexed point
        # lookups); empty on unindexed workloads.
        self.index_ops = LatencyRecorder("index")
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.errors = 0

    @property
    def total_ops(self) -> int:
        """Completed operations across all types."""
        return (len(self.reads) + len(self.updates) + len(self.inserts)
                + len(self.scans) + len(self.index_ops))

    @property
    def runtime(self) -> float:
        """Wall time from first to last op (client must have finished)."""
        if self.started_at is None or self.finished_at is None:
            raise ValueError("client has not finished")
        return self.finished_at - self.started_at

    def throughput(self) -> float:
        """Completed ops per second over the runtime."""
        runtime = self.runtime
        if runtime <= 0:
            return float("inf")
        return self.total_ops / runtime

    def all_latencies(self) -> LatencyRecorder:
        """All op types merged into one time-sorted recorder."""
        merged = LatencyRecorder("all")
        merged.samples = sorted(self.reads.samples + self.updates.samples
                                + self.inserts.samples + self.scans.samples
                                + self.index_ops.samples)
        return merged
