"""YCSB workload specifications and the standard core workloads.

The paper uses the three basic YCSB workloads (§III-C):

* **A** — update-heavy: 50 % reads, 50 % updates;
* **B** — read-heavy: 95 % reads, 5 % updates;
* **C** — read-only.

with uniform request distribution and 1 KB records.  Workloads D and F
are included for the paper's stated future work; E (scans) is omitted
because the storage system models point operations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.ramcloud.consistency import validate_level

__all__ = [
    "WorkloadSpec",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E_INDEXED",
    "WORKLOAD_F",
    "WORKLOAD_LOOKUP_HEAVY",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One YCSB workload definition."""

    name: str
    read_proportion: float = 0.0
    update_proportion: float = 0.0
    insert_proportion: float = 0.0
    read_modify_write_proportion: float = 0.0
    scan_proportion: float = 0.0
    # Secondary-index operations: range scans over an index (workload E
    # on an index instead of MultiRead) and point lookups by secondary
    # key.  Either being non-zero (or num_indexlets > 0) makes the
    # experiment harness create an index and carry secondary keys on
    # every write; all-zero keeps runs bit-identical to today.
    index_scan_proportion: float = 0.0
    index_lookup_proportion: float = 0.0
    num_indexlets: int = 0
    max_scan_length: int = 100
    num_records: int = 100_000
    record_size: int = 1024
    ops_per_client: int = 100_000
    request_distribution: str = "uniform"
    # Optional client-side throttle (operations per second per client);
    # None = issue as fast as the closed loop allows.  Used by Fig. 13.
    target_ops_per_second: float = 0.0
    # Per-request consistency mix: ((level, proportion), ...).  Each op
    # draws its ConsistencyLevel from this distribution; any remainder
    # up to 1.0 uses the cluster's configured default (level=None on
    # the wire).  Empty (the default) sends every op at the default
    # level and draws nothing — existing runs stay bit-identical.
    consistency_mix: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self):
        total = (self.read_proportion + self.update_proportion
                 + self.insert_proportion
                 + self.read_modify_write_proportion
                 + self.scan_proportion
                 + self.index_scan_proportion
                 + self.index_lookup_proportion)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"operation proportions must sum to 1, got {total}")
        if self.num_indexlets < 0:
            raise ValueError("num_indexlets cannot be negative")
        if ((self.index_scan_proportion > 0
             or self.index_lookup_proportion > 0)
                and self.num_indexlets < 1):
            raise ValueError(
                "indexed operations need num_indexlets >= 1")
        if self.max_scan_length < 1:
            raise ValueError("max_scan_length must be >= 1")
        if self.num_records < 1:
            raise ValueError("need at least one record")
        if self.record_size < 1:
            raise ValueError("record size must be positive")
        if self.ops_per_client < 1:
            raise ValueError("need at least one operation per client")
        if self.target_ops_per_second < 0:
            raise ValueError("throttle rate cannot be negative")
        mix_total = 0.0
        for level, proportion in self.consistency_mix:
            validate_level(level)
            if proportion < 0:
                raise ValueError(
                    f"consistency proportion cannot be negative: {level}")
            mix_total += proportion
        if mix_total > 1.0 + 1e-9:
            raise ValueError(
                f"consistency mix proportions sum to {mix_total} > 1")

    def with_consistency(self, *mix: Tuple[str, float]) -> "WorkloadSpec":
        """A copy with a per-request consistency mix, e.g.
        ``w.with_consistency((EVENTUAL, 0.9), (SYNC_RF, 0.1))``."""
        return replace(self, consistency_mix=tuple(mix))

    def scaled(self, num_records: int = None, ops_per_client: int = None,
               **overrides) -> "WorkloadSpec":
        """A copy with scaled-down sizes (our runs shrink the paper's
        op counts; see DESIGN.md §5)."""
        changes = dict(overrides)
        if num_records is not None:
            changes["num_records"] = num_records
        if ops_per_client is not None:
            changes["ops_per_client"] = ops_per_client
        return replace(self, **changes)

    def throttled(self, ops_per_second: float) -> "WorkloadSpec":
        """A copy with a client-side rate limit (Fig. 13)."""
        return replace(self, target_ops_per_second=ops_per_second)


# The paper's three workloads (§III-C), with its §V sizes: 100 K records
# of 1 KB, 100 K requests per client.
WORKLOAD_A = WorkloadSpec(name="A", read_proportion=0.5,
                          update_proportion=0.5)
WORKLOAD_B = WorkloadSpec(name="B", read_proportion=0.95,
                          update_proportion=0.05)
WORKLOAD_C = WorkloadSpec(name="C", read_proportion=1.0)
# Extensions (paper future work): D = read latest, E = short scans
# ("one could think of scans to assess the indexing mechanism", §X),
# F = read-modify-write.
WORKLOAD_D = WorkloadSpec(name="D", read_proportion=0.95,
                          insert_proportion=0.05,
                          request_distribution="latest")
WORKLOAD_E = WorkloadSpec(name="E", scan_proportion=0.95,
                          insert_proportion=0.05,
                          max_scan_length=100)
WORKLOAD_F = WorkloadSpec(name="F", read_proportion=0.5,
                          read_modify_write_proportion=0.5)
# Indexed variants (§X: "one could think of scans to assess the
# indexing mechanism"): E over a secondary index instead of MultiRead,
# and a point-lookup-heavy mix against the same index.
WORKLOAD_E_INDEXED = WorkloadSpec(name="E-indexed",
                                  index_scan_proportion=0.95,
                                  insert_proportion=0.05,
                                  max_scan_length=100,
                                  num_indexlets=2)
WORKLOAD_LOOKUP_HEAVY = WorkloadSpec(name="lookup-heavy",
                                     index_lookup_proportion=0.8,
                                     read_proportion=0.15,
                                     update_proportion=0.05,
                                     num_indexlets=2)
