"""The closed-loop YCSB client driver.

One :class:`YcsbClient` corresponds to one YCSB process on one client
node (§III-C: "launching simultaneously one instance of a YCSB client
on each client node ... We use a single client per machine").  The
client issues operations synchronously; each operation pays a
client-side overhead (``CLIENT_OVERHEAD``) that models the YCSB/Java
stack — the dominant term in the paper's per-client op rates (e.g.
236 Kop/s across 10 clients on an unloaded 10-server cluster, i.e.
≈42 µs per op of which only ≈12 µs is server+network).

Optional throttling implements the paper's Fig. 13 client-side rate
limiting (``target_ops_per_second``).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.net.rpc import RpcTimeout
from repro.ramcloud.client import RamCloudClient
from repro.ramcloud.errors import ObjectDoesntExist
from repro.ramcloud.indexing import secondary_key
from repro.sim.distributions import RandomStream
from repro.sim.kernel import Simulator
from repro.ycsb.keyspace import LatestKeyChooser, make_key_chooser
from repro.ycsb.stats import OperationStats
from repro.ycsb.workload import WorkloadSpec

__all__ = ["YcsbClient", "CLIENT_OVERHEAD"]

# Per-operation client-side cost (request generation, (de)serialization,
# benchmark bookkeeping).  Calibrated so an unloaded read takes ≈42 µs
# end to end, matching Table II's per-client read-only rates.
CLIENT_OVERHEAD = 30.0e-6


class YcsbClient:  # simlint: disable=PERF001 O(clients) service object; __dict__ cost is amortized
    """One YCSB client process bound to a client node."""

    def __init__(self, sim: Simulator, rc_client: RamCloudClient,
                 table_id: int, workload: WorkloadSpec,
                 stream: RandomStream,
                 client_overhead: float = CLIENT_OVERHEAD,
                 give_up_after: Optional[float] = None,
                 index_id: Optional[int] = None):
        self.sim = sim
        self.rc = rc_client
        self.table_id = table_id
        self.workload = workload
        self.stream = stream
        self.client_overhead = client_overhead
        # Abort the run if a single op stays unserviceable this long
        # (models the paper's runs "always crashing ... because of
        # excessive timeouts", §VI).  Enforced as a hard deadline raced
        # against the operation: a dropped request that would stall for
        # the full RPC timeout trips it even though no exception ever
        # reaches the client.  Also bounds the underlying retry loop so
        # an op that can never complete is abandoned.
        self.give_up_after = give_up_after
        if give_up_after is not None and rc_client.max_retries is None:
            rc_client.max_retries = (
                int(give_up_after / rc_client.retry_backoff) + 1)
        self.stats = OperationStats()
        # Dynamic admission throttle (cluster power capping): when an
        # experiment assigns an AdmissionThrottle here, it replaces the
        # static ``target_ops_per_second`` pacing below.  None (the
        # default) leaves the paper's Fig. 13 token bucket untouched.
        self.throttle = None
        # Secondary index over the table (indexed workload mixes).
        # None means writes carry no index entries and the iscan/
        # ilookup ops are never drawn — bit-identical to before.
        self.index_id = index_id
        self.keys = make_key_chooser(workload.request_distribution,
                                     workload.num_records, stream)
        self._insert_counter = workload.num_records
        self.gave_up = False
        # Per-request consistency mix (empty = every op at the cluster
        # default, no extra RNG draws — existing runs bit-identical).
        self._consistency_mix = workload.consistency_mix

    def _choose_level(self) -> Optional[str]:
        """Draw this op's ConsistencyLevel from the workload mix.
        Only called when a mix is configured, so default workloads
        consume no stream draws here."""
        roll = self.stream.uniform()
        for level, proportion in self._consistency_mix:
            if roll < proportion:
                return level
            roll -= proportion
        return None  # remainder: the cluster's configured default

    # -- operation mix ---------------------------------------------------

    def _choose_op(self) -> str:
        w = self.workload
        roll = self.stream.uniform()
        if roll < w.read_proportion:
            return "read"
        roll -= w.read_proportion
        if roll < w.update_proportion:
            return "update"
        roll -= w.update_proportion
        if roll < w.insert_proportion:
            return "insert"
        roll -= w.insert_proportion
        if roll < w.scan_proportion:
            return "scan"
        roll -= w.scan_proportion
        if roll < w.index_scan_proportion:
            return "iscan"
        roll -= w.index_scan_proportion
        if roll < w.index_lookup_proportion:
            return "ilookup"
        return "rmw"

    def _next_insert_key(self) -> str:
        if isinstance(self.keys, LatestKeyChooser):
            return self.keys.record_insert()
        key = f"user{self._insert_counter}"
        self._insert_counter += 1
        return key

    # -- the run phase ------------------------------------------------------

    def run(self) -> Generator:
        """Execute ``ops_per_client`` operations; returns the stats."""
        w = self.workload
        yield from self.rc.refresh_map()
        sim = self.sim
        stats = self.stats
        stats.started_at = sim.now
        start = sim.now
        rate = w.target_ops_per_second
        overhead = self.client_overhead
        give_up_after = self.give_up_after
        # op → recorder, built once (not per completed operation).
        recorders = {"read": stats.reads, "update": stats.updates,
                     "insert": stats.inserts, "scan": stats.scans,
                     "rmw": stats.updates, "iscan": stats.index_ops,
                     "ilookup": stats.index_ops}
        for i in range(w.ops_per_client):
            if self.throttle is not None:
                # Dynamic pacing: the power-cap controller moves the
                # shared throttle's rate at run time.
                delay = self.throttle.reserve()
                if delay > 0:
                    yield sim.timeout(delay)
            elif rate > 0:
                # Token-bucket pacing: operation i may not start before
                # its scheduled slot.
                slot = start + i / rate
                if sim.now < slot:
                    yield sim.timeout(slot - sim.now)
            yield sim.timeout(overhead)
            op = self._choose_op()
            issued = sim.now
            try:
                if give_up_after is None:
                    yield from self._execute(op)
                else:
                    # Race the operation against the give-up deadline:
                    # an op still unfinished at the deadline (e.g. a
                    # silently dropped request waiting out the 1 s RPC
                    # timeout) is abandoned mid-flight.
                    proc = sim.process(self._execute(op), name="ycsb:op")
                    deadline = sim.timeout(give_up_after)
                    yield sim.any_of([proc, deadline])
                    if not proc.triggered:
                        proc.interrupt("gave up")
                        stats.errors += 1
                        self.gave_up = True
                        break
                    if not proc.ok:
                        raise proc.value
            except ObjectDoesntExist:
                stats.errors += 1
                continue
            except RpcTimeout:
                # max_retries exhausted (only when configured).
                stats.errors += 1
                self.gave_up = True
                break
            latency = sim.now - issued
            if give_up_after is not None and latency > give_up_after:
                self.gave_up = True
                break
            recorders[op].record(sim.now, latency)
        stats.finished_at = sim.now
        return stats

    def _index_entries_for(self, key: str):
        """The (index_id, secondary) pairs this record carries, or None
        on unindexed runs.  The secondary key is derived from the
        record number (the experiment preload uses the same mapping),
        so an update rewrites the same pairs and maintains the index
        consistently."""
        if self.index_id is None:
            return None
        return ((self.index_id, secondary_key(int(key[4:]))),)

    def _execute(self, op: str) -> Generator:
        w = self.workload
        level = self._choose_level() if self._consistency_mix else None
        if op == "read":
            yield from self.rc.read(self.table_id, self.keys.next_key(),
                                    level=level)
        elif op == "update":
            key = self.keys.next_key()
            yield from self.rc.write(self.table_id, key,
                                     w.record_size, level=level,
                                     index_entries=self._index_entries_for(key))
        elif op == "insert":
            key = self._next_insert_key()
            yield from self.rc.write(self.table_id, key,
                                     w.record_size, level=level,
                                     index_entries=self._index_entries_for(key))
        elif op == "scan":
            # YCSB scan: from a random start key, fetch a uniformly
            # random number of consecutive records (mapped onto
            # RAMCloud's MultiRead, as the real YCSB binding does).
            start = self.stream.randint(0, w.num_records - 1)
            length = self.stream.randint(1, w.max_scan_length)
            keys = [f"user{(start + i) % w.num_records}"
                    for i in range(length)]
            yield from self.rc.multiread(self.table_id, keys)
        elif op == "iscan":
            # Workload E over the secondary index: a random start key,
            # a uniformly random run length, served by the range Search
            # RPC with indexlet fan-out.
            start = self.stream.randint(0, w.num_records - 1)
            length = self.stream.randint(1, w.max_scan_length)
            yield from self.rc.search(self.index_id, secondary_key(start),
                                      secondary_key(start + length),
                                      limit=length)
        elif op == "ilookup":
            # Point lookup by secondary key (a width-one Search).
            i = self.stream.randint(0, w.num_records - 1)
            yield from self.rc.search(self.index_id, secondary_key(i),
                                      secondary_key(i + 1), limit=4)
        elif op == "rmw":
            key = self.keys.next_key()
            yield from self.rc.read(self.table_id, key, level=level)
            yield from self.rc.write(self.table_id, key, w.record_size,
                                     level=level,
                                     index_entries=self._index_entries_for(key))
        else:  # pragma: no cover - _choose_op is exhaustive
            raise ValueError(f"unknown op {op!r}")
