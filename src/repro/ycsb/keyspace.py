"""Key-choosing distributions, following YCSB's generators.

The paper uses the uniform distribution throughout ("in our case we use
uniform distribution", §III-C) and leaves other distributions as future
work — we implement the full YCSB set so that future-work experiments
can run too.
"""

from __future__ import annotations

from typing import Protocol

from repro.sim.distributions import RandomStream, ScrambledZipfianGenerator

__all__ = [
    "KeyChooser",
    "UniformKeyChooser",
    "ZipfianKeyChooser",
    "LatestKeyChooser",
    "SequentialKeyChooser",
    "make_key_chooser",
]


class KeyChooser(Protocol):
    """Anything that yields the next key to request."""

    def next_key(self) -> str:
        """The next key, per this distribution."""
        ...


def format_key(index: int) -> str:
    """YCSB record key format."""
    return f"user{index}"


class UniformKeyChooser:
    """Every record equally likely (the paper's setting)."""

    def __init__(self, num_records: int, stream: RandomStream):
        if num_records < 1:
            raise ValueError("need at least one record")
        self.num_records = num_records
        self._stream = stream

    def next_key(self) -> str:
        """A uniformly random record key."""
        return format_key(self._stream.randint(0, self.num_records - 1))


class ZipfianKeyChooser:
    """YCSB's scrambled-zipfian: popularity is zipf, hot keys spread
    over the keyspace by hashing."""

    def __init__(self, num_records: int, stream: RandomStream):
        if num_records < 1:
            raise ValueError("need at least one record")
        self.num_records = num_records
        self._gen = ScrambledZipfianGenerator(num_records, stream=stream)

    def next_key(self) -> str:
        """A scrambled-zipfian record key."""
        return format_key(self._gen.next())


class LatestKeyChooser:
    """Recently-inserted records are hottest (YCSB workload D)."""

    def __init__(self, num_records: int, stream: RandomStream):
        if num_records < 1:
            raise ValueError("need at least one record")
        self.num_records = num_records
        self._stream = stream

    def record_insert(self) -> str:
        """Extend the keyspace by one record; returns its key."""
        key = format_key(self.num_records)
        self.num_records += 1
        return key

    def next_key(self) -> str:
        """A recency-biased record key."""
        # Exponential-ish recency bias, as YCSB's SkewedLatest.
        offset = int(self._stream.exponential(self.num_records / 10.0))
        index = max(0, self.num_records - 1 - offset)
        return format_key(index)


class SequentialKeyChooser:
    """Scan the keyspace in order (load phases, range workloads)."""

    def __init__(self, num_records: int, start: int = 0):
        if num_records < 1:
            raise ValueError("need at least one record")
        self.num_records = num_records
        self._next = start

    def next_key(self) -> str:
        """The next key in sequence, wrapping at num_records."""
        key = format_key(self._next % self.num_records)
        self._next += 1
        return key


def make_key_chooser(distribution: str, num_records: int,
                     stream: RandomStream) -> KeyChooser:
    """Factory matching YCSB's ``requestdistribution`` parameter."""
    if distribution == "uniform":
        return UniformKeyChooser(num_records, stream)
    if distribution == "zipfian":
        return ZipfianKeyChooser(num_records, stream)
    if distribution == "latest":
        return LatestKeyChooser(num_records, stream)
    if distribution == "sequential":
        return SequentialKeyChooser(num_records)
    raise ValueError(f"unknown request distribution {distribution!r}")
