"""Profile-guided scoping for the PERF rules.

Micro-optimization advice is only worth a reviewer's time where the
program actually spends it: a dict built per call is waste in the
kernel's event loop and irrelevant in a plot script.  This module
ingests the cProfile dump written by ``tools/bench_kernel.py
--profile-json`` and turns it into a :class:`HotSet` — the set of
source locations that showed up in the benchmark's hot rows — which
the linter attaches to every :class:`~repro.analyze.linter.Module` so
the PERF rules can confine themselves to code that is demonstrably on
the event path.

Matching is structural, not positional: profile rows carry the
*absolute* path and first line of each code object, while the linter
sees repo-relative paths, so both sides are normalized to their
``repro/``-rooted suffix and a row is mapped onto a def by *line
containment* (the code object's first line falls inside the def's
span).  That survives both checkout location and unrelated edits above
the function.

Thresholds are relative (fractions of total self-time / total calls),
so the same profile semantics hold at smoke and full scale.  A final
one-level expansion over the project call graph marks the project
functions a hot function calls as hot too: a helper that the profiler
attributes to its inlined caller still deserves scrutiny.

Without a profile (``hotset=None``) the PERF rules run unscoped — the
mode the rule fixtures use.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["HotSet", "load_hotset"]

# A row is hot when it holds at least this fraction of total self-time
# or of total call count.  0.5 % of a benchmark run is far above noise
# (the seed profile's top ~60 rows) while still catching
# high-frequency cheap functions whose cost is all allocation.
HOT_TIME_FRAC = 0.005
HOT_CALL_FRAC = 0.005


def _suffix(path: str) -> str:
    """Normalize a path to its ``repro/``-rooted suffix.

    Profile rows are absolute (``/home/ci/repo/src/repro/sim/kernel.py``),
    lint paths repo-relative (``src/repro/sim/kernel.py``); both reduce
    to ``repro/sim/kernel.py``.  Paths outside the package (tools,
    tests, fixtures) fall back to their basename.
    """
    norm = path.replace("\\", "/")
    idx = norm.rfind("repro/")
    if idx >= 0:
        return norm[idx:]
    return norm.rsplit("/", 1)[-1]


class HotSet:
    """The benchmark-hot source locations, queryable by the PERF rules."""

    def __init__(self, rows: List[Dict], total_tottime: float,
                 total_calls: int, source: str = "",
                 hot_time_frac: float = HOT_TIME_FRAC,
                 hot_call_frac: float = HOT_CALL_FRAC):
        self.source = source
        time_floor = hot_time_frac * total_tottime
        call_floor = hot_call_frac * max(total_calls, 1)
        #: suffix → [(func name, first line)] of hot rows in that file.
        self._by_suffix: Dict[str, List[Tuple[str, int]]] = {}
        #: Names marked hot by call-graph expansion (see :meth:`expand`).
        self.hot_names: Set[str] = set()
        self.hot_rows = 0
        for row in rows:
            if row["tottime"] < time_floor and row["ncalls"] < call_floor:
                continue
            self.hot_rows += 1
            self._by_suffix.setdefault(_suffix(row["path"]), []).append(
                (row["func"], row["line"]))

    @classmethod
    def load(cls, path: str, **kwargs) -> "HotSet":
        """Read a ``bench_kernel.py --profile-json`` dump."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        return cls(rows=payload.get("rows", []),
                   total_tottime=payload.get("total_tottime", 0.0),
                   total_calls=payload.get("total_calls", 0),
                   source=path, **kwargs)

    # -- queries ----------------------------------------------------------

    def file_is_hot(self, path: str) -> bool:
        """Whether any hot row maps into this file."""
        return _suffix(path) in self._by_suffix

    def _rows_in_span(self, path: str, start: int, end: int) -> bool:
        for _func, line in self._by_suffix.get(_suffix(path), ()):
            if start <= line <= end:
                return True
        return False

    def function_is_hot(self, path: str, node: ast.AST) -> bool:
        """Whether a def was profiled hot (by line containment) or was
        marked hot by call-graph expansion (by name)."""
        end = getattr(node, "end_lineno", node.lineno)
        if self._rows_in_span(path, node.lineno, end):
            return True
        return getattr(node, "name", None) in self.hot_names

    def class_is_hot(self, path: str, node: ast.AST) -> bool:
        """Whether any hot row (a method, typically ``__init__``) falls
        inside the class body — the PERF001 notion of "event-path"."""
        end = getattr(node, "end_lineno", node.lineno)
        return self._rows_in_span(path, node.lineno, end)

    # -- call-graph expansion ---------------------------------------------

    def expand(self, callgraph) -> None:
        """One-level closure over the project call graph: project
        functions called from a hot def are hot by name.

        cProfile attributes a ``yield from``-flattened helper or an
        inlined wrapper to its caller's row; expansion keeps such
        callees in scope.  One level is deliberate — a transitive
        closure would drag most of the project into the hot set and
        destroy the scoping this module exists to provide.
        """
        for summary in getattr(callgraph, "summaries", ()):
            if not self.function_is_hot(summary.path, summary.node):
                continue
            for node in summary._own_nodes():
                if isinstance(node, ast.Call):
                    name = _project_callee_name(node)
                    if name is not None and name in callgraph.by_name:
                        self.hot_names.add(name)


def _project_callee_name(call: ast.Call) -> Optional[str]:
    from repro.analyze.callgraph import _project_callee
    return _project_callee(call)


def load_hotset(path: Optional[str]) -> Optional[HotSet]:
    """``HotSet.load`` tolerating ``None`` (no profile: unscoped run)."""
    if path is None:
        return None
    return HotSet.load(path)
