"""Interprocedural may-yield and lock-order analysis (SIM006–SIM008).

The kernel's contract is invisible to per-function linting: whether a
call *can suspend the current process* depends on what the callee (and
its callees) do.  This module builds the project-wide summaries the
atomicity rules need:

* **sim-coroutines** — generator functions that participate in the
  simulation protocol (they yield Events / delegate with ``yield
  from``), as opposed to plain data generators (``for x in xs: yield
  x``), which never suspend a process;
* **may-yield names** — function names every definition of which can
  suspend the caller, directly (a sim-coroutine) or transitively (a
  plain wrapper whose ``return`` hands back a may-yield call's
  generator for the caller to ``yield from``);
* **spawner names** — functions that forward an argument into
  ``sim.process(...)`` (so passing a coroutine *into* them is how it is
  meant to run, not a dropped call);
* **lock acquisition summaries** — per function, the textual identity
  of every lock acquired (``self.log_lock``), the source span it is
  held over, and the locks reachable through calls made inside that
  span; project-wide, every ordered pair "A held while acquiring B"
  with its witness locations, which is what SIM008 mines for
  inversions.

Everything here is name-based and deliberately precision-first: a name
is may-yield only if *every* definition is, a lock identity is the
unparsed receiver expression, and dynamic indirection (a lock passed as
a parameter) is invisible.  The runtime detector
(:mod:`repro.sim.racecheck`) covers what static names cannot.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analyze.linter import Module

__all__ = ["CallGraphIndex", "FunctionSummary"]

# Event-producing attribute calls of the kernel/resource API: a name
# bound from one of these and later yielded marks a sim-coroutine
# (``token = lock.acquire(); ... ; yield token``).  ``get`` is *not*
# here despite ``queue.get()`` being one — it collides with ``dict.get``
# (``cur = parents.get(node)``), and the queue idiom always consumes
# the yield's value (``request = yield get``), which the parent-is-not-
# Expr case already classifies.
_EVENT_FACTORY_ATTRS = frozenset({
    "acquire", "request", "timeout", "event", "all_of", "any_of",
})

# Method names that exist on builtin containers/strings: an attribute
# call like ``queue.remove(x)`` must not resolve to a project function
# that happens to share the name (``HashTable.remove``) — same policy
# as SIM001's generator-name matching.
_BUILTIN_METHOD_NAMES = (set(dir(list)) | set(dir(dict)) | set(dir(set))
                         | set(dir(str)) | set(dir(tuple)) | set(dir(bytes))
                         | set(dir(frozenset)))

# Builtins that synchronously drive an iterable to exhaustion.
SYNC_DRIVERS = frozenset({
    "list", "tuple", "sorted", "sum", "any", "all", "set", "min", "max",
})


def _call_name(call: ast.Call) -> Optional[str]:
    """The bare callee name of ``f(...)`` or ``x.f(...)``, else None."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _project_callee(call: ast.Call) -> Optional[str]:
    """The callee name when the call may resolve to a project function.

    Bare names always may; attribute calls only when the attribute is
    not a builtin container method and the receiver is not the
    race-instrumentation handle (``self.race.write(...)`` is a tracking
    no-op that must not resolve to ``Disk.write``).
    """
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        if func.attr in _BUILTIN_METHOD_NAMES:
            return None
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "race":
            return None
        if isinstance(recv, ast.Attribute) and recv.attr == "race":
            return None
        return func.attr
    return None


def _is_process_call(call: ast.Call) -> bool:
    """``sim.process(...)`` / ``Process(...)`` — explicit spawning."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "process":
        return True
    return isinstance(func, ast.Name) and func.id == "Process"


class FunctionSummary:
    """Everything the atomicity rules need to know about one def."""

    __slots__ = ("name", "path", "node", "module", "is_generator",
                 "is_sim_coroutine", "may_yield", "is_spawner",
                 "yield_lines", "lock_spans", "end_line", "_own_cache")

    def __init__(self, module: Module, node: ast.FunctionDef):
        self.module = module
        self.node = node
        self.name = node.name
        self.path = module.path
        self._own_cache: Optional[List[ast.AST]] = None
        own = self._own_nodes()
        yields = [n for n in own if isinstance(n, (ast.Yield, ast.YieldFrom))]
        self.is_generator = bool(yields)
        self.yield_lines: List[int] = sorted(n.lineno for n in yields)
        self.end_line = max((getattr(n, "lineno", node.lineno) for n in own),
                            default=node.lineno)
        self.is_sim_coroutine = (self.is_generator
                                 and self._classify_coroutine(yields, own))
        self.may_yield = self.is_sim_coroutine  # fixed point grows this
        self.is_spawner = self._detect_spawner(own)
        # (lock_id, var, acquire_line, span_end_line)
        self.lock_spans: List[Tuple[str, str, int, int]] = (
            self._extract_lock_spans(own))

    # -- scope walking ---------------------------------------------------

    def _own_nodes(self) -> List[ast.AST]:
        """Nodes in this def's own scope (nested defs/lambdas excluded).

        Cached: the fixed points below re-consult summaries every
        iteration, and with three rule families sharing the index the
        same scopes used to be re-walked dozens of times per file.
        """
        if self._own_cache is not None:
            return self._own_cache
        found: List[ast.AST] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(self.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            found.append(node)
            stack.extend(ast.iter_child_nodes(node))
        self._own_cache = found
        return found

    # -- sim-coroutine classification ------------------------------------

    def _classify_coroutine(self, yields: Sequence[ast.AST],
                            own: Sequence[ast.AST]) -> bool:
        """Distinguish sim-coroutines from plain data generators.

        A data generator's yields are statement-position ``yield <name
        or constant>`` shapes (``for x in xs: yield x``); a
        sim-coroutine delegates (``yield from``), yields calls or
        attributes (``yield sim.timeout(...)``, ``yield rx.reply``),
        consumes the sent value (``req = yield get``), or yields a name
        bound from a kernel event factory.
        """
        event_names: Set[str] = set()
        for node in own:
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr in _EVENT_FACTORY_ATTRS):
                event_names.add(node.targets[0].id)
        for node in yields:
            if isinstance(node, ast.YieldFrom):
                return True
            value = node.value
            if isinstance(value, (ast.Call, ast.Attribute)):
                return True
            if not isinstance(self.module.parent(node), ast.Expr):
                return True  # the yield's value is consumed
            if isinstance(value, ast.Name) and value.id in event_names:
                return True
        return False

    # -- spawner detection -----------------------------------------------

    def _param_names(self) -> Set[str]:
        args = self.node.args
        names = {a.arg for a in args.args + args.kwonlyargs
                 + getattr(args, "posonlyargs", [])}
        names.discard("self")
        return names

    def _detect_spawner(self, own: Sequence[ast.AST]) -> bool:
        params = self._param_names()
        if not params:
            return False
        for node in own:
            if isinstance(node, ast.Call) and _is_process_call(node):
                if node.args and isinstance(node.args[0], ast.Name) \
                        and node.args[0].id in params:
                    return True
        return False

    def spawner_forward_targets(self) -> Iterator[Tuple[str, str]]:
        """(param, callee_name) pairs where a parameter is forwarded as
        the first argument of another project call — candidate
        transitive spawners, resolved by the index's fixed point."""
        params = self._param_names()
        if not params:
            return
        for node in self._own_nodes():
            if (isinstance(node, ast.Call) and not _is_process_call(node)
                    and node.args and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in params):
                name = _call_name(node)
                if name is not None:
                    yield node.args[0].id, name

    # -- lock spans --------------------------------------------------------

    def _extract_lock_spans(self, own: Sequence[ast.AST]
                            ) -> List[Tuple[str, str, int, int]]:
        """``var = <recv>.acquire()/.request()`` → (unparse(recv), var,
        acquire line, last release/abort/cancel(var) line — or the end
        of the function when no textual release exists)."""
        spans = []
        releases: Dict[str, int] = {}
        for node in own:
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("release", "abort", "cancel")
                    and node.args and isinstance(node.args[0], ast.Name)):
                var = node.args[0].id
                releases[var] = max(releases.get(var, 0), node.lineno)
        for node in own:
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr in ("acquire", "request")):
                var = node.targets[0].id
                lock_id = ast.unparse(node.value.func.value)
                end = releases.get(var, self.end_line)
                spans.append((lock_id, var, node.lineno, max(end,
                                                             node.lineno)))
        spans.sort(key=lambda s: s[2])
        return spans

    def calls_in_span(self, start: int, end: int
                      ) -> Iterator[Tuple[str, int]]:
        """(callee_name, line) of own-scope calls on lines in
        ``(start, end]`` — what runs while the lock is held."""
        for node in self._own_nodes():
            if isinstance(node, ast.Call) and start < node.lineno <= end:
                name = _project_callee(node)
                if name is not None:
                    yield name, node.lineno


class CallGraphIndex:
    """Project-wide function summaries plus the fixed points over them."""

    def __init__(self, modules: Sequence[Module]):
        self.summaries: List[FunctionSummary] = []
        self.by_name: Dict[str, List[FunctionSummary]] = {}
        for module in sorted(modules, key=lambda m: m.path):
            for func in module.functions():
                summary = FunctionSummary(module, func)
                self.summaries.append(summary)
                self.by_name.setdefault(summary.name, []).append(summary)
        # Class name → every project definition declares __slots__
        # (PERF001 needs to know whether a *base* is slotted: a
        # __dict__-carrying base makes slots in the subclass cosmetic).
        self._class_slots: Dict[str, bool] = {}
        for module in sorted(modules, key=lambda m: m.path):
            self._index_class_slots(module)
        self._propagate_may_yield()
        self._spawner_names = self._propagate_spawners()
        self._acquires_by_name = self._propagate_acquires()
        # (outer_lock, inner_lock) → sorted witness list
        self.lock_pairs: Dict[Tuple[str, str],
                              List[Tuple[str, int, str]]] = {}
        self._collect_lock_pairs()

    def _index_class_slots(self, module: Module) -> None:
        for node in module.nodes_of_type(ast.ClassDef):
            has = any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for stmt in node.body
                if isinstance(stmt, (ast.Assign, ast.AnnAssign))
                for target in (stmt.targets if isinstance(stmt, ast.Assign)
                               else [stmt.target]))
            previous = self._class_slots.get(node.name, True)
            self._class_slots[node.name] = previous and has

    # -- queries -----------------------------------------------------------

    def class_has_slots(self, name: str) -> bool:
        """True when every project definition of class ``name``
        declares ``__slots__`` (unknown names are False)."""
        return self._class_slots.get(name, False)

    def may_yield_name(self, name: str) -> bool:
        """True when every known definition of ``name`` can suspend the
        calling process (ambiguous names are excluded, like SIM001)."""
        defs = self.by_name.get(name)
        return bool(defs) and all(s.may_yield for s in defs)

    def is_spawner_name(self, name: str) -> bool:
        """True when some definition of ``name`` forwards an argument
        into ``sim.process`` (erring toward not flagging)."""
        return name in self._spawner_names

    def summary_for(self, node: ast.FunctionDef
                    ) -> Optional[FunctionSummary]:
        """The summary of a specific def node."""
        for summary in self.by_name.get(node.name, ()):
            if summary.node is node:
                return summary
        return None

    def acquires_of(self, name: str) -> Set[str]:
        """Lock ids acquired by any def of ``name``, transitively."""
        return self._acquires_by_name.get(name, frozenset())

    def inversions(self) -> List[Tuple[str, str]]:
        """Ordered lock pairs whose opposite order also occurs."""
        return sorted((a, b) for (a, b) in self.lock_pairs
                      if a != b and (b, a) in self.lock_pairs)

    # -- fixed points ------------------------------------------------------

    def _propagate_may_yield(self) -> None:
        """A plain def may-yield if it returns a may-yield call's result
        (a delegation wrapper: the caller gets the generator to drive).
        Monotonic, so iterate to the fixed point."""
        changed = True
        while changed:
            changed = False
            for summary in self.summaries:
                if summary.may_yield or summary.is_generator:
                    continue
                for node in summary._own_nodes():
                    if (isinstance(node, ast.Return)
                            and isinstance(node.value, ast.Call)):
                        name = _call_name(node.value)
                        if name is not None and self.may_yield_name(name):
                            summary.may_yield = True
                            changed = True
                            break

    def _propagate_spawners(self) -> Set[str]:
        """Names that (possibly through one another) forward an argument
        into ``sim.process``."""
        spawners = {s.name for s in self.summaries if s.is_spawner}
        changed = True
        while changed:
            changed = False
            for summary in self.summaries:
                if summary.name in spawners:
                    continue
                for _param, callee in summary.spawner_forward_targets():
                    if callee in spawners:
                        spawners.add(summary.name)
                        changed = True
                        break
        return spawners

    def _propagate_acquires(self) -> Dict[str, Set[str]]:
        """Name → lock ids acquired directly or through project calls."""
        acquires: Dict[str, Set[str]] = {}
        calls: Dict[str, Set[str]] = {}
        for summary in self.summaries:
            direct = {span[0] for span in summary.lock_spans}
            acquires.setdefault(summary.name, set()).update(direct)
            callees = calls.setdefault(summary.name, set())
            for node in summary._own_nodes():
                if isinstance(node, ast.Call):
                    name = _project_callee(node)
                    if name is not None and name in self.by_name:
                        callees.add(name)
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                mine = acquires[name]
                before = len(mine)
                for callee in callees:
                    mine.update(acquires.get(callee, ()))
                if len(mine) != before:
                    changed = True
        return acquires

    def _collect_lock_pairs(self) -> None:
        """Every "A held while acquiring B" with witness locations:
        directly nested spans, plus locks reachable through calls made
        inside a span (one summary level, by name)."""
        for summary in self.summaries:
            spans = summary.lock_spans
            for i, (outer, _var, start, end) in enumerate(spans):
                for inner, _v2, s2, _e2 in spans[i + 1:]:
                    if start < s2 <= end and inner != outer:
                        self._witness(outer, inner, summary.path, s2,
                                      f"in {summary.name!r}")
                for callee, line in summary.calls_in_span(start, end):
                    for inner in sorted(self.acquires_of(callee)):
                        if inner != outer:
                            self._witness(outer, inner, summary.path, line,
                                          f"in {summary.name!r} via "
                                          f"{callee!r}")

    def _witness(self, outer: str, inner: str, path: str, line: int,
                 detail: str) -> None:
        self.lock_pairs.setdefault((outer, inner), []).append(
            (path, line, detail))
        self.lock_pairs[(outer, inner)].sort()
