"""The ``simlint`` driver: parsing, suppressions, and the file walker.

A *rule* is a callable ``rule(module) -> Iterable[Finding]`` operating
on a parsed :class:`Module`.  The driver adds what individual rules
cannot know on their own:

* a **project-wide generator index** (SIM001 must recognise a generator
  method defined in another file to catch a dropped cross-module call);
* a **call-graph index** (the SIM006–SIM008 atomicity rules need
  project-wide may-yield and lock-acquisition summaries);
* **suppression comments** — ``# simlint: ignore[SIM003]`` on the
  flagged line (or ``# simlint: ignore`` to silence every rule there).
  ``# simlint: disable=SIM006 <justification>`` is an equivalent
  spelling that leaves room for a trailing one-line justification,
  which reviewers should insist on;
* deterministic ordering of findings (path, line, column, code).
"""

from __future__ import annotations

import ast
import os
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Module",
    "GeneratorIndex",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

_IGNORE_MARKER = "simlint:"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The CLI's one-line representation."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Suppressions:
    """Per-line ``# simlint: ignore[...]`` directives of one file."""

    def __init__(self, source: str):
        # line number → set of suppressed codes; empty set = all codes.
        self._lines: Dict[int, Set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(StringIO(source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    self._parse(tok.start[0], tok.string)
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            pass  # an unparseable file produces no suppressions

    def _parse(self, line: int, comment: str) -> None:
        text = comment.lstrip("#").strip()
        if not text.startswith(_IGNORE_MARKER):
            return
        directive = text[len(_IGNORE_MARKER):].strip()
        if not directive.startswith(("ignore", "disable")):
            return
        if directive.startswith("ignore"):
            rest = directive[len("ignore"):].strip()
            if rest.startswith("[") and "]" in rest:
                codes = {c.strip().upper()
                         for c in rest[1:rest.index("]")].split(",")
                         if c.strip()}
                self._lines[line] = codes
            else:
                self._lines[line] = set()  # blanket ignore
        else:  # disable=CODE[,CODE...] <optional justification>
            rest = directive[len("disable"):].strip()
            if rest.startswith("="):
                spec = rest[1:].split(None, 1)[0] if rest[1:].strip() else ""
                codes = {c.strip().upper()
                         for c in spec.split(",") if c.strip()}
                self._lines[line] = codes or set()
            else:
                self._lines[line] = set()  # bare 'disable': everything

    def suppresses(self, line: int, code: str) -> bool:
        """Whether ``code`` is silenced on ``line``."""
        codes = self._lines.get(line)
        if codes is None:
            return False
        return not codes or code.upper() in codes


@dataclass
class Module:
    """One parsed source file plus the derived maps rules need."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    # Every node of the tree, in ast.walk order, collected ONCE at parse
    # time.  Rules iterate this (or the per-type views below) instead of
    # re-walking the tree — with three rule families the tree used to be
    # walked tens of times per file.
    nodes: List[ast.AST] = field(default_factory=list)
    _type_views: Dict[tuple, List[ast.AST]] = field(default_factory=dict)
    # Function defs that are generators (yield in their own scope).
    generator_defs: Set[ast.FunctionDef] = field(default_factory=set)
    # Names the file imports as modules: local alias → module name.
    module_imports: Dict[str, str] = field(default_factory=dict)
    # from-imports: local name → "module.attr".
    from_imports: Dict[str, str] = field(default_factory=dict)
    index: Optional["GeneratorIndex"] = None
    # Project-wide may-yield / lock summaries (repro.analyze.callgraph.
    # CallGraphIndex), attached by the driver for SIM006–SIM008.
    callgraph: Optional[object] = None
    # Benchmark hot set (repro.analyze.profilehot.HotSet), attached by
    # the driver when a profile was supplied; None = PERF rules run
    # unscoped.
    hotset: Optional[object] = None
    # Project-wide global-write-effect summaries (repro.analyze.
    # stateflow.StateIndex), attached by the driver for DET001–DET006.
    stateindex: Optional[object] = None

    @classmethod
    def parse(cls, source: str, path: str) -> "Module":
        tree = ast.parse(source, filename=path)
        mod = cls(path=path, source=source, tree=tree,
                  suppressions=Suppressions(source))
        mod.nodes = list(ast.walk(tree))
        for parent in mod.nodes:
            for child in ast.iter_child_nodes(parent):
                mod.parents[child] = parent
        mod._build_scopes()
        mod._build_imports()
        return mod

    # -- derived maps ---------------------------------------------------

    def nodes_of_type(self, *types: type) -> List[ast.AST]:
        """All nodes of the given AST types, from the parse-time walk.

        Views are cached per type tuple, so every rule family shares one
        traversal of each file instead of re-walking the whole tree.
        """
        view = self._type_views.get(types)
        if view is None:
            view = [n for n in self.nodes if isinstance(n, types)]
            self._type_views[types] = view
        return view

    def _build_scopes(self) -> None:
        """Find the FunctionDefs whose own scope contains a yield."""
        for node in self.nodes_of_type(ast.Yield, ast.YieldFrom):
            func = self.enclosing_function(node)
            if func is not None:
                self.generator_defs.add(func)

    def _build_imports(self) -> None:
        for node in self.nodes_of_type(ast.Import, ast.ImportFrom):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_imports[alias.asname or
                                        alias.name.split(".")[0]] = alias.name
            elif node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    # -- navigation helpers --------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent, or None for the module root."""
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk outward from ``node`` (excluded) to the module root."""
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.FunctionDef]:
        """The nearest enclosing function def, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
            if isinstance(anc, ast.Lambda):
                return None
        return None

    def functions(self) -> Iterator[ast.FunctionDef]:
        """Every function def in the module, outermost first."""
        for node in self.nodes_of_type(ast.FunctionDef, ast.AsyncFunctionDef):
            yield node

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``."""
        return Finding(path=self.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       code=code, message=message)


class GeneratorIndex:
    """Project-wide set of names that (unambiguously) denote generator
    functions.

    A name defined as a generator in one place and as a plain function
    elsewhere (``run``, say: ``YcsbClient.run`` yields,
    ``Simulator.run`` does not) is *ambiguous* and excluded — SIM001
    only fires on names every definition of which is a generator, which
    keeps it high-precision at the cost of a little recall.
    """

    def __init__(self) -> None:
        self._generator_names: Set[str] = set()
        self._plain_names: Set[str] = set()

    def add_module(self, module: Module) -> None:
        """Record every function definition of ``module``."""
        for func in module.functions():
            if func in module.generator_defs:
                self._generator_names.add(func.name)
            else:
                self._plain_names.add(func.name)

    def is_generator_name(self, name: str) -> bool:
        """True when every known definition of ``name`` is a generator."""
        return name in self._generator_names and name not in self._plain_names


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def _run_rules(module: Module, rules: Iterable) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule(module):
            if not module.suppressions.suppresses(finding.line, finding.code):
                findings.append(finding)
    return sorted(findings)


def analyze_source(source: str, path: str = "<string>",
                   rules: Optional[Iterable] = None,
                   index: Optional[GeneratorIndex] = None,
                   hotset: Optional[object] = None) -> List[Finding]:
    """Lint one source string (the unit-test entry point)."""
    from repro.analyze.callgraph import CallGraphIndex
    from repro.analyze.rules import ALL_RULES
    from repro.analyze.stateflow import StateIndex
    module = Module.parse(source, path)
    module.index = index or _index_of([module])
    module.callgraph = CallGraphIndex([module])
    module.stateindex = StateIndex([module], module.callgraph)
    module.hotset = hotset
    if hotset is not None:
        hotset.expand(module.callgraph)
    return _run_rules(module, rules if rules is not None else ALL_RULES)


def _index_of(modules: Sequence[Module]) -> GeneratorIndex:
    index = GeneratorIndex()
    for module in modules:
        index.add_module(module)
    return index


def analyze_paths(paths: Sequence[str],
                  rules: Optional[Iterable] = None,
                  hotset: Optional[object] = None
                  ) -> Tuple[List[Finding], List[str]]:
    """Lint files/directories.

    Returns ``(findings, errors)`` where ``errors`` are files that
    could not be read or parsed (reported, never silently skipped).
    ``hotset`` (a :class:`repro.analyze.profilehot.HotSet`) scopes the
    PERF rules to profiled-hot code; it is expanded one call-graph
    level before the rules run.
    """
    from repro.analyze.callgraph import CallGraphIndex
    from repro.analyze.rules import ALL_RULES
    from repro.analyze.stateflow import StateIndex
    modules: List[Module] = []
    errors: List[str] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            modules.append(Module.parse(source, path))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{path}: {exc}")
    index = _index_of(modules)
    callgraph = CallGraphIndex(modules)
    stateindex = StateIndex(modules, callgraph)
    if hotset is not None:
        hotset.expand(callgraph)
    findings: List[Finding] = []
    for module in modules:
        module.index = index
        module.callgraph = callgraph
        module.stateindex = stateindex
        module.hotset = hotset
        findings.extend(_run_rules(module,
                                   rules if rules is not None else ALL_RULES))
    return sorted(findings), errors
