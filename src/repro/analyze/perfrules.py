"""The PERF rules: profile-guided hot-path waste detection.

Where the SIM rules catch *correctness* bugs with no runtime symptom,
the PERF rules catch *cost* with no correctness symptom: allocation,
indirection, and formatting work that the interpreter performs on
every kernel event and throws away.  Each pattern here was found by
profiling the canonical fig4 benchmark (``tools/bench_kernel.py``) and
each is scoped to the profile's hot set (:mod:`repro.analyze.profilehot`)
— outside the hot set the same code is fine and flagging it would be
noise.  Without a hot set (``module.hotset is None``) the rules run
unscoped, which is how the fixtures exercise them.

=======  ==========================================================
Code     What it catches
=======  ==========================================================
PERF001  an event-path class without ``__slots__`` (per-instance
         ``__dict__`` allocation + slower attribute access)
PERF002  per-event allocation: a lambda / nested def rebuilt per
         call, or a dict built per loop iteration
PERF003  the same ``a.b.c`` attribute chain read 3+ times in one
         loop body — hoist the receiver into a local
PERF004  a generator that only delegates (``yield from`` one call)
         — a pure trampoline frame on every resume
PERF005  an f-string race label built even when recording is off —
         guard with ``if x.race.enabled:``
=======  ==========================================================

Intentional instances carry ``# simlint: disable=PERFxxx <why>`` on
the flagged line, same as the SIM rules.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analyze.linter import Finding, Module

__all__ = ["PERF_RULES", "PERF_RULE_CODES", "rule_perf001", "rule_perf002",
           "rule_perf003", "rule_perf004", "rule_perf005"]


def _function_in_scope(module: Module, func: ast.AST) -> bool:
    """Whether a def is in the PERF rules' scope (hot, or no profile)."""
    hotset = module.hotset
    return hotset is None or hotset.function_is_hot(module.path, func)


def _class_in_scope(module: Module, cls: ast.ClassDef) -> bool:
    hotset = module.hotset
    return hotset is None or hotset.class_is_hot(module.path, cls)


def _scoped_functions(module: Module) -> Iterator[ast.FunctionDef]:
    for func in module.functions():
        if _function_in_scope(module, func):
            yield func


# ---------------------------------------------------------------------------
# PERF001 — missing __slots__ on event-path classes
# ---------------------------------------------------------------------------

# Base classes that make __slots__ pointless, wrong, or someone else's
# decision: exception hierarchies allocate rarely and carry args;
# typing/enum machinery manages its own layout.
_SLOTS_EXEMPT_BASES = frozenset({
    "BaseException", "Exception", "Protocol", "Enum", "IntEnum", "Flag",
    "IntFlag", "NamedTuple", "TypedDict", "ABC", "SimpleNamespace",
})

# Class decorators that manage instance layout themselves (dataclasses
# need slots=True at the decorator, not a __slots__ statement) — skip,
# except @guarded_by, which only sets a class attribute.
_LAYOUT_DECORATORS_OK = frozenset({"guarded_by"})


def _has_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _base_name(base: ast.AST) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _decorator_name(dec: ast.AST) -> Optional[str]:
    node = dec.func if isinstance(dec, ast.Call) else dec
    return _base_name(node)


def rule_perf001(module: Module) -> Iterator[Finding]:
    """PERF001: an event-path class without ``__slots__``.

    A slot-less instance carries a per-instance ``__dict__`` — one
    extra allocation at construction and a hash lookup on every
    attribute access.  For classes instantiated or exercised per event
    (requests, log entries, probes) that cost is paid millions of
    times per run.  Flagged only when the class is in the hot set and
    every base is itself slotted (a ``__dict__``-carrying base makes
    ``__slots__`` cosmetic); exception types and typing/enum machinery
    are exempt.
    """
    callgraph = module.callgraph
    for node in module.nodes_of_type(ast.ClassDef):
        if _has_slots(node):
            continue
        if not _class_in_scope(module, node):
            continue
        decorators = [_decorator_name(d) for d in node.decorator_list]
        if any(d not in _LAYOUT_DECORATORS_OK for d in decorators):
            continue
        skip = False
        for base in node.bases:
            name = _base_name(base)
            if name is None or name in _SLOTS_EXEMPT_BASES \
                    or name.endswith(("Error", "Warning", "Exception")):
                skip = True
                break
            if name != "object" and not (
                    callgraph is not None
                    and callgraph.class_has_slots(name)):
                # Unknown or unslotted base: slots here buy nothing.
                skip = True
                break
        if skip:
            continue
        yield module.finding(
            node, "PERF001",
            f"class {node.name!r} is on the event path but has no "
            f"'__slots__' — every instance allocates a __dict__; "
            f"declare '__slots__ = (...)'")


# ---------------------------------------------------------------------------
# PERF002 — per-event allocation
# ---------------------------------------------------------------------------

def _own_nodes_of(func: ast.AST) -> List[ast.AST]:
    """Nodes in a def's own scope, nested defs/lambdas excluded (but
    the nested def/lambda node itself included, for flagging)."""
    found: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        found.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return found


def _enclosing_loop(module: Module, node: ast.AST,
                    within: ast.AST) -> Optional[ast.AST]:
    """The nearest For/While around ``node`` that is inside ``within``."""
    for anc in module.ancestors(node):
        if anc is within:
            return None
        if isinstance(anc, (ast.For, ast.While)):
            return anc
    return None


def rule_perf002(module: Module) -> Iterator[Finding]:
    """PERF002: allocation performed per event that could happen once.

    Two shapes, both in hot functions only:

    * a ``lambda`` or nested ``def`` — CPython materializes a fresh
      function (and closure cells) every time the enclosing call runs;
      hoist it to module/class level or pass a bound method;
    * a dict display or dict/set comprehension *inside a loop* whose
      contents don't depend on the loop variable's identity — build it
      once before the loop.
    """
    for func in _scoped_functions(module):
        own = _own_nodes_of(func)
        for node in own:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield module.finding(
                    node, "PERF002",
                    f"nested def {node.name!r} is rebuilt (with closure "
                    f"cells) on every call of {func.name!r} — hoist it or "
                    f"use a bound method")
            elif isinstance(node, ast.Lambda):
                yield module.finding(
                    node, "PERF002",
                    f"lambda allocated on every call of {func.name!r} — "
                    f"hoist it or use a bound method")
            elif isinstance(node, (ast.Dict, ast.DictComp, ast.SetComp)):
                if _enclosing_loop(module, node, func) is not None:
                    kind = ("dict display" if isinstance(node, ast.Dict)
                            else "comprehension")
                    yield module.finding(
                        node, "PERF002",
                        f"{kind} built on every iteration of a loop in "
                        f"{func.name!r} — build it once before the loop")


# ---------------------------------------------------------------------------
# PERF003 — repeated attribute chains in tight loops
# ---------------------------------------------------------------------------

_PERF003_MIN_REPEATS = 3


def _chain_text(node: ast.AST) -> Optional[str]:
    """``a.b.c`` → ``"a.b.c"`` for pure Name/Attribute chains."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def rule_perf003(module: Module) -> Iterator[Finding]:
    """PERF003: the same attribute chain dereferenced 3+ times in one
    loop body.

    ``self.stats.reads`` costs two dict/descriptor lookups every time
    it is evaluated; in a per-event loop the interpreter repeats them
    thousands of times for the same object.  Hoist the receiver into a
    local before the loop (locals are array lookups).  Chains whose
    root or prefix is assigned inside the loop are skipped — hoisting
    those would change behaviour.
    """
    for func in _scoped_functions(module):
        own = _own_nodes_of(func)
        for loop in own:
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            # Receiver chains read inside this loop (depth >= 1 dot),
            # i.e. `self.x` in `self.x.y`: the hoistable prefix.
            counts: Dict[str, List[ast.AST]] = {}
            stored: Set[str] = set()
            for node in ast.walk(loop):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                    continue
                if isinstance(node, ast.Attribute):
                    text = _chain_text(node)
                    if text is None:
                        continue
                    if isinstance(node.ctx, (ast.Store, ast.Del)):
                        stored.add(text)
                    elif isinstance(node.value, ast.Attribute):
                        recv = _chain_text(node.value)
                        if recv is not None:
                            counts.setdefault(recv, []).append(node.value)
                elif isinstance(node, ast.Name) and isinstance(
                        node.ctx, (ast.Store, ast.Del)):
                    stored.add(node.id)
            repeated = {text: nodes for text, nodes in counts.items()
                        if len(nodes) >= _PERF003_MIN_REPEATS}
            for text in sorted(repeated):
                # Skip chains invalidated by a write to any prefix.
                prefixes = text.split(".")
                if any(".".join(prefixes[:i]) in stored
                       for i in range(1, len(prefixes) + 1)):
                    continue
                # Report only minimal chains: `self.stats` subsumes
                # `self.stats.reads` (hoisting the short one fixes both).
                if any(other != text and text.startswith(other + ".")
                       for other in repeated):
                    continue
                first = min(repeated[text], key=lambda n: (n.lineno,
                                                           n.col_offset))
                yield module.finding(
                    first, "PERF003",
                    f"attribute chain '{text}' dereferenced "
                    f"{len(repeated[text])}x in one loop in "
                    f"{func.name!r} — hoist it into a local before "
                    f"the loop")


# ---------------------------------------------------------------------------
# PERF004 — needless generator trampolines
# ---------------------------------------------------------------------------

def _body_sans_docstring(func: ast.FunctionDef) -> List[ast.stmt]:
    body = list(func.body)
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)):
        body = body[1:]
    return body


def rule_perf004(module: Module) -> Iterator[Finding]:
    """PERF004: a generator that only delegates to another generator.

    ``def f(...): yield from g(...)`` adds a frame that CPython must
    walk on *every* resume of the inner generator — pure per-event
    overhead.  Call ``g`` directly at the spawn/delegation site, or
    make ``f`` a plain function returning ``g(...)``'s generator.
    Flagged shapes (hot set only):

    * ``yield from call(...)`` as the entire body;
    * ``return (yield from call(...))`` as the entire body;
    * ``x = yield expr`` followed by ``return x`` (a one-event wait
      wrapper — inline the yield at the call sites).
    """
    for func in _scoped_functions(module):
        if func not in module.generator_defs:
            continue
        body = _body_sans_docstring(func)
        if len(body) == 1:
            stmt = body[0]
            inner = None
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value,
                                                         ast.YieldFrom):
                inner = stmt.value.value
            elif isinstance(stmt, ast.Return) and isinstance(stmt.value,
                                                             ast.YieldFrom):
                inner = stmt.value.value
            if isinstance(inner, ast.Call):
                yield module.finding(
                    func, "PERF004",
                    f"generator {func.name!r} only delegates with 'yield "
                    f"from' — a trampoline frame on every resume; call "
                    f"the inner generator directly")
        elif len(body) == 2:
            first, second = body
            if (isinstance(first, ast.Assign)
                    and len(first.targets) == 1
                    and isinstance(first.targets[0], ast.Name)
                    and isinstance(first.value, ast.Yield)
                    and isinstance(second, ast.Return)
                    and isinstance(second.value, ast.Name)
                    and second.value.id == first.targets[0].id):
                yield module.finding(
                    func, "PERF004",
                    f"generator {func.name!r} wraps a single yield — "
                    f"inline 'yield ...' at the call sites instead of "
                    f"paying a 'yield from' frame per event")


# ---------------------------------------------------------------------------
# PERF005 — eager f-string work on debug-disabled paths
# ---------------------------------------------------------------------------

def _race_receiver(call: ast.Call) -> Optional[str]:
    """For ``<recv>.read/write(...)`` where recv is a race handle
    (named ``race`` or ending ``.race``), the receiver's text."""
    func = call.func
    if not (isinstance(func, ast.Attribute)
            and func.attr in ("read", "write")):
        return None
    recv = func.value
    if isinstance(recv, ast.Name) and recv.id == "race":
        return recv.id
    if isinstance(recv, ast.Attribute) and recv.attr == "race":
        return _chain_text(recv)
    return None


def _guarded_by_enabled(module: Module, node: ast.AST, recv: str) -> bool:
    """Whether an ancestor ``if`` tests the handle's ``enabled`` flag."""
    want = f"{recv}.enabled"
    for anc in module.ancestors(node):
        if isinstance(anc, ast.If):
            for sub in ast.walk(anc.test):
                if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                    text = _chain_text(sub)
                    if text == want or (text is not None
                                        and text.endswith(".enabled")):
                        return True
    return False


def rule_perf005(module: Module) -> Iterator[Finding]:
    """PERF005: a race-label f-string built even when recording is off.

    ``self.race.write(f"t{table_id}/{key}")`` formats the label
    *before* the no-op call — in production mode (``NULL_SHARED``) the
    f-string is pure waste on every hot-path access.  Guard the call::

        if self.race.enabled:
            self.race.write(f"t{table_id}/{key}")

    Only f-string arguments are flagged: a constant label costs
    nothing to pass.
    """
    for func in _scoped_functions(module):
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            recv = _race_receiver(node)
            if recv is None:
                continue
            if not any(isinstance(arg, ast.JoinedStr) for arg in node.args):
                continue
            if _guarded_by_enabled(module, node, recv):
                continue
            yield module.finding(
                node, "PERF005",
                f"f-string label built eagerly for '{recv}.{node.func.attr}' "
                f"even when recording is off — guard with "
                f"'if {recv}.enabled:'")


PERF_RULES = (rule_perf001, rule_perf002, rule_perf003, rule_perf004,
              rule_perf005)
PERF_RULE_CODES = {
    "PERF001": rule_perf001,
    "PERF002": rule_perf002,
    "PERF003": rule_perf003,
    "PERF004": rule_perf004,
    "PERF005": rule_perf005,
}
