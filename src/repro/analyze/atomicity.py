"""Yield-point atomicity rules (SIM006–SIM008).

These rules consume the project-wide :class:`~repro.analyze.callgraph.
CallGraphIndex` (built by the driver and attached as
``module.callgraph``):

=======  ==========================================================
Code     What it catches
=======  ==========================================================
SIM006   a coroutine writes the same ``self.*`` field both before
         and after a yield point with no lock held across it — the
         read-modify-write is torn by whatever ran in between
SIM007   a may-yield function called from a plain (non-generator)
         function without spawning it — the coroutine is created
         but can never suspend, so its simulated work is wrong or
         silently skipped (generalizes SIM001 across wrappers)
SIM008   two locks acquired in opposite orders on different static
         paths — the classic ABBA deadlock, which in a cooperative
         kernel manifests as both processes parked forever
=======  ==========================================================

All three inherit the driver's precision-first stance: name-level
resolution, every-definition-agrees semantics, and mutually exclusive
branches (if/else arms, distinct except handlers) never pair.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analyze.callgraph import (CallGraphIndex, SYNC_DRIVERS,
                                     _BUILTIN_METHOD_NAMES, _call_name,
                                     _is_process_call)
from repro.analyze.linter import Finding, Module

__all__ = ["rule_sim006", "rule_sim007", "rule_sim008"]


# ---------------------------------------------------------------------------
# branch exclusivity — shared by SIM006
# ---------------------------------------------------------------------------

def _in_block(block, node: ast.AST) -> bool:
    return any(stmt is node or node in ast.walk(stmt) for stmt in block)


def _branch_marks(module: Module, node: ast.AST) -> Dict[int, Tuple[str, str]]:
    """For each If/Try ancestor, which arm ``node`` sits in."""
    marks: Dict[int, Tuple[str, str]] = {}
    child: ast.AST = node
    for anc in module.ancestors(node):
        if isinstance(anc, ast.If):
            if _in_block(anc.body, child):
                marks[id(anc)] = ("if", "body")
            elif _in_block(anc.orelse, child):
                marks[id(anc)] = ("if", "orelse")
        elif isinstance(anc, ast.Try):
            for i, handler in enumerate(anc.handlers):
                if child is handler or _in_block([handler], child):
                    marks[id(anc)] = ("try", f"handler{i}")
                    break
        elif isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        child = anc
    return marks


def _mutually_exclusive(module: Module, a: ast.AST, b: ast.AST) -> bool:
    """Can ``a`` and ``b`` never both execute in one pass?  True when a
    common If ancestor puts them in opposite arms, or a common Try puts
    them in different except handlers."""
    marks_a = _branch_marks(module, a)
    marks_b = _branch_marks(module, b)
    for key, arm_a in marks_a.items():
        arm_b = marks_b.get(key)
        if arm_b is not None and arm_a != arm_b:
            return True
    return False


# ---------------------------------------------------------------------------
# SIM006
# ---------------------------------------------------------------------------

def _self_attr_key(target: ast.AST) -> Optional[str]:
    """``self.x`` or ``self.x[...]`` as an assignment target → 'self.x'."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self"):
        return f"self.{node.attr}"
    return None


def rule_sim006(module: Module) -> Iterator[Finding]:
    """SIM006: non-atomic read-modify-write of shared state across a
    yield point.

    In a coroutine, everything between two yields runs atomically; a
    write to ``self.x`` before a yield and again after it is only
    correct if no other process touches ``self.x`` in between — which
    nothing enforces unless a lock is held across the yield.  Flags
    the pattern *unless* the intervening yield lies inside a lock span
    (``token = lock.acquire()`` … ``lock.release(token)``) of this
    function, or the two writes are on mutually exclusive branches.
    """
    cg: Optional[CallGraphIndex] = getattr(module, "callgraph", None)
    if cg is None:
        return
    for func in module.functions():
        summary = cg.summary_for(func)
        if summary is None or not summary.is_sim_coroutine:
            continue
        # Writes to self.* fields, in textual order.
        writes: Dict[str, List[ast.AST]] = {}
        for node in summary._own_nodes():
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                key = _self_attr_key(target)
                if key is not None:
                    writes.setdefault(key, []).append(node)
        covered = summary.lock_spans  # (lock_id, var, start, end)
        for key, nodes in sorted(writes.items()):
            if len(nodes) < 2:
                continue
            nodes.sort(key=lambda n: n.lineno)
            found = _uncovered_pair(module, nodes, summary.yield_lines,
                                    covered)
            if found is not None:
                first, yline, second = found
                yield module.finding(
                    second, "SIM006",
                    f"{key!r} is written before the yield at line {yline} "
                    f"and again here with no lock held across it — the "
                    f"update is torn by whatever runs at the yield; hold a "
                    f"lock across the section or recompute after the yield")
                break  # one finding per function per field set


def _uncovered_pair(module: Module, writes: List[ast.AST],
                    yield_lines: List[int],
                    spans) -> Optional[Tuple[ast.AST, int, ast.AST]]:
    """The first (write, yield-line, write) triple whose yield is not
    inside any lock span and whose nodes are not branch-exclusive."""
    for i, first in enumerate(writes):
        for second in writes[i + 1:]:
            for yline in yield_lines:
                if not first.lineno < yline < second.lineno:
                    continue
                if any(start <= yline <= end
                       for _lock, _var, start, end in spans):
                    continue
                if (_mutually_exclusive(module, first, second)
                        or _yield_exclusive(module, first, second, yline)):
                    continue
                return first, yline, second
    return None


def _yield_exclusive(module: Module, first: ast.AST, second: ast.AST,
                     yline: int) -> bool:
    """Is the yield at ``yline`` branch-exclusive with either write?"""
    for node in ast.walk(module.tree):
        if (isinstance(node, (ast.Yield, ast.YieldFrom))
                and node.lineno == yline):
            if (_mutually_exclusive(module, first, node)
                    or _mutually_exclusive(module, node, second)):
                return True
    return False


# ---------------------------------------------------------------------------
# SIM007
# ---------------------------------------------------------------------------

def rule_sim007(module: Module) -> Iterator[Finding]:
    """SIM007: a may-yield function invoked from a plain function.

    Calling a sim-coroutine (or a wrapper that returns one) from a
    non-generator produces a generator object the kernel never drives:
    discarding it drops the simulated work, and consuming it with
    ``list``/``sum``/a ``for`` loop executes the body *without the
    kernel* — yields of Events come back as opaque objects and no
    simulated time passes.  Passing it into ``sim.process(...)`` (or
    any spawner) and returning it to a caller are the legitimate exits
    and are never flagged.
    """
    cg: Optional[CallGraphIndex] = getattr(module, "callgraph", None)
    if cg is None or module.index is None:
        return
    for func in module.functions():
        if func in module.generator_defs:
            continue
        summary = cg.summary_for(func)
        if summary is None:
            continue
        for node in summary._own_nodes():
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None or not cg.may_yield_name(name):
                continue
            if (isinstance(node.func, ast.Attribute)
                    and name in _BUILTIN_METHOD_NAMES):
                continue
            verdict = _classify_context(module, cg, summary, node, name)
            if verdict is not None:
                yield module.finding(node, "SIM007", verdict)


def _classify_context(module: Module, cg: CallGraphIndex, summary,
                      call: ast.Call, name: str) -> Optional[str]:
    """A message when this may-yield call is misused, else None."""
    parent = module.parent(call)
    # Statement-position discard.  Unambiguous generator names are
    # SIM001's exact territory; SIM007 adds the wrapper case SIM001
    # cannot see (a plain function whose return value must be driven).
    if isinstance(parent, ast.Expr):
        if module.index.is_generator_name(name):
            return None
        return (f"call to may-yield {name!r} is discarded in a "
                f"non-generator — the coroutine it returns never runs; "
                f"spawn it with 'sim.process(...)' or 'yield from' it "
                f"from a coroutine")
    if isinstance(parent, ast.Return):
        return None  # delegation: the caller decides how to drive it
    if isinstance(parent, ast.For) and parent.iter is call:
        return (f"iterating may-yield {name!r} in a non-generator drives "
                f"the coroutine without the kernel — Events are never "
                f"waited on and simulated time does not advance; spawn it "
                f"with 'sim.process(...)'")
    if isinstance(parent, ast.Call) and call in parent.args:
        if _is_process_call(parent):
            return None
        outer = _call_name(parent)
        if outer is not None and cg.is_spawner_name(outer):
            return None
        if (isinstance(parent.func, ast.Name)
                and parent.func.id in SYNC_DRIVERS):
            return (f"'{parent.func.id}(...)' consumes may-yield {name!r} "
                    f"synchronously — the coroutine runs outside the "
                    f"kernel; spawn it with 'sim.process(...)'")
        return None  # handed to an unknown callee: assume it spawns
    if (isinstance(parent, ast.Assign) and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)):
        var = parent.targets[0].id
        if _var_escapes(module, summary, var, parent):
            return None
        return (f"result of may-yield {name!r} is bound to {var!r} but "
                f"never spawned or returned — the coroutine never runs; "
                f"pass it to 'sim.process(...)' or return it")
    return None


def _var_escapes(module: Module, summary, var: str,
                 binding: ast.Assign) -> bool:
    """Does ``var`` reach a spawner, a return, or any other call?"""
    for node in summary._own_nodes():
        if isinstance(node, ast.Return) and node.value is not None:
            if any(isinstance(n, ast.Name) and n.id == var
                   for n in ast.walk(node.value)):
                return True
        if isinstance(node, ast.Call) and node is not binding.value:
            in_args = any(isinstance(a, ast.Name) and a.id == var
                          for a in list(node.args)
                          + [k.value for k in node.keywords])
            if in_args:
                return True  # spawned, stored, or at least handed off
    return False


# ---------------------------------------------------------------------------
# SIM008
# ---------------------------------------------------------------------------

def rule_sim008(module: Module) -> Iterator[Finding]:
    """SIM008: lock-order inversion across static paths.

    The call-graph index records every "lock A held while acquiring
    lock B" pair project-wide (directly nested spans, plus locks
    reachable through calls made inside a span).  When both (A, B) and
    (B, A) exist, two processes taking the opposite paths park forever
    — the cooperative kernel has no preemption to break the cycle.
    Each module reports the witnesses that lie in its own file.
    """
    cg: Optional[CallGraphIndex] = getattr(module, "callgraph", None)
    if cg is None:
        return
    for a, b in cg.inversions():
        if a > b:
            continue  # report each unordered pair once, from both sides
        for outer, inner in ((a, b), (b, a)):
            other = next(iter(cg.lock_pairs[(inner, outer)]))
            for path, line, detail in cg.lock_pairs[(outer, inner)]:
                if path != module.path:
                    continue
                yield Finding(
                    path=path, line=line, col=1, code="SIM008",
                    message=(f"lock-order inversion: {inner!r} is acquired "
                             f"here while holding {outer!r} ({detail}), but "
                             f"the opposite order is taken at "
                             f"{other[0]}:{other[1]} ({other[2]}) — two "
                             f"processes on these paths deadlock"))
