"""``python -m repro.analyze [paths]`` — run simlint from the shell.

Exit status: 0 when clean, 1 when findings exist, 2 on usage or parse
errors (including a nonexistent input path, validated up front so a CI
typo fails loudly instead of linting nothing).  CI runs ``python -m
repro.analyze src examples tools`` and fails the build on any finding.

``--format json`` emits a machine-readable report (a JSON object with
``findings`` and ``errors`` arrays) for editor and CI integrations; the
default ``text`` format is one ``path:line:col: CODE message`` line per
finding, which ``.github/simlint-problem-matcher.json`` teaches GitHub
Actions to annotate inline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analyze.detrules import DET_RULE_CODES
from repro.analyze.linter import analyze_paths
from repro.analyze.perfrules import PERF_RULE_CODES
from repro.analyze.profilehot import HotSet
from repro.analyze.rules import RULE_CODES

# Every selectable rule: the SIM correctness rules, the PERF hot-path
# rules (run by default only with --perf or --select), and the DET
# state-isolation rules (opt-in via --select DET; CI runs them as their
# own zero-findings gate).
_ALL_CODES = {**RULE_CODES, **PERF_RULE_CODES, **DET_RULE_CODES}

# Rule families, in catalogue order.  --select/--ignore accept a bare
# family name as shorthand for every code in it.
_FAMILIES = {
    "SIM": (RULE_CODES, "correctness — silent DES bugs"),
    "PERF": (PERF_RULE_CODES, "hot-path waste, scoped by --profile-json"),
    "DET": (DET_RULE_CODES, "state isolation for deterministic sweeps"),
}


def _expand_tokens(spec: str) -> tuple:
    """``"DET,SIM002"`` → (codes in spec order, unknown tokens)."""
    codes: List[str] = []
    unknown: List[str] = []
    for token in (t.strip().upper() for t in spec.split(",")):
        if not token:
            continue
        if token in _ALL_CODES:
            codes.append(token)
        elif token in _FAMILIES:
            codes.extend(sorted(_FAMILIES[token][0]))
        else:
            unknown.append(token)
    return codes, unknown


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="DES-aware static analysis (simlint) for this "
                    "reproduction's simulation code.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes or families to run "
                             "(e.g. SIM002,PERF003 or DET); default: all "
                             "SIM rules")
    parser.add_argument("--ignore", metavar="CODES",
                        help="comma-separated rule codes or families to "
                             "drop from the selection (e.g. PERF or SIM003)")
    parser.add_argument("--perf", action="store_true",
                        help="also run the PERF001-PERF005 hot-path rules")
    parser.add_argument("--profile-json", metavar="PATH",
                        help="scope the PERF rules to the hot set of this "
                             "bench_kernel.py --profile-json dump")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for family, (codes, blurb) in _FAMILIES.items():
            print(f"{family} — {blurb}")
            for code in sorted(codes):
                doc = (codes[code].__doc__ or "").strip().splitlines()[0]
                print(f"  {code}  {doc}")
        return 0

    if args.select:
        selected, unknown = _expand_tokens(args.select)
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    elif args.perf:
        selected = sorted(RULE_CODES) + sorted(PERF_RULE_CODES)
    else:
        selected = sorted(RULE_CODES)
    if args.ignore:
        dropped, unknown = _expand_tokens(args.ignore)
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        selected = [c for c in selected if c not in set(dropped)]
    seen = set()
    rules = [_ALL_CODES[c] for c in selected
             if not (c in seen or seen.add(c))]

    hotset = None
    if args.profile_json:
        if not os.path.exists(args.profile_json):
            print(f"error: no such profile: {args.profile_json}",
                  file=sys.stderr)
            return 2
        hotset = HotSet.load(args.profile_json)

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}",
                  file=sys.stderr)
        return 2

    try:
        findings, errors = analyze_paths(args.paths, rules=rules,
                                         hotset=hotset)
    except FileNotFoundError as exc:  # raced away after the check above
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps({
            "findings": [
                {"path": f.path, "line": f.line, "col": f.col,
                 "code": f.code, "message": f.message}
                for f in findings
            ],
            "errors": errors,
        }, indent=2, sort_keys=True))
    else:
        for line in errors:
            print(f"error: {line}", file=sys.stderr)
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
