"""``python -m repro.analyze [paths]`` — run simlint from the shell.

Exit status: 0 when clean, 1 when findings exist, 2 on usage or parse
errors.  CI runs ``python -m repro.analyze src`` and fails the build on
any finding.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analyze.linter import analyze_paths
from repro.analyze.rules import RULE_CODES


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="DES-aware static analysis (simlint) for this "
                    "reproduction's simulation code.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(e.g. SIM002,SIM003); default: all")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULE_CODES):
            doc = (RULE_CODES[code].__doc__ or "").strip().splitlines()[0]
            print(f"{code}  {doc}")
        return 0

    rules = None
    if args.select:
        codes = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        unknown = [c for c in codes if c not in RULE_CODES]
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        rules = [RULE_CODES[c] for c in codes]

    try:
        findings, errors = analyze_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    for line in errors:
        print(f"error: {line}", file=sys.stderr)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
    if errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
