"""The DET rules: whole-program state isolation for deterministic sweeps.

The sweep runner's contract (see :mod:`repro.experiments.sweep`) is
that cells are pure functions of ``(experiment, params, seed, scale)``
— serial and parallel execution merge to bit-identical digests, and a
future multi-machine fan-out can place any cell on any host.  These
rules prove the preconditions statically, on top of the
global-write-effect analysis in :mod:`repro.analyze.stateflow`, the
way the may-yield call graph powers SIM006–SIM008.

=======  ==========================================================
Code     What it catches
=======  ==========================================================
DET001   module-level mutable state written from runtime code
         paths (a registry/cache mutated after import time), and
         sweep cells that transitively call into such a write
DET002   ``os.environ`` / ``getenv`` touched outside the
         sanctioned config modules (the sweep/scale layer owns the
         environment; everyone else must take parameters)
DET003   mutable class attributes and mutable default arguments —
         state shared across instances and calls
DET004   ``lru_cache``/memo decorators on functions reachable from
         a sweep cell — a cache that outlives a cell is a
         cross-seed channel
DET005   ``id()``/``hash()`` ordering, PIDs, or wall-clock values
         flowing into sort keys, digests, or formatted labels
DET006   closure/lambda/process-local capture in sweep cell
         payloads — unpicklable under the spawn context, divergent
         under multi-machine fan-out
=======  ==========================================================

Sanctioned instances carry ``# simlint: disable=DETxxx <why>`` on the
flagged line, same as the SIM and PERF rules; the runtime counterpart
(:func:`repro.sim.sanitize.check_cell_state`) fingerprints registered
module state around each cell under debug mode, so the lint and the
sanitizer enforce the same invariant from both sides.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analyze.linter import Finding, Module
from repro.analyze.stateflow import _CELL_REGISTRY_NAMES, _root_name

__all__ = ["DET_RULES", "DET_RULE_CODES", "rule_det001", "rule_det002",
           "rule_det003", "rule_det004", "rule_det005", "rule_det006"]


# ---------------------------------------------------------------------------
# DET001 — module-level mutable state written at runtime
# ---------------------------------------------------------------------------

def rule_det001(module: Module) -> Iterator[Finding]:
    """DET001: module-level state written from a runtime code path.

    Two shapes, both from the :class:`~repro.analyze.stateflow.
    StateIndex` write-effect analysis:

    * a direct write site — a ``global`` rebind, an item/attribute
      store, or a mutating method call against a module-level binding
      (or a ``ClassName.attr`` store) inside a function body.  State
      that survives one experiment cell into the next is exactly what
      the sweep's env-snapshot contract cannot contain;
    * a registered sweep cell with no direct write of its own whose
      transitive callees mutate module/class state — the
      interprocedural case a per-function lint cannot see.

    Sanctioned lazy registries (resolve-once caches like
    ``cell_registry``) carry a pragma with a justification.
    """
    stateindex = module.stateindex
    if stateindex is None:
        return
    kinds = {
        "rebind": "rebound via 'global'",
        "mutate": "mutated in place",
        "class-attr": "written through its class",
    }
    direct_writers: Set[str] = set()
    for write in stateindex.writes_in(module):
        direct_writers.add(write.func_name)
        reach = ""
        if stateindex.scoped and stateindex.reachable_from_cells(
                write.func_name):
            reach = " and is reachable from a sweep cell"
        yield module.finding(
            write.node, "DET001",
            f"module-level binding {write.name!r} ({write.classification}) "
            f"is {kinds[write.kind]} at runtime in {write.func_name!r}"
            f"{reach} — state outlives the experiment cell; pass it "
            f"explicitly or reset it per cell")
    for func in module.functions():
        if (func.name in stateindex.cell_seed_names
                and func.name not in direct_writers
                and stateindex.transitively_mutates(func.name)):
            yield module.finding(
                func, "DET001",
                f"sweep cell {func.name!r} transitively calls into code "
                f"that mutates module-level state — the leak escapes the "
                f"cell's digest and poisons sibling seeds")


# ---------------------------------------------------------------------------
# DET002 — os.environ outside the sanctioned config modules
# ---------------------------------------------------------------------------

# The modules that own the process environment: the sweep runner (whose
# snapshot/restore IS the isolation mechanism) and the scale resolver
# (the one sanctioned read/write funnel for REPRO_* knobs).
_ENVIRON_SANCTIONED_SUFFIXES = (
    "experiments/sweep.py",
    "experiments/scale.py",
)

_ENVIRON_FUNCS = frozenset({"getenv", "putenv", "unsetenv"})


def _is_environ_node(module: Module, node: ast.AST) -> Optional[str]:
    """A description when ``node`` touches the process environment."""
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return "os.environ" if _root_name(node.value) == "os" else None
    if isinstance(node, ast.Name) and node.id == "environ":
        if module.from_imports.get("environ") == "os.environ":
            return "os.environ"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _ENVIRON_FUNCS:
            if _root_name(func.value) == "os":
                return f"os.{func.attr}()"
        elif isinstance(func, ast.Name) and func.id in _ENVIRON_FUNCS:
            if module.from_imports.get(func.id, "").startswith("os."):
                return f"os.{func.id}()"
    return None


def rule_det002(module: Module) -> Iterator[Finding]:
    """DET002: the process environment touched outside sweep/scale.

    ``os.environ`` is process-global state with none of the isolation
    machinery module globals get: the sweep runner snapshots and
    restores it around every cell precisely because nothing else is
    allowed to depend on it mid-run.  Reads hide configuration from
    the digest (two hosts, two answers); writes leak into sibling
    cells.  Code that needs a knob takes it as a parameter resolved by
    the sweep/scale layer; genuinely init-time reads carry a pragma.
    """
    path = module.path.replace("\\", "/")
    if path.endswith(_ENVIRON_SANCTIONED_SUFFIXES):
        return
    seen_lines: Set[int] = set()
    for node in module.nodes_of_type(ast.Attribute, ast.Name, ast.Call):
        desc = _is_environ_node(module, node)
        if desc is None:
            continue
        line = getattr(node, "lineno", 1)
        if line in seen_lines:
            continue  # `os.environ[...]` is an Attribute and a Name walk
        seen_lines.add(line)
        yield module.finding(
            node, "DET002",
            f"{desc} touched outside the sanctioned sweep/scale modules "
            f"— environment is process-global state the sweep isolates "
            f"per cell; take the value as a parameter instead")


# ---------------------------------------------------------------------------
# DET003 — mutable class attributes / mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_FACTORY_NAMES = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
})


def _is_mutable_value(node: Optional[ast.AST]) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_FACTORY_NAMES
    return False


def rule_det003(module: Module) -> Iterator[Finding]:
    """DET003: mutable state shared across instances or calls.

    Two classic Python footguns with the same failure mode — one
    object, many owners:

    * a class-body ``attr = []`` / ``attr = {}`` is a single container
      shared by every instance; two experiment cells touching two
      instances are touching the same list;
    * a ``def f(x, acc=[])`` default is evaluated once at import and
      mutated forever after — call N's result depends on calls 1..N-1,
      which is precisely the cross-seed coupling the digests exist to
      rule out.
    """
    for cls in module.nodes_of_type(ast.ClassDef):
        for stmt in cls.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if (isinstance(target, ast.Name)
                        and not target.id.startswith("__")
                        and _is_mutable_value(value)):
                    yield module.finding(
                        stmt, "DET003",
                        f"class attribute {cls.name}.{target.id} is a "
                        f"mutable container shared by every instance — "
                        f"initialize it in __init__")
    for func in module.functions():
        args = func.args
        for default in list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]:
            if _is_mutable_value(default):
                yield module.finding(
                    default, "DET003",
                    f"mutable default argument in {func.name!r} is "
                    f"evaluated once and shared across calls — default "
                    f"to None and build it in the body")


# ---------------------------------------------------------------------------
# DET004 — memo caches reachable from sweep cells
# ---------------------------------------------------------------------------

_MEMO_DECORATORS = frozenset({
    "lru_cache", "cache", "cached_property", "memoize", "lru_cache_typed",
})


def _decorator_base_name(dec: ast.AST) -> Optional[str]:
    node = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def rule_det004(module: Module) -> Iterator[Finding]:
    """DET004: a memo cache on a function a sweep cell can reach.

    ``functools.lru_cache`` (and friends) attach a process-lifetime
    cache to the function object.  Inside a sweep worker that cache
    outlives the cell: seed 7's cell can be served a value computed
    under seed 3's run, and two workers (or two machines) answer the
    same cell differently depending on what ran before.  Scoped by the
    cell-reachability fixed point — a memo on a path no cell reaches
    (CLI arg parsing, doc generation) is fine.
    """
    stateindex = module.stateindex
    for func in module.functions():
        for dec in func.decorator_list:
            name = _decorator_base_name(dec)
            if name not in _MEMO_DECORATORS:
                continue
            if stateindex is not None and not (
                    stateindex.reachable_from_cells(func.name)):
                continue
            yield module.finding(
                dec, "DET004",
                f"@{name} on {func.name!r}, which a sweep cell can "
                f"reach — the cache outlives the cell and couples "
                f"seeds; compute per cell or key the cache explicitly")


# ---------------------------------------------------------------------------
# DET005 — process-local values flowing into deterministic outputs
# ---------------------------------------------------------------------------

# Bare-name calls that are nondeterministic per process/run.
_NONDET_BARE = frozenset({"id", "hash"})
# from-import targets resolved through Module.from_imports.
_NONDET_FROM = frozenset({
    "os.getpid", "time.time", "time.perf_counter", "time.monotonic",
    "time.time_ns", "uuid.uuid4",
})
# receiver-name → attribute calls.
_NONDET_ATTRS = {
    "os": {"getpid"},
    "time": {"time", "perf_counter", "monotonic", "time_ns"},
    "uuid": {"uuid4"},
    "datetime": {"now", "utcnow", "today"},
}

_SORTERS = frozenset({"sorted", "sort", "min", "max", "nsmallest",
                      "nlargest"})
_DIGESTERS = frozenset({"sha256", "sha1", "sha512", "md5", "blake2b",
                        "blake2s", "crc32", "adler32"})


def _nondet_call_desc(module: Module, node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _NONDET_BARE:
            return f"{func.id}()"
        target = module.from_imports.get(func.id)
        if target in _NONDET_FROM:
            return f"{target}()"
        return None
    if isinstance(func, ast.Attribute):
        root = _root_name(func.value)
        if root in _NONDET_ATTRS and func.attr in _NONDET_ATTRS[root]:
            return f"{root}.{func.attr}()"
    return None


def _nondet_context(module: Module, node: ast.AST) -> Optional[str]:
    """The deterministic-output context ``node`` flows into, if any."""
    for anc in module.ancestors(node):
        if isinstance(anc, ast.keyword) and anc.arg == "key":
            call = module.parent(anc)
            if isinstance(call, ast.Call):
                name = (call.func.id if isinstance(call.func, ast.Name)
                        else call.func.attr
                        if isinstance(call.func, ast.Attribute) else None)
                if name in _SORTERS:
                    return f"a {name}() sort key"
        elif isinstance(anc, ast.JoinedStr):
            return "a formatted label"
        elif isinstance(anc, ast.Call):
            func = anc.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name in _DIGESTERS or (name is not None
                                      and "digest" in name.lower()):
                return f"a digest ({name})"
    return None


def rule_det005(module: Module) -> Iterator[Finding]:
    """DET005: a process-local value in a sort key, digest, or label.

    ``id()`` and ``hash()`` ordering, PIDs, and wall-clock reads are
    different in every process — harmless in a log line, fatal the
    moment they reach anything the determinism contract covers: a sort
    key reorders aggregation, a digest input forks serial from
    parallel, a metric label splits one series into two.  Flagged only
    in those flowing-into-output contexts; incidental uses elsewhere
    (diagnostics, signal delivery) are not findings.
    """
    for node in module.nodes_of_type(ast.Call):
        desc = _nondet_call_desc(module, node)
        if desc is None:
            continue
        context = _nondet_context(module, node)
        if context is None:
            continue
        yield module.finding(
            node, "DET005",
            f"process-local value {desc} flows into {context} — the "
            f"result differs across processes/hosts and breaks digest "
            f"equivalence; use a seed-derived or cell-identity value")


# ---------------------------------------------------------------------------
# DET006 — unpicklable / process-local sweep cell payloads
# ---------------------------------------------------------------------------

_PROCESS_LOCAL_FACTORIES = frozenset({
    "Simulator", "Lock", "RLock", "Condition", "Semaphore",
    "BoundedSemaphore", "Event", "Barrier", "open", "socket", "Thread",
    "ProcessPoolExecutor", "ThreadPoolExecutor",
})


def _registry_payloads(module: Module) -> Iterator[ast.AST]:
    """Every expression registered as a sweep cell runner."""
    for node in module.nodes_of_type(ast.Assign):
        name_targets = {t.id for t in node.targets
                        if isinstance(t, ast.Name)}
        sub_targets = {_root_name(t) for t in node.targets
                       if isinstance(t, ast.Subscript)}
        if not ((name_targets | sub_targets) & _CELL_REGISTRY_NAMES):
            continue
        if isinstance(node.value, ast.Dict):
            yield from node.value.values
        elif sub_targets & _CELL_REGISTRY_NAMES:
            yield node.value


def _module_binding_values(module: Module) -> Dict[str, ast.AST]:
    values: Dict[str, ast.AST] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    values[target.id] = stmt.value
    return values


def rule_det006(module: Module) -> Iterator[Finding]:
    """DET006: a sweep cell payload the spawn context cannot ship.

    Spawn-context workers (and, next, remote machines) receive cells
    by pickling — so a payload must be a module-level function of pure
    data.  Flagged registrations:

    * a ``lambda`` — unpicklable, and its closure is process-local by
      construction;
    * a function defined *inside* another function — same problem,
      plus whatever the closure captured silently differs per process;
    * a ``partial`` binding an argument that is (or resolves to) a
      process-local object — a ``Simulator``, lock, open file, pool —
      which either fails to pickle or, worse, pickles a copy whose
      state diverges from the original on another machine.
    """
    nested_defs: Set[str] = set()
    for func in module.functions():
        if module.enclosing_function(func) is not None:
            nested_defs.add(func.name)
    bindings = _module_binding_values(module)
    for payload in _registry_payloads(module):
        if isinstance(payload, ast.Lambda):
            yield module.finding(
                payload, "DET006",
                "sweep cell payload is a lambda — unpicklable under the "
                "spawn context; register a module-level function")
        elif isinstance(payload, ast.Name) and payload.id in nested_defs:
            yield module.finding(
                payload, "DET006",
                f"sweep cell payload {payload.id!r} is a closure (defined "
                f"inside a function) — unpicklable under the spawn "
                f"context and its captures are process-local; hoist it "
                f"to module level")
        elif (isinstance(payload, ast.Call)
              and _decorator_base_name(payload) == "partial"):
            for arg in list(payload.args) + [k.value
                                             for k in payload.keywords]:
                bound = arg
                if isinstance(arg, ast.Name) and arg.id in bindings:
                    bound = bindings[arg.id]
                if isinstance(bound, ast.Lambda):
                    yield module.finding(
                        payload, "DET006",
                        "sweep cell partial() binds a lambda — "
                        "unpicklable under the spawn context")
                    break
                if (isinstance(bound, ast.Call)
                        and _decorator_base_name(bound)
                        in _PROCESS_LOCAL_FACTORIES):
                    name = _decorator_base_name(bound)
                    yield module.finding(
                        payload, "DET006",
                        f"sweep cell partial() binds a process-local "
                        f"{name} object — it cannot move across the "
                        f"process boundary intact; pass parameters and "
                        f"construct inside the cell")
                    break


DET_RULES = (rule_det001, rule_det002, rule_det003, rule_det004,
             rule_det005, rule_det006)
DET_RULE_CODES = {
    "DET001": rule_det001,
    "DET002": rule_det002,
    "DET003": rule_det003,
    "DET004": rule_det004,
    "DET005": rule_det005,
    "DET006": rule_det006,
}
