"""Interprocedural global-write-effect analysis (DET001–DET006).

The sweep runner's isolation contract — serial and parallel execution
of the same (experiment, config-point, seed) grid merge to identical
digests — is only as strong as the absence of *hidden state*: a
module-level cache mutated mid-run, a registry grown by one cell and
read by the next, a memo that outlives its seed.  The runtime guards
(env snapshot/restore in ``_execute_cell``, the debug-mode cell-state
fingerprint) catch leaks after the fact; this module proves most of
them impossible statically, the way the may-yield call graph
(:mod:`repro.analyze.callgraph`) powers SIM006–SIM008.

Per module, every **top-level binding** is classified:

* ``immutable-constant`` — bound to an immutable literal (constants,
  tuples/frozensets of constants);
* ``init-time registry`` — a mutable container built at import time
  and never touched from function bodies (``SWEEP_CELLS``, rule
  tables, paper-figure dicts);
* ``runtime-mutable`` — written from *inside a function*: a ``global``
  rebind, an item/attribute store, or a mutating method call.  This is
  the DET001 hazard: state that survives one experiment cell into the
  next.

On top of the per-function direct-write sites, a monotone fixed point
propagates **"transitively mutates module/class state"** through the
name-based project call graph, and a second reachability pass marks
every function reachable from a registered **sweep cell** (the values
of ``SWEEP_CELLS`` registries, plus ``*_cell`` defs).  DET004 uses the
intersection: a memo cache is only a cross-seed channel if a cell can
actually fill it.

Resolution follows the callgraph module's precision-first policy:
name-based, builtin container methods never resolve to project
functions, dynamic indirection is invisible.  The runtime counterpart
(:func:`repro.sim.sanitize.check_cell_state`) covers what static names
cannot — the two check the same invariant from both sides.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analyze.callgraph import CallGraphIndex, _project_callee
from repro.analyze.linter import Module

__all__ = ["GlobalWrite", "ModuleState", "StateIndex",
           "CONSTANT", "REGISTRY", "MUTABLE"]

CONSTANT = "immutable-constant"
REGISTRY = "init-time registry"
MUTABLE = "runtime-mutable"

# Calls that build a mutable container.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque", "ChainMap", "WeakSet", "WeakKeyDictionary",
    "WeakValueDictionary",
})

# Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "sort", "reverse",
})

# Module-level names whose registries are how experiments hand cell
# runners to the sweep harness (repro.experiments.sweep).
_CELL_REGISTRY_NAMES = frozenset({"SWEEP_CELLS"})

# Names bound at module level by convention, not state (``__all__`` is
# a list but mutating it at runtime would be flagged all the same).
_DUNDER_OK = frozenset({"__all__", "__slots__", "__version__"})


def _is_immutable_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_immutable_literal(e) for e in node.elts)
    if isinstance(node, ast.UnaryOp):
        return _is_immutable_literal(node.operand)
    if isinstance(node, ast.BinOp):
        return (_is_immutable_literal(node.left)
                and _is_immutable_literal(node.right))
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("frozenset", "tuple")):
        return True
    return False


def _is_mutable_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_FACTORIES
    return False


def _root_name(node: ast.AST) -> Optional[str]:
    """The leftmost ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class GlobalWrite:
    """One runtime write to module/class state: the DET001 anchor."""

    __slots__ = ("path", "node", "name", "kind", "func_name",
                 "classification")

    def __init__(self, path: str, node: ast.AST, name: str, kind: str,
                 func_name: str, classification: str):
        self.path = path
        self.node = node
        self.name = name            # the binding (or "Class.attr")
        self.kind = kind            # 'rebind' | 'mutate' | 'class-attr'
        self.func_name = func_name  # the def performing the write
        self.classification = classification


class ModuleState:
    """One module's top-level bindings and the function-scope writes
    against them."""

    __slots__ = ("module", "bindings", "classes", "writes")

    def __init__(self, module: Module):
        self.module = module
        # top-level name → CONSTANT / REGISTRY / MUTABLE
        self.bindings: Dict[str, str] = {}
        self.classes: Set[str] = set()
        self.writes: List[GlobalWrite] = []
        self._classify_top_level()
        self._collect_runtime_writes()

    # -- classification --------------------------------------------------

    def _top_level_statements(self):
        """Module-body statements, descending into top-level if/try
        (version-gated constants) but never into defs or classes."""
        stack = list(self.module.tree.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.If, ast.Try)):
                for block in (stmt.body, stmt.orelse,
                              getattr(stmt, "finalbody", []) or []):
                    stack.extend(block)
                for handler in getattr(stmt, "handlers", []) or []:
                    stack.extend(handler.body)
                continue
            yield stmt

    def _classify_top_level(self) -> None:
        for stmt in self._top_level_statements():
            if isinstance(stmt, ast.ClassDef):
                self.classes.add(stmt.name)
                continue
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name in _DUNDER_OK:
                    self.bindings[name] = CONSTANT
                elif (isinstance(value, ast.Constant)
                        and value.value is None):
                    # A None placeholder is a lazy-init slot, not a
                    # constant — the honest label when a write flags it.
                    self.bindings[name] = REGISTRY
                elif _is_immutable_literal(value):
                    self.bindings.setdefault(name, CONSTANT)
                elif _is_mutable_container(value):
                    self.bindings[name] = REGISTRY
                else:
                    # None placeholders, arbitrary calls: a registry
                    # until a runtime write proves otherwise.
                    self.bindings.setdefault(name, REGISTRY)

    # -- runtime write collection ----------------------------------------

    def _locals_of(self, func: ast.FunctionDef,
                   own: Sequence[ast.AST]) -> Set[str]:
        args = func.args
        names = {a.arg for a in args.args + args.kwonlyargs
                 + getattr(args, "posonlyargs", [])}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        declared_global: Set[str] = set()
        for node in own:
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                names.add(node.id)
        return names - declared_global

    def _collect_runtime_writes(self) -> None:
        for func in self.module.functions():
            own = self._own_nodes(func)
            declared_global: Set[str] = set()
            for node in own:
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
            local_names = self._locals_of(func, own)
            for node in own:
                self._check_write(func, node, declared_global, local_names)

    def _own_nodes(self, func: ast.FunctionDef) -> List[ast.AST]:
        """Nodes in this def's own scope (nested defs excluded — their
        writes are attributed to themselves when iterated)."""
        found: List[ast.AST] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            found.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return found

    def _record(self, node: ast.AST, name: str, kind: str,
                func: ast.FunctionDef) -> None:
        classification = self.bindings.get(name, MUTABLE)
        if kind != "class-attr":
            self.bindings[name] = MUTABLE
        self.writes.append(GlobalWrite(
            self.module.path, node, name, kind, func.name, classification))

    def _check_write(self, func: ast.FunctionDef, node: ast.AST,
                     declared_global: Set[str],
                     local_names: Set[str]) -> None:
        # 1. `global X` + rebind.
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in declared_global):
                    self._record(node, target.id, "rebind", func)
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    self._flag_store(node, target, func, local_names)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    self._flag_store(node, target, func, local_names)
        # 2. mutating method calls on module-level bindings.
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr in _MUTATING_METHODS):
            root = _root_name(node.func.value)
            if (root is not None and root not in local_names
                    and self.bindings.get(root) in (REGISTRY, MUTABLE)):
                self._record(node, root, "mutate", func)

    def _flag_store(self, stmt: ast.AST, target: ast.AST,
                    func: ast.FunctionDef, local_names: Set[str]) -> None:
        root = _root_name(target)
        if root is None or root in local_names:
            return
        if root in self.classes and isinstance(target, ast.Attribute):
            self._record(stmt, f"{root}.{target.attr}", "class-attr", func)
        elif self.bindings.get(root) in (REGISTRY, MUTABLE):
            self._record(stmt, root, "mutate", func)


class StateIndex:
    """Project-wide state classifications plus the write-effect and
    cell-reachability fixed points."""

    def __init__(self, modules: Sequence[Module],
                 callgraph: Optional[CallGraphIndex] = None):
        modules = sorted(modules, key=lambda m: m.path)
        if callgraph is None:
            callgraph = CallGraphIndex(modules)
        self.states: Dict[str, ModuleState] = {
            m.path: ModuleState(m) for m in modules}
        # name → callee names resolvable to project functions.
        edges: Dict[str, Set[str]] = {}
        for summary in callgraph.summaries:
            callees = edges.setdefault(summary.name, set())
            for node in summary._own_nodes():
                if isinstance(node, ast.Call):
                    callee = _project_callee(node)
                    if callee is not None and callee in callgraph.by_name:
                        callees.add(callee)
        direct = {w.func_name
                  for state in self.states.values() for w in state.writes}
        self._mutators = self._propagate(direct, edges)
        # Function names registered as sweep cell runners (DET001's
        # transitive check and DET004's reachability scope hang off
        # these).
        self.cell_seed_names: Set[str] = self._cell_seeds(modules)
        self._scoped = bool(self.cell_seed_names)
        self._cell_reachable = self._propagate(self.cell_seed_names, edges,
                                               forward=True)

    # -- fixed points ----------------------------------------------------

    @staticmethod
    def _propagate(seeds: Set[str], edges: Dict[str, Set[str]],
                   forward: bool = False) -> Set[str]:
        """``forward=True``: grow the set along call edges (reachable
        *from* the seeds).  ``forward=False``: grow it against them (a
        caller of a member becomes a member — the write effect)."""
        result = set(seeds)
        changed = True
        while changed:
            changed = False
            if forward:
                for name in sorted(result & set(edges)):
                    new = edges[name] - result
                    if new:
                        result.update(new)
                        changed = True
            else:
                for name, callees in edges.items():
                    if name not in result and callees & result:
                        result.add(name)
                        changed = True
        return result

    @staticmethod
    def _cell_seeds(modules: Sequence[Module]) -> Set[str]:
        """Function names registered as sweep cell runners: values of
        ``SWEEP_CELLS`` registries plus ``*_cell`` defs (the harness
        convention — see repro.experiments.sweep)."""
        seeds: Set[str] = set()
        for module in modules:
            for node in module.nodes_of_type(ast.Assign):
                target_names = {t.id for t in node.targets
                                if isinstance(t, ast.Name)}
                sub_roots = {_root_name(t) for t in node.targets
                             if isinstance(t, ast.Subscript)}
                if not ((target_names | sub_roots)
                        & _CELL_REGISTRY_NAMES):
                    continue
                values: List[ast.AST] = []
                if isinstance(node.value, ast.Dict):
                    values = list(node.value.values)
                else:
                    values = [node.value]
                for value in values:
                    if isinstance(value, ast.Name):
                        seeds.add(value.id)
                    elif isinstance(value, ast.Attribute):
                        seeds.add(value.attr)
            for func in module.functions():
                if func.name.endswith("_cell"):
                    seeds.add(func.name)
        return seeds

    # -- queries ---------------------------------------------------------

    def state_of(self, module: Module) -> Optional[ModuleState]:
        return self.states.get(module.path)

    def classification(self, module: Module, name: str) -> Optional[str]:
        state = self.states.get(module.path)
        return state.bindings.get(name) if state else None

    def writes_in(self, module: Module) -> List[GlobalWrite]:
        state = self.states.get(module.path)
        return state.writes if state else []

    def transitively_mutates(self, name: str) -> bool:
        """True when some project def of ``name`` writes module/class
        state, directly or through any call it makes."""
        return name in self._mutators

    @property
    def scoped(self) -> bool:
        """Whether any sweep cell registry exists in the analyzed set —
        without one, cell reachability degrades to "everything" (the
        fixture/unit-test mode, mirroring PERF without a profile)."""
        return self._scoped

    def reachable_from_cells(self, name: str) -> bool:
        """True when a registered sweep cell can (transitively, by
        name) reach ``name`` — everything counts when unscoped."""
        if not self._scoped:
            return True
        return name in self._cell_reachable
