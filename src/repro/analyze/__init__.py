"""``repro.analyze`` — DES-aware static analysis for the reproduction.

The simulation kernel's idioms fail *silently*: a generator called
without ``yield from`` never runs, an ``acquire`` without a guarded
``release`` leaks a lock only on the error path, and a stray
``random.random()`` quietly destroys run-to-run determinism.  None of
these crash — they just produce wrong throughput/energy numbers, which
is fatal for a measurement-study reproduction.

``simlint`` (this package) machine-checks those idioms:

* :mod:`repro.analyze.rules` — the SIM001–SIM005 rule implementations;
* :mod:`repro.analyze.perfrules` — the PERF001–PERF005 hot-path rules,
  scoped by :mod:`repro.analyze.profilehot` to the benchmark's
  cProfile hot set (``python -m repro.analyze --perf``);
* :mod:`repro.analyze.detrules` — the DET001–DET006 state-isolation
  rules for the sweep runner's determinism contract, powered by the
  global-write-effect analysis in :mod:`repro.analyze.stateflow`
  (``python -m repro.analyze --select DET``);
* :mod:`repro.analyze.linter` — file walking, suppression comments,
  the cross-file generator index;
* ``python -m repro.analyze [paths]`` — the CLI, non-zero exit on
  findings (wired into CI).

The companion *runtime* sanitizers live in :mod:`repro.sim.sanitize`
and are enabled with ``Simulator(debug=True)`` (or the
``REPRO_SIM_DEBUG`` environment variable).  See ``docs/ANALYSIS.md``.
"""

from repro.analyze.detrules import DET_RULE_CODES, DET_RULES
from repro.analyze.linter import (
    Finding,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analyze.perfrules import PERF_RULE_CODES, PERF_RULES
from repro.analyze.profilehot import HotSet
from repro.analyze.rules import ALL_RULES, RULE_CODES
from repro.analyze.stateflow import StateIndex

__all__ = [
    "Finding",
    "HotSet",
    "StateIndex",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "ALL_RULES",
    "RULE_CODES",
    "PERF_RULES",
    "PERF_RULE_CODES",
    "DET_RULES",
    "DET_RULE_CODES",
]
