"""The SIM rules: DES-specific correctness checks.

Each rule is a callable ``rule(module) -> Iterator[Finding]``.  They
are deliberately high-precision: every pattern flagged here is a bug
class that has *no* runtime symptom in the kernel — the simulation
keeps running and produces wrong numbers.

=======  ==========================================================
Code     What it catches
=======  ==========================================================
SIM001   generator called without ``yield from`` / ``sim.process``
         (dropped coroutine — the process never executes)
SIM002   ``acquire``/``request`` whose wait or release is not
         protected by ``try/finally`` on all paths (lock leak on
         the interrupt path)
SIM003   nondeterminism: ``random.*`` / wall-clock reads /
         ``os.urandom`` / iteration over an unordered ``set``
SIM004   ``except Interrupt:`` that swallows the interrupt and
         keeps running (breaks crash-injection semantics)
SIM005   wall-clock vs simulated-time confusion: accumulating
         ``sim.now`` deltas in a loop, or ``time.sleep`` in
         simulation code
SIM006   same ``self.*`` field written before and after a yield
         with no lock held across it (torn read-modify-write) —
         see :mod:`repro.analyze.atomicity`
SIM007   may-yield function called from a non-generator without
         spawning it — see :mod:`repro.analyze.atomicity`
SIM008   lock-order inversion across static paths — see
         :mod:`repro.analyze.atomicity`
=======  ==========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analyze.atomicity import rule_sim006, rule_sim007, rule_sim008
# An attribute call like ``log.append(...)`` is far more likely a list
# method than a project generator of the same name, so SIM001 never
# matches builtin method names by attribute (bare-name calls still
# match).  The callgraph module owns the set: its call resolution
# applies the same policy.
from repro.analyze.callgraph import _BUILTIN_METHOD_NAMES
from repro.analyze.linter import Finding, Module

__all__ = ["ALL_RULES", "RULE_CODES", "rule_sim001", "rule_sim002",
           "rule_sim003", "rule_sim004", "rule_sim005", "rule_sim006",
           "rule_sim007", "rule_sim008"]


def rule_sim001(module: Module) -> Iterator[Finding]:
    """SIM001: a call to a known generator function whose result is
    dropped (bare expression statement) or yielded directly.

    ``self._flush()`` as a statement creates a generator object and
    throws it away — the simulated work silently never happens.  The
    fix is ``yield from self._flush()`` or ``sim.process(self._flush())``.
    ``yield self._flush()`` is the same bug in different clothes: the
    kernel expects an Event, gets a generator, and crashes *only if*
    that process is still alive to receive it.
    """
    index = module.index
    if index is None:
        return

    def is_generator_call(call: ast.AST) -> Optional[str]:
        if not isinstance(call, ast.Call):
            return None
        func = call.func
        if isinstance(func, ast.Name) and index.is_generator_name(func.id):
            return func.id
        if (isinstance(func, ast.Attribute)
                and func.attr not in _BUILTIN_METHOD_NAMES
                and index.is_generator_name(func.attr)):
            return func.attr
        return None

    for node in module.nodes:
        if isinstance(node, ast.Expr):
            value = node.value
            if isinstance(value, ast.Yield) and value.value is not None:
                name = is_generator_call(value.value)
                if name is not None:
                    yield module.finding(
                        node, "SIM001",
                        f"generator {name!r} yielded directly — a process "
                        f"yields Events; use 'yield from {name}(...)'")
            else:
                name = is_generator_call(value)
                if name is not None:
                    yield module.finding(
                        node, "SIM001",
                        f"call to generator {name!r} is discarded — the "
                        f"process never runs; use 'yield from' or "
                        f"'sim.process(...)'")


# ---------------------------------------------------------------------------
# SIM002
# ---------------------------------------------------------------------------

def _call_attr(node: ast.AST) -> Optional[str]:
    """``x.y(...)`` → ``'y'``, else None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _first_arg_name(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Name):
        return call.args[0].id
    return None


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


def rule_sim002(module: Module) -> Iterator[Finding]:
    """SIM002: ``var = x.acquire()`` / ``x.request()`` without a
    try/finally-protected release on all paths.

    Three things must hold inside the acquiring function:

    1. the request is released (``release``/``abort``/``cancel``)
       somewhere;
    2. some ``release``/``abort`` sits in a ``finally`` block (or in an
       ``except`` handler that re-raises) — a bare release after the
       critical section leaks the lock whenever the body raises;
    3. every direct ``yield var`` wait on the request is inside a
       ``try`` whose ``finally`` or re-raising ``except`` cleans ``var``
       up — an :class:`~repro.sim.kernel.Interrupt` delivered *while
       waiting* otherwise leaks the queued request.
    """
    for func in module.functions():
        acquires: List[Tuple[str, ast.Assign]] = []
        for node in ast.walk(func):
            if module.enclosing_function(node) is not func:
                continue
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and _call_attr(node.value) in ("acquire", "request")):
                acquires.append((node.targets[0].id, node))

        if not acquires:
            continue

        # All cleanup calls in this function, by request variable name.
        releases: Dict[str, List[ast.Call]] = {}
        for node in ast.walk(func):
            if module.enclosing_function(node) is not func:
                continue
            attr = _call_attr(node)
            if attr in ("release", "abort", "cancel"):
                var = _first_arg_name(node)
                if var is not None:
                    releases.setdefault(var, []).append(node)

        for var, assign in acquires:
            cleanup = releases.get(var, [])
            if not cleanup:
                yield module.finding(
                    assign, "SIM002",
                    f"{var!r} is acquired but never released/aborted in "
                    f"this function — wrap the critical section in "
                    f"try/finally")
                continue
            if not any(_is_protected_cleanup(module, call, var)
                       for call in cleanup):
                yield module.finding(
                    assign, "SIM002",
                    f"release of {var!r} is not in a 'finally' block — an "
                    f"exception inside the critical section leaks the lock")
                continue
            bad_wait = _unprotected_wait(module, func, var)
            if bad_wait is not None:
                yield module.finding(
                    bad_wait, "SIM002",
                    f"'yield {var}' waits on the acquired request outside "
                    f"try/finally — an Interrupt during the wait leaks it; "
                    f"guard with 'except BaseException: abort; raise' or a "
                    f"finally that releases {var!r}")


def _is_protected_cleanup(module: Module, call: ast.Call, var: str) -> bool:
    """Is this release/abort call inside a finally, or inside an except
    handler that re-raises?"""
    node: ast.AST = call
    for anc in module.ancestors(call):
        if isinstance(anc, ast.Try) and _in_block(anc.finalbody, node):
            return True
        if isinstance(anc, ast.ExceptHandler) and _handler_reraises(anc):
            return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        node = anc
    return False


def _in_block(block: Sequence[ast.stmt], node: ast.AST) -> bool:
    return any(stmt is node or node in ast.walk(stmt) for stmt in block)


def _unprotected_wait(module: Module, func: ast.FunctionDef,
                      var: str) -> Optional[ast.AST]:
    """The first ``yield var`` not covered by a cleaning try, if any."""
    for node in ast.walk(func):
        if module.enclosing_function(node) is not func:
            continue
        if (isinstance(node, ast.Yield) and isinstance(node.value, ast.Name)
                and node.value.id == var):
            if not _wait_is_protected(module, node, var):
                return node
    return None


def _wait_is_protected(module: Module, wait: ast.Yield, var: str) -> bool:
    child: ast.AST = wait
    for anc in module.ancestors(wait):
        if isinstance(anc, ast.Try):
            in_body = _in_block(anc.body, child)
            if in_body and _try_cleans_up(anc, var):
                return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        child = anc
    return False


def _try_cleans_up(try_node: ast.Try, var: str) -> bool:
    """Does this try's finally (or a re-raising except) release ``var``?"""
    def block_cleans(block: Sequence[ast.stmt]) -> bool:
        for stmt in block:
            for node in ast.walk(stmt):
                if (_call_attr(node) in ("release", "abort", "cancel")
                        and _first_arg_name(node) == var):
                    return True
        return False

    if block_cleans(try_node.finalbody):
        return True
    return any(_handler_reraises(h) and block_cleans(h.body)
               for h in try_node.handlers)


# ---------------------------------------------------------------------------
# SIM003
# ---------------------------------------------------------------------------

# module attribute → why it's banned
_FORBIDDEN_MODULE_CALLS = {
    ("random", None): "use a seeded RandomStream instead of the global "
                      "'random' module",
    ("time", "time"): "wall-clock read in simulation code — use 'sim.now'",
    ("time", "monotonic"): "wall-clock read — use 'sim.now'",
    ("time", "perf_counter"): "wall-clock read — use 'sim.now'",
    ("time", "time_ns"): "wall-clock read — use 'sim.now'",
    ("os", "urandom"): "OS entropy is unseedable — use RandomStream",
    ("uuid", "uuid4"): "random UUIDs are unseedable — derive ids from "
                       "RandomStream or a counter",
    ("uuid", "uuid1"): "uuid1 mixes in wall-clock and MAC — derive ids "
                       "deterministically",
}

_DATETIME_NOW = {"now", "utcnow", "today"}


def rule_sim003(module: Module) -> Iterator[Finding]:
    """SIM003: sources of nondeterminism.

    Flags the global ``random`` module (import and calls), wall-clock
    reads (``time.time()``, ``datetime.now()``, ...), ``os.urandom``,
    random UUIDs, and ``for``-iteration directly over an unordered
    ``set`` (when the iteration order can feed scheduling decisions,
    two runs with the same seed diverge).  Deterministic replacements:
    :class:`~repro.sim.distributions.RandomStream`, ``sim.now``, and
    ``sorted(...)``.
    """
    # Which local names are the modules we care about?
    aliases: Dict[str, str] = {}
    for local, modname in module.module_imports.items():
        root = modname.split(".")[0]
        if root in ("random", "time", "os", "uuid", "datetime"):
            aliases[local] = root

    for node in module.nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    yield module.finding(
                        node, "SIM003",
                        "import of the global 'random' module — use a "
                        "seeded RandomStream")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                yield module.finding(
                    node, "SIM003",
                    "import from the global 'random' module — use a "
                    "seeded RandomStream")
        elif isinstance(node, ast.Call):
            found = _forbidden_call(node, aliases)
            if found is not None:
                yield module.finding(node, "SIM003", found)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.iter
            reason = _unordered_set_iter(module, node, target)
            if reason is not None:
                anchor = node if isinstance(node, ast.For) else target
                yield module.finding(
                    anchor, "SIM003",
                    f"iteration over {reason} has no deterministic order — "
                    f"wrap it in sorted(...)")


def _forbidden_call(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    # random.<anything>(...)
    if isinstance(base, ast.Name) and aliases.get(base.id) == "random":
        return (f"'random.{func.attr}()' breaks seeded reproducibility — "
                f"use RandomStream")
    if isinstance(base, ast.Name):
        root = aliases.get(base.id)
        why = _FORBIDDEN_MODULE_CALLS.get((root, func.attr))
        if why is not None:
            return f"'{base.id}.{func.attr}()': {why}"
        if root == "datetime" and func.attr in _DATETIME_NOW:
            return (f"'{base.id}.{func.attr}()' reads the wall clock — "
                    f"use 'sim.now'")
    # datetime.datetime.now(...)
    if (isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name)
            and aliases.get(base.value.id) == "datetime"
            and func.attr in _DATETIME_NOW):
        return (f"'{base.value.id}.{base.attr}.{func.attr}()' reads the "
                f"wall clock — use 'sim.now'")
    return None


def _unordered_set_iter(module: Module, loop: ast.AST,
                        target: ast.AST) -> Optional[str]:
    """Name the unordered set being iterated, or None."""
    if isinstance(target, ast.Set):
        return "a set literal"
    if isinstance(target, ast.SetComp):
        return "a set comprehension"
    if (isinstance(target, ast.Call) and isinstance(target.func, ast.Name)
            and target.func.id in ("set", "frozenset")):
        return f"a {target.func.id}(...)"
    if isinstance(target, ast.Name):
        func = module.enclosing_function(loop)
        if func is None:
            return None
        assigned_set = False
        for node in ast.walk(func):
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == target.id
                            for t in node.targets)):
                value = node.value
                if (isinstance(value, (ast.Set, ast.SetComp))
                        or (isinstance(value, ast.Call)
                            and isinstance(value.func, ast.Name)
                            and value.func.id in ("set", "frozenset"))):
                    assigned_set = True
                else:
                    return None  # rebound to something else: ambiguous
        if assigned_set:
            return f"set {target.id!r}"
    return None


# ---------------------------------------------------------------------------
# SIM004
# ---------------------------------------------------------------------------

def _catches_interrupt(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    names: List[ast.AST] = []
    if t is None:
        return False
    if isinstance(t, ast.Tuple):
        names.extend(t.elts)
    else:
        names.append(t)
    for name in names:
        if isinstance(name, ast.Name) and name.id == "Interrupt":
            return True
        if isinstance(name, ast.Attribute) and name.attr == "Interrupt":
            return True
    return False


def _is_trivial_body(body: Sequence[ast.stmt]) -> bool:
    """Only pass / constants / continue / break — no cleanup action."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring/ellipsis
        return False
    return True


def _execution_continues_after(module: Module, try_node: ast.Try) -> bool:
    """Does control keep running in this process after the handler?

    True when the ``try`` sits inside a loop, or when any enclosing
    block has statements after it — i.e. swallowing the interrupt does
    *not* simply fall off the end of the generator (which would be a
    clean process death, the kernel's normal crash path).
    """
    node: ast.AST = try_node
    for anc in module.ancestors(try_node):
        if isinstance(anc, (ast.For, ast.While)):
            return True
        for block in (getattr(anc, "body", None), getattr(anc, "orelse", None),
                      getattr(anc, "finalbody", None)):
            if block and node in block and block[-1] is not node:
                return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        node = anc
    return False


def rule_sim004(module: Module) -> Iterator[Finding]:
    """SIM004: ``except Interrupt:`` that swallows the kill signal.

    Crash injection delivers an :class:`Interrupt`; a handler with no
    cleanup, no re-raise and no return *inside a loop* (or with code
    after it) keeps the process alive — the "crashed" server keeps
    serving, and recovery measurements are garbage.  Swallowing at the
    very end of a generator is fine: the process falls off the end and
    dies cleanly (the kernel's documented fire-and-forget idiom).
    """
    for node in module.nodes:
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _catches_interrupt(node):
            continue
        if any(isinstance(n, (ast.Raise, ast.Return)) for n in ast.walk(node)):
            continue
        if not _is_trivial_body(node.body):
            continue  # performs some cleanup action
        try_node = module.parent(node)
        if isinstance(try_node, ast.Try) and _execution_continues_after(
                module, try_node):
            yield module.finding(
                node, "SIM004",
                "'except Interrupt:' swallows the kill signal and the "
                "process keeps running — re-raise, return, or clean up")


# ---------------------------------------------------------------------------
# SIM005
# ---------------------------------------------------------------------------

def _mentions_sim_now(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "now":
            base = sub.value
            if isinstance(base, ast.Name) and base.id in ("sim", "env"):
                return True
            if isinstance(base, ast.Attribute) and base.attr in ("sim", "env"):
                return True
    return False


def rule_sim005(module: Module) -> Iterator[Finding]:
    """SIM005: simulated-time arithmetic where scheduling belongs.

    * ``x += ... sim.now ...`` inside a loop — accumulating float
      deltas of the clock drifts (and reads the clock at the wrong
      instants); schedule a ``sim.timeout`` and let the kernel advance
      time exactly.
    * ``time.sleep(...)`` — wall-clock sleep inside simulation code
      stalls the real process and does nothing to simulated time.
    """
    aliases = {local: mod for local, mod in module.module_imports.items()
               if mod.split(".")[0] == "time"}
    for node in module.nodes:
        if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)):
            if _mentions_sim_now(node.value) and any(
                    isinstance(anc, (ast.For, ast.While))
                    for anc in module.ancestors(node)):
                yield module.finding(
                    node, "SIM005",
                    "accumulating 'sim.now' deltas in a loop — schedule "
                    "'yield sim.timeout(...)' instead of clock arithmetic")
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr == "sleep"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases):
                yield module.finding(
                    node, "SIM005",
                    "'time.sleep()' sleeps the wall clock, not simulated "
                    "time — use 'yield sim.timeout(...)'")


ALL_RULES = (rule_sim001, rule_sim002, rule_sim003, rule_sim004, rule_sim005,
             rule_sim006, rule_sim007, rule_sim008)
RULE_CODES = {
    "SIM001": rule_sim001,
    "SIM002": rule_sim002,
    "SIM003": rule_sim003,
    "SIM004": rule_sim004,
    "SIM005": rule_sim005,
    "SIM006": rule_sim006,
    "SIM007": rule_sim007,
    "SIM008": rule_sim008,
}
