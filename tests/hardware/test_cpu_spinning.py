"""Unit tests for spin accounting and preemptible slices."""

import pytest

from repro.hardware.cpu import Cpu
from repro.sim import Simulator


def _wait(event):
    result = yield event
    return result


class TestSpinning:
    def test_spin_burns_utilization_without_blocking(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)

        def spinner():
            yield from cpu.spinning(_wait(sim.timeout(10.0)))

        def worker():
            yield from cpu.execute(10.0)

        sim.process(spinner())
        sim.process(worker())
        sim.process(worker())  # 2 real workers + 1 spinner on 2 cores
        sim.run()
        # Real work was never delayed by the spinner...
        assert sim.now == pytest.approx(10.0)
        # ...but utilization was pegged at the core count (capped).
        assert cpu.utilization_since_mark() == pytest.approx(100.0)

    def test_spin_accounts_when_cores_idle(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)

        def spinner():
            yield from cpu.spinning(_wait(sim.timeout(10.0)))

        sim.process(spinner())
        sim.run()
        assert cpu.utilization_since_mark() == pytest.approx(25.0)

    def test_spin_returns_inner_value(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)
        got = []

        def inner():
            yield sim.timeout(1.0)
            return "payload"

        def outer():
            value = yield from cpu.spinning(inner())
            got.append(value)

        sim.process(outer())
        sim.run()
        assert got == ["payload"]

    def test_spin_unwinds_on_exception(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)

        def inner():
            yield sim.timeout(1.0)
            raise RuntimeError("inner failed")

        def outer():
            try:
                yield from cpu.spinning(inner())
            except RuntimeError:
                pass

        sim.process(outer())
        sim.run()
        assert cpu.busy_cores == 0.0

    def test_nested_spins_cap_at_core_count(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)

        def spinner():
            yield from cpu.spinning(_wait(sim.timeout(5.0)))

        for _ in range(10):
            sim.process(spinner())
        sim.run()
        assert cpu.utilization_since_mark() == pytest.approx(100.0)


class TestExecuteSliced:
    def test_total_time_preserved(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)
        done = []

        def burst():
            yield from cpu.execute_sliced(0.0107, slice_seconds=0.002)
            done.append(sim.now)

        sim.process(burst())
        sim.run()
        assert done[0] == pytest.approx(0.0107)

    def test_short_work_interleaves_with_long_burst(self):
        """A 10 µs request must not wait for a whole 1 s burst — only
        for the current 2 ms slice (the Fig. 10 latency mechanism)."""
        sim = Simulator()
        cpu = Cpu(sim, cores=1)
        latency = {}

        def burst():
            yield from cpu.execute_sliced(1.0, slice_seconds=0.002)

        def request():
            yield sim.timeout(0.1)  # arrive mid-burst
            start = sim.now
            yield from cpu.execute(10e-6)
            latency["request"] = sim.now - start

        sim.process(burst())
        sim.process(request())
        sim.run()
        assert latency["request"] < 0.005  # one slice + service, not 0.9 s

    def test_invalid_slice_rejected(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)

        def bad():
            yield from cpu.execute_sliced(1.0, slice_seconds=0.0)

        sim.process(bad())
        with pytest.raises(ValueError):
            sim.run()


class TestPoweredOff:
    def test_powered_off_pdu_reads_zero(self):
        from repro.hardware.node import Node
        from repro.hardware.specs import GRID5000_NANCY_NODE
        sim = Simulator()
        node = Node(sim, GRID5000_NANCY_NODE, "n")
        node.start_metering()
        sim.run(until=2.0)
        node.power.powered_off = True
        sim.run(until=5.0)
        late = [v for t, v in node.power.series.items() if t > 2.5]
        assert late and all(v == 0.0 for v in late)
        assert node.power.instantaneous_watts() == 0.0
