"""Unit tests for machine specifications and the power calibration."""

import pytest

from repro.hardware.specs import (
    GB,
    GIGABIT_ETHERNET,
    GRID5000_NANCY_NODE,
    INFINIBAND_20G,
    KB,
    MB,
    CpuSpec,
    DiskSpec,
    MachineSpec,
    NicSpec,
    PowerSpec,
)


class TestUnits:
    def test_units_are_binary(self):
        assert KB == 1024
        assert MB == 1024 * 1024
        assert GB == 1024 ** 3


class TestDefaultNode:
    """The default machine must match the paper's §III-B description."""

    def test_four_cores(self):
        assert GRID5000_NANCY_NODE.cpu.cores == 4

    def test_sixteen_gb_ram(self):
        assert GRID5000_NANCY_NODE.dram_bytes == 16 * GB

    def test_298_gb_hdd(self):
        assert GRID5000_NANCY_NODE.disk.capacity_bytes == 298 * GB

    def test_infiniband_default_transport(self):
        assert GRID5000_NANCY_NODE.nic is INFINIBAND_20G

    def test_ethernet_is_much_slower_than_infiniband(self):
        assert GIGABIT_ETHERNET.one_way_latency > 5 * INFINIBAND_20G.one_way_latency
        assert GIGABIT_ETHERNET.bandwidth < INFINIBAND_20G.bandwidth / 10


class TestPowerCalibration:
    """Anchor points from the paper (DESIGN.md §4)."""

    def test_idle_with_polling_thread(self):
        # Table I row 0: an idle server burns 25 % CPU; Fig. 1b shows
        # low-load servers in the 90s of watts, idle machine lower.
        spec = PowerSpec()
        assert 70.0 <= spec.watts(25.0) <= 80.0

    def test_one_client_anchor(self):
        # Fig. 1b: 1 server / 1 client → 92 W at ~50 % CPU (Table I).
        spec = PowerSpec()
        assert spec.watts(49.8) == pytest.approx(92.0, abs=2.0)

    def test_saturated_anchor(self):
        # Fig. 1b: 10-30 clients → 122–127 W at ~98 % CPU.
        spec = PowerSpec()
        assert 120.0 <= spec.watts(98.0) <= 128.0

    def test_disk_adder(self):
        spec = PowerSpec()
        assert (spec.watts(50.0, disk_active=True)
                - spec.watts(50.0)) == pytest.approx(spec.disk_active_watts)

    def test_monotone_in_utilization(self):
        spec = PowerSpec()
        watts = [spec.watts(u) for u in (0, 25, 50, 75, 100)]
        assert watts == sorted(watts)

    def test_out_of_range_utilization_rejected(self):
        spec = PowerSpec()
        with pytest.raises(ValueError):
            spec.watts(-1.0)
        with pytest.raises(ValueError):
            spec.watts(101.0)


class TestValidation:
    def test_cpu_spec_requires_cores(self):
        with pytest.raises(ValueError):
            CpuSpec(cores=0)

    def test_disk_spec_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(capacity_bytes=0)
        with pytest.raises(ValueError):
            DiskSpec(sequential_bandwidth=0)
        with pytest.raises(ValueError):
            DiskSpec(seek_time=-1.0)

    def test_nic_spec_validation(self):
        with pytest.raises(ValueError):
            NicSpec(name="bad", one_way_latency=-1.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            NicSpec(name="bad", one_way_latency=1.0, bandwidth=0.0)

    def test_machine_spec_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(dram_bytes=0)

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            GRID5000_NANCY_NODE.dram_bytes = 1
