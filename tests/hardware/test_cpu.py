"""Unit tests for the CPU model."""

import pytest

from repro.hardware.cpu import Cpu
from repro.sim import Interrupt, Simulator


class TestExecution:
    def test_single_task_runs_for_requested_time(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        done = []

        def task():
            yield from cpu.execute(2.0)
            done.append(sim.now)

        sim.process(task())
        sim.run()
        assert done == [2.0]

    def test_parallelism_up_to_core_count(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)
        done = []

        def task(tag):
            yield from cpu.execute(1.0)
            done.append((tag, sim.now))

        for tag in range(4):
            sim.process(task(tag))
        sim.run()
        finish_times = sorted(t for _, t in done)
        assert finish_times == [1.0, 1.0, 2.0, 2.0]

    def test_negative_time_rejected(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)

        def task():
            yield from cpu.execute(-1.0)

        sim.process(task())
        with pytest.raises(ValueError):
            sim.run()

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            Cpu(Simulator(), cores=0)


class TestPinning:
    def test_pin_reduces_schedulable_cores(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()
        assert cpu.schedulable_cores == 3
        assert cpu.busy_cores == 1.0

    def test_idle_utilization_with_pinned_core_is_25_percent(self):
        """Table I row 0: RAMCloud's polling thread costs 25 % of a
        4-core machine even with zero clients."""
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()

        def idle():
            yield sim.timeout(10.0)

        sim.process(idle())
        sim.run()
        assert cpu.utilization_since_mark() == pytest.approx(25.0)

    def test_cannot_pin_all_cores(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)
        cpu.pin_core()
        with pytest.raises(ValueError):
            cpu.pin_core()

    def test_unpin_restores_capacity(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()
        cpu.unpin_core()
        assert cpu.schedulable_cores == 4
        assert cpu.busy_cores == 0.0

    def test_unpin_without_pin_rejected(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        with pytest.raises(ValueError):
            cpu.unpin_core()

    def test_pinned_core_unavailable_to_workers(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)
        cpu.pin_core()
        done = []

        def task(tag):
            yield from cpu.execute(1.0)
            done.append((tag, sim.now))

        sim.process(task("a"))
        sim.process(task("b"))
        sim.run()
        # Only one schedulable core: tasks serialize.
        assert sorted(t for _, t in done) == [1.0, 2.0]


class TestUtilizationAccounting:
    def test_full_load_is_100_percent(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)

        def task():
            yield from cpu.execute(5.0)

        sim.process(task())
        sim.process(task())
        sim.run()
        assert cpu.utilization_since_mark() == pytest.approx(100.0)

    def test_windowed_utilization(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)

        def scenario():
            cpu.mark()
            yield from cpu.execute(2.0)  # busy 0–2
            cpu.mark()
            yield sim.timeout(2.0)  # idle 2–4

        sim.process(scenario())
        sim.run()
        assert cpu.utilization_between(0.0, 2.0) == pytest.approx(100.0)
        assert cpu.utilization_between(2.0, 4.0) == pytest.approx(0.0)

    def test_run_queue_length(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)
        seen = []

        def task():
            yield from cpu.execute(1.0)

        def probe():
            yield sim.timeout(0.5)
            seen.append(cpu.run_queue_length)

        for _ in range(3):
            sim.process(task())
        sim.process(probe())
        sim.run()
        assert seen == [2]


class TestInterruptSafety:
    def test_interrupt_while_waiting_for_core_releases_nothing(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)

        def hog():
            yield from cpu.execute(10.0)

        def waiter():
            try:
                yield from cpu.execute(1.0)
            except Interrupt:
                pass

        sim.process(hog())
        victim = sim.process(waiter())

        def killer():
            yield sim.timeout(1.0)
            victim.interrupt("die")

        sim.process(killer())
        sim.run()
        assert cpu.run_queue_length == 0
        assert cpu.busy_cores == 0.0

    def test_interrupt_while_executing_frees_core(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)

        def worker():
            try:
                yield from cpu.execute(10.0)
            except Interrupt:
                pass

        victim = sim.process(worker())

        def killer():
            yield sim.timeout(1.0)
            victim.interrupt("die")

        def late_task():
            yield sim.timeout(2.0)
            yield from cpu.execute(1.0)
            return sim.now

        sim.process(killer())
        late = sim.process(late_task())
        assert sim.run_process(late) == 3.0  # core was free at t=2
        assert cpu.busy_cores == 0.0
