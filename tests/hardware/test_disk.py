"""Unit tests for the HDD model."""

import pytest

from repro.hardware.disk import Disk
from repro.hardware.specs import MB, DiskSpec
from repro.sim import Simulator

SPEC = DiskSpec(capacity_bytes=100 * MB * 10, sequential_bandwidth=100 * MB,
                seek_time=0.01)


class TestTiming:
    def test_single_write_pays_one_seek_plus_transfer(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)
        done = []

        def writer():
            yield from disk.write(100 * MB, stream_id="s1")
            done.append(sim.now)

        sim.process(writer())
        sim.run()
        assert done[0] == pytest.approx(0.01 + 1.0)

    def test_sequential_stream_pays_seek_once(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)
        done = []

        def writer():
            for _ in range(4):
                yield from disk.write(25 * MB, stream_id="s1")
            done.append(sim.now)

        sim.process(writer())
        sim.run()
        assert done[0] == pytest.approx(0.01 + 1.0)

    def test_interleaved_streams_thrash_the_head(self):
        """A reader and a writer alternating (the recovery pattern the
        paper's Fig. 12 discussion describes) pay a seek per switch."""
        sim = Simulator()
        disk = Disk(sim, SPEC)
        done = {}

        def reader():
            for _ in range(3):
                yield from disk.read(10 * MB, stream_id="r")
            done["r"] = sim.now

        def writer():
            for _ in range(3):
                yield from disk.write(10 * MB, stream_id="w")
            done["w"] = sim.now

        sim.process(reader())
        sim.process(writer())
        sim.run()
        # 6 ops × (0.1 s transfer + 0.01 s seek each, since streams
        # alternate) = 0.66 s total.
        assert max(done.values()) == pytest.approx(0.66)

    def test_head_serializes_concurrent_io(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)
        done = []

        def io(tag):
            yield from disk.write(100 * MB, stream_id=tag)
            done.append(sim.now)

        sim.process(io("a"))
        sim.process(io("b"))
        sim.run()
        assert done == [pytest.approx(1.01), pytest.approx(2.02)]

    def test_negative_size_rejected(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)

        def bad():
            yield from disk.read(-1)

        sim.process(bad())
        with pytest.raises(ValueError):
            sim.run()


class TestAccounting:
    def test_byte_counters(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)

        def io():
            yield from disk.write(10 * MB)
            yield from disk.read(4 * MB)

        sim.process(io())
        sim.run()
        assert disk.io_counters() == (4 * MB, 10 * MB)

    def test_busy_flag_during_io(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)
        observed = []

        def io():
            yield from disk.write(100 * MB)

        def probe():
            yield sim.timeout(0.5)
            observed.append(disk.busy)
            yield sim.timeout(2.0)
            observed.append(disk.busy)

        sim.process(io())
        sim.process(probe())
        sim.run()
        assert observed == [True, False]

    def test_priority_orders_queued_io(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)
        order = []

        def first():
            yield from disk.write(100 * MB, stream_id="hog")
            order.append("hog")

        def low():
            yield sim.timeout(0.1)
            yield from disk.write(10 * MB, stream_id="low", priority=5)
            order.append("low")

        def high():
            yield sim.timeout(0.2)
            yield from disk.read(10 * MB, stream_id="high", priority=0)
            order.append("high")

        sim.process(first())
        sim.process(low())
        sim.process(high())
        sim.run()
        assert order == ["hog", "high", "low"]

    def test_space_container_tracks_capacity(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)
        disk.space.put(500 * MB)
        assert disk.space.level == 500 * MB
        with pytest.raises(OverflowError):
            disk.space.put(SPEC.capacity_bytes)
