"""Unit tests for the node assembly and PDU power metering."""

import pytest

from repro.hardware.node import Node
from repro.hardware.specs import GRID5000_NANCY_NODE, MB
from repro.sim import Simulator


def make_node(sim, name="node0"):
    return Node(sim, GRID5000_NANCY_NODE, name)


class TestNode:
    def test_node_has_paper_hardware(self):
        sim = Simulator()
        node = make_node(sim)
        assert node.cpu.cores == 4
        assert node.dram.capacity == GRID5000_NANCY_NODE.dram_bytes

    def test_crash_sets_flag(self):
        sim = Simulator()
        node = make_node(sim)
        assert not node.crashed
        node.crash()
        assert node.crashed


class TestMetering:
    def test_idle_node_draws_idle_watts(self):
        sim = Simulator()
        node = make_node(sim)
        node.start_metering()
        sim.run(until=10.0)
        node.stop_metering()
        assert len(node.power.series) >= 9
        expected = GRID5000_NANCY_NODE.power.idle_watts
        assert node.power.average_watts() == pytest.approx(expected, abs=0.5)

    def test_busy_node_draws_more(self):
        sim = Simulator()
        node = make_node(sim)
        node.start_metering()

        def burn():
            for _ in range(4):
                sim.process(_spin(sim, node, 10.0))
            yield sim.timeout(0.0)

        def _spin(sim_, node_, t):
            yield from node_.cpu.execute(t)

        sim.process(burn())
        sim.run(until=10.0)
        spec = GRID5000_NANCY_NODE.power
        # The t=0 boundary sample correctly reads idle (load starts
        # after metering); the steady-state samples read full power.
        steady = node.power.series.window(1.0, 10.0)
        assert steady.mean() == pytest.approx(spec.watts(100.0), rel=0.02)
        assert node.power.series.values[0] == pytest.approx(
            spec.watts(0.0), abs=0.5)

    def test_energy_integral_for_constant_load(self):
        sim = Simulator()
        node = make_node(sim)
        node.start_metering()
        sim.run(until=100.0)
        node.stop_metering()
        expected = GRID5000_NANCY_NODE.power.idle_watts * 100.0
        assert node.power.energy_joules() == pytest.approx(expected, rel=0.02)

    def test_metering_idempotent_start(self):
        sim = Simulator()
        node = make_node(sim)
        node.start_metering()
        node.start_metering()  # no-op, no duplicate samplers
        sim.run(until=5.0)
        node.stop_metering()
        times = node.power.series.times
        assert len(times) == len(set(times))

    def test_stop_metering_halts_samples(self):
        sim = Simulator()
        node = make_node(sim)
        node.start_metering()
        sim.run(until=5.0)
        node.stop_metering()
        count = len(node.power.series)
        sim.run(until=10.0)
        assert len(node.power.series) == count

    def test_disk_activity_adds_watts(self):
        sim = Simulator()
        node = make_node(sim)
        node.start_metering()

        def io():
            # Keep the disk busy for several seconds.
            yield from node.disk.write(600 * MB, stream_id="flush")

        sim.process(io())
        sim.run(until=4.0)
        spec = GRID5000_NANCY_NODE.power
        # Samples at t=1..4 should include the disk adder.
        assert node.power.series.values[1] == pytest.approx(
            spec.watts(0.0, disk_active=True), abs=0.5
        )

    def test_pinned_dispatch_core_shows_in_power(self):
        """An idle RAMCloud server (polling thread pinned) draws more
        than a truly idle machine — the paper's non-proportionality
        starting point."""
        sim = Simulator()
        idle = make_node(sim, "idle")
        server = make_node(sim, "server")
        server.cpu.pin_core()
        idle.start_metering()
        server.start_metering()
        sim.run(until=10.0)
        assert (server.power.average_watts()
                > idle.power.average_watts() + 10.0)
