"""Edge-case tests for the power-management hardware knobs
(docs/POWER.md): DVFS, core parking, pinned-poller idling, and the
frequency/parking-aware power model."""

import pytest

from repro.hardware.cpu import Cpu
from repro.hardware.specs import CpuSpec, PowerSpec
from repro.sim import Simulator


class TestPinUnpinNesting:
    def test_pin_twice_unpin_twice(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()
        cpu.pin_core()
        assert cpu.schedulable_cores == 2
        assert cpu.busy_cores == 2.0
        cpu.unpin_core()
        cpu.unpin_core()
        assert cpu.schedulable_cores == 4
        assert cpu.busy_cores == 0.0
        with pytest.raises(ValueError):
            cpu.unpin_core()

    def test_unpin_clears_orphaned_idle_state(self):
        # kill() unpins the dispatch core while the sleeping dispatch
        # thread still "owns" an idle pinned core; the idle count must
        # collapse with the pin count.
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()
        cpu.pinned_core_idle()
        cpu.unpin_core()
        assert cpu.busy_cores == 0.0
        # The late wake-up must be a lenient no-op, not an underflow.
        cpu.pinned_core_busy()
        assert cpu.busy_cores == 0.0

    def test_pin_refused_when_parked_cores_leave_no_headroom(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()
        assert cpu.try_park_core()
        assert cpu.try_park_core()
        # 1 pinned + 2 parked on 4 cores: pinning another would leave
        # no schedulable core.
        with pytest.raises(ValueError, match="schedulable"):
            cpu.pin_core()


class TestPinnedPollerIdle:
    def test_idle_poller_stops_accruing_busy_time(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()

        def scenario():
            yield sim.timeout(1.0)   # awake: 25 % busy
            cpu.pinned_core_idle()
            yield sim.timeout(2.0)   # asleep: 0 % busy
            cpu.pinned_core_busy()
            yield sim.timeout(1.0)   # awake again

        sim.process(scenario())
        sim.run()
        # 2 core-seconds busy over 4 s on 4 cores = 12.5 %.
        assert cpu.utilization_since_mark() == pytest.approx(12.5)

    def test_idle_without_awake_pinned_core_rejected(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        with pytest.raises(ValueError, match="pinned"):
            cpu.pinned_core_idle()
        cpu.pin_core()
        cpu.pinned_core_idle()
        with pytest.raises(ValueError, match="pinned"):
            cpu.pinned_core_idle()  # the only pinned core already sleeps


class TestCoreParking:
    def test_park_refused_on_last_schedulable_core(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)
        cpu.pin_core()
        assert not cpu.try_park_core()  # would leave zero runnable cores

    def test_park_refused_rather_than_strand_a_runner(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()  # 3 schedulable
        refusals = []

        def worker():
            yield from cpu.execute(1.0)

        def parker():
            yield sim.timeout(0.5)  # all 3 worker cores occupied
            refusals.append(cpu.try_park_core())

        for _ in range(3):
            sim.process(worker())
        sim.process(parker())
        sim.run()
        assert refusals == [False]
        assert cpu.parked_cores == 0

    def test_park_succeeds_with_headroom_then_refuses_at_limit(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()
        assert cpu.try_park_core()
        assert cpu.try_park_core()
        assert cpu.parked_cores == 2
        assert not cpu.try_park_core()  # one unparked core must remain

    def test_unpark_without_park_rejected(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        with pytest.raises(ValueError, match="parked"):
            cpu.unpark_core()

    def test_parked_capacity_is_unavailable_until_unparked(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)
        assert cpu.try_park_core()
        done = []

        def worker(tag):
            yield from cpu.execute(1.0)
            done.append((tag, sim.now))

        def waker():
            yield sim.timeout(1.0)
            cpu.unpark_core()

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.process(waker())
        sim.run()
        # One core until t=1: "a" finishes at 1.0; "b" started queued,
        # got the woken core at t=1 and finished at 2.0.
        assert sorted(t for _, t in done) == [1.0, 2.0]

    def test_spinning_accounts_across_park_and_wake(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)
        cpu.pin_core()
        assert cpu.try_park_core()

        def spin_wait():
            yield from cpu.spinning(_wait(sim.timeout(2.0)))

        sim.process(spin_wait())

        def waker():
            yield sim.timeout(1.0)
            cpu.unpark_core()

        sim.process(waker())
        probes = []

        def probe():
            yield sim.timeout(0.5)
            probes.append(cpu.busy_cores)  # pinned + spinning, parked t<1
            yield sim.timeout(1.0)
            probes.append(cpu.busy_cores)  # unparked, still spinning

        sim.process(probe())
        sim.run()
        assert probes == [2.0, 2.0]
        assert cpu.busy_cores == 1.0  # spin ended, pinned poller remains


def _wait(event):
    yield event


class TestDvfs:
    def test_execute_stretches_by_inverse_ratio(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)
        cpu.set_frequency(0.5)
        done = []

        def task():
            yield from cpu.execute(1.0)
            done.append(sim.now)

        sim.process(task())
        sim.run()
        assert done == [2.0]

    def test_nominal_ratio_is_bit_exact(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)
        cpu.set_frequency(1.0)
        done = []

        def task():
            yield from cpu.execute(0.1)
            done.append(sim.now)

        sim.process(task())
        sim.run()
        assert done == [0.1]  # exactly, not approximately

    @pytest.mark.parametrize("ratio", [0.0, -0.5, 1.6])
    def test_invalid_ratio_rejected(self, ratio):
        cpu = Cpu(Simulator(), cores=1)
        with pytest.raises(ValueError, match="ratio"):
            cpu.set_frequency(ratio)


class TestCpuSpecValidation:
    def test_defaults_are_the_x3440(self):
        spec = CpuSpec()
        assert spec.nominal_freq_ghz == 2.53
        assert spec.freq_steps[-1] == 1.0

    @pytest.mark.parametrize("steps,message", [
        ((), "at least one"),
        ((1.0, 0.5), "ascending"),
        ((0.0, 1.0), r"\(0, 1.5\]"),
        ((0.5, 0.8), "must be 1.0"),
    ])
    def test_bad_freq_steps_rejected(self, steps, message):
        with pytest.raises(ValueError, match=message):
            CpuSpec(freq_steps=steps)


class TestPowerModel:
    def test_calibration_anchors(self):
        spec = PowerSpec()
        assert spec.watts(0.0) == pytest.approx(57.5)
        assert spec.watts(100.0) == pytest.approx(126.5)
        assert spec.watts(0.0, disk_active=True) == pytest.approx(63.5)
        assert spec.watts(100.0, disk_active=True) == pytest.approx(132.5)

    def test_default_knobs_are_bit_identical_to_linear_fit(self):
        spec = PowerSpec()
        for util in (0.0, 25.0, 49.8, 98.4, 100.0):
            expected = spec.idle_watts + spec.slope_watts_per_pct * util
            assert spec.watts(util, freq_ratio=1.0, parked_cores=0) == expected

    def test_dvfs_scales_only_the_dynamic_term(self):
        spec = PowerSpec()
        ratio = 0.47
        expected = 57.5 + 0.69 * 100.0 * ratio ** 2.2
        assert spec.watts(100.0, freq_ratio=ratio) == pytest.approx(expected)
        # The idle floor does not scale with frequency.
        assert spec.watts(0.0, freq_ratio=ratio) == pytest.approx(57.5)

    def test_parked_cores_drop_from_the_floor(self):
        spec = PowerSpec()
        assert spec.watts(0.0, parked_cores=2) == pytest.approx(52.5)
        # The subtraction clamps at zero; the disk adder applies after.
        assert spec.watts(0.0, parked_cores=100) == 0.0
        assert spec.watts(0.0, parked_cores=100, disk_active=True) == 6.0

    def test_validation(self):
        spec = PowerSpec()
        with pytest.raises(ValueError, match="utilization"):
            spec.watts(101.0)
        with pytest.raises(ValueError, match="utilization"):
            spec.watts(-1.0)
        with pytest.raises(ValueError, match="freq_ratio"):
            spec.watts(50.0, freq_ratio=2.0)
        with pytest.raises(ValueError, match="parked_cores"):
            spec.watts(50.0, parked_cores=-1)
