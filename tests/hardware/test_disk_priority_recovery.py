"""Disk model behaviour under recovery-like interleaved load."""

import pytest

from repro.hardware.disk import Disk
from repro.hardware.specs import MB, DiskSpec
from repro.sim import Simulator

SPEC = DiskSpec(capacity_bytes=10_000 * MB, sequential_bandwidth=100 * MB,
                seek_time=0.008)


class TestRecoveryPattern:
    def test_mixed_streams_slower_than_sequential(self):
        """Fig. 12's lesson: the same byte volume takes longer when read
        and write streams interleave on one head."""

        def run(interleaved):
            sim = Simulator()
            disk = Disk(sim, SPEC)

            def reader():
                for _ in range(10):
                    yield from disk.read(8 * MB, stream_id="r")

            def writer():
                for _ in range(10):
                    yield from disk.write(8 * MB, stream_id="w")

            if interleaved:
                sim.process(reader())
                sim.process(writer())
            else:
                def sequential():
                    yield from reader()
                    yield from writer()
                sim.process(sequential())
            sim.run()
            return sim.now

        mixed = run(interleaved=True)
        clean = run(interleaved=False)
        assert mixed > clean
        # 20 ops, alternating pays ~18 extra seeks of 8 ms.
        assert mixed - clean == pytest.approx(18 * 0.008, rel=0.2)

    def test_busy_seconds_accumulates_transfer_time_only(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)

        def io():
            yield from disk.write(100 * MB, stream_id="a")
            yield sim.timeout(5.0)  # idle gap must not count
            yield from disk.write(100 * MB, stream_id="a")

        sim.process(io())
        sim.run()
        # Two 1 s transfers + one seek (second write is sequential).
        assert disk.busy_seconds == pytest.approx(2.008, abs=0.01)

    def test_priority_jumps_recovery_reads_ahead_of_flushes(self):
        sim = Simulator()
        disk = Disk(sim, SPEC)
        order = []

        def hog():
            yield from disk.write(100 * MB, stream_id="hog")
            order.append("hog")

        def flush():
            yield sim.timeout(0.1)
            yield from disk.write(50 * MB, stream_id="flush", priority=2)
            order.append("flush")

        def recovery_read():
            yield sim.timeout(0.2)
            yield from disk.read(50 * MB, stream_id="recov", priority=0)
            order.append("recovery")

        sim.process(hog())
        sim.process(flush())
        sim.process(recovery_read())
        sim.run()
        assert order == ["hog", "recovery", "flush"]
