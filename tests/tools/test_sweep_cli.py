"""tools/sweep.py — the sweep CLI: streaming output, JSON reports,
exit codes — plus the fig4_sweep bench row in tools/bench_kernel.py.

Everything here spawns real worker processes, so the file rides the
``-m sweep`` lane with the rest of the multi-process harness.
"""

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import bench_kernel  # noqa: E402
import sweep as sweep_cli  # noqa: E402

pytestmark = pytest.mark.sweep


def test_list_prints_public_experiments(capsys):
    assert sweep_cli.main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    assert {"fig1", "fig4", "fig5", "fig11", "energy"} <= set(out)
    assert "_selftest" not in out


def test_cli_parallel_sweep_with_serial_check_and_json(tmp_path, capsys):
    out_path = str(tmp_path / "report.json")
    status = sweep_cli.main([
        "--experiment", "_selftest", "--seed-list", "1,2",
        "--scale", "smoke", "--workers", "2", "--serial-check", "1",
        "--json", out_path])
    assert status == 0
    out = capsys.readouterr().out
    assert "2/2 cells ok" in out
    assert "merged digest:" in out
    assert "serial-checked 1 cells: ok" in out
    with open(out_path) as fh:
        payload = json.load(fh)
    assert payload["experiment"] == "_selftest"
    assert payload["seeds"] == [1, 2]
    assert len(payload["cells"]) == 2
    assert all(c["digest"] for c in payload["cells"])
    assert len(payload["serial_checked"]) == 1


def test_cli_serial_and_parallel_agree_on_the_merged_digest(tmp_path,
                                                            capsys):
    paths = {}
    for mode, extra in (("serial", ["--serial"]), ("parallel", [])):
        paths[mode] = str(tmp_path / f"{mode}.json")
        assert sweep_cli.main(
            ["--experiment", "_selftest", "--seed-list", "1,2",
             "--scale", "smoke", "--json", paths[mode]] + extra) == 0
    capsys.readouterr()
    reports = {mode: json.load(open(path)) for mode, path in paths.items()}
    assert (reports["serial"]["merged_digest"]
            == reports["parallel"]["merged_digest"])


def test_bench_kernel_fig4_sweep_row():
    row = bench_kernel.run_sweep_bench("smoke", servers=2, clients=2,
                                       ops=5, seeds=2, workers=2)
    assert row["bench"] == "fig4_sweep"
    assert row["seeds"] == 2
    assert row["ops"] == 20  # 2 clients x 5 ops x 2 seeds, none lost
    assert row["events"] > 0
    assert row["events_per_s"] == pytest.approx(
        row["events"] / row["wall_s"], rel=0.01)


def test_bench_kernel_knows_the_sweep_bench():
    # fig4_sweep multiplies the workload by the seed count, so it is
    # opt-in (--bench fig4_sweep / the nightly lane), but it must be a
    # selectable choice and carry a committed full-scale baseline row.
    assert "fig4_sweep" in bench_kernel.BENCHES
    baseline = bench_kernel.load_baseline()
    assert bench_kernel.latest_row(baseline, "fig4_sweep", "full")
