"""The kernel bench harness: measurement rows, trajectory file, profile
dump, and the regression check.

One real (tiny) bench run is shared across the tests; the trajectory
bookkeeping is exercised on synthetic data so the suite stays fast.
"""

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import bench_kernel  # noqa: E402


@pytest.fixture(scope="module")
def tiny_row():
    """One real smoke-scale run, small enough for CI."""
    return bench_kernel.run_bench("fig4", "smoke", servers=4, clients=4,
                                  ops=5)


def test_run_bench_row_shape(tiny_row):
    assert tiny_row["bench"] == "fig4"
    assert tiny_row["scale"] == "smoke"
    assert tiny_row["ops"] == 20  # 4 clients x 5 ops, none lost
    assert tiny_row["events"] > 0
    assert tiny_row["wall_s"] > 0
    assert tiny_row["events_per_s"] == pytest.approx(
        tiny_row["events"] / tiny_row["wall_s"], rel=0.01)


def test_update_then_check_passes(tiny_row, tmp_path, capsys):
    path = str(tmp_path / "bench.json")
    baseline = bench_kernel.load_baseline(path)
    baseline.setdefault("entries", []).append(
        {"label": "t0", "rows": [tiny_row]})
    with open(path, "w") as fh:
        json.dump(baseline, fh)

    row = dict(tiny_row)
    base = bench_kernel.latest_row(bench_kernel.load_baseline(path),
                                   "fig4", "smoke")
    assert base["events_per_s"] == tiny_row["events_per_s"]
    # At tolerance 0.5 the same measurement is comfortably above floor.
    assert row["events_per_s"] >= 0.5 * base["events_per_s"]


def test_latest_row_picks_most_recent_entry():
    baseline = {"entries": [
        {"label": "old", "rows": [{"bench": "fig4", "scale": "smoke",
                                   "events_per_s": 100.0}]},
        {"label": "new", "rows": [{"bench": "fig4", "scale": "smoke",
                                   "events_per_s": 200.0}]},
    ]}
    row = bench_kernel.latest_row(baseline, "fig4", "smoke")
    assert row["events_per_s"] == 200.0
    assert bench_kernel.latest_row(baseline, "fig4", "full") is None


def test_profile_json_dump(tmp_path):
    out = str(tmp_path / "profile.json")
    bench_kernel.profile_bench("fig4", "smoke", servers=4, clients=4,
                               ops=5, out_path=out)
    with open(out) as fh:
        payload = json.load(fh)
    assert payload["schema"] == 1
    assert payload["total_tottime"] > 0
    assert payload["rows"], "profile captured no rows"
    kernels = [r for r in payload["rows"]
               if r["path"].endswith("repro/sim/kernel.py")]
    assert kernels, "the kernel should appear in its own benchmark profile"
    for row in payload["rows"]:
        assert set(row) == {"path", "func", "line", "ncalls", "tottime",
                            "cumtime"}


def test_debug_bench_sets_and_restores_env(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_DEBUG", "0")
    bench_kernel.run_bench("fig4_debug", "smoke", servers=2, clients=2,
                           ops=2)
    assert os.environ["REPRO_SIM_DEBUG"] == "0"


def test_committed_trajectory_has_before_and_after():
    baseline = bench_kernel.load_baseline()
    labels = [entry["label"] for entry in baseline["entries"]]
    assert "before-perf-pass" in labels
    assert "after-perf-pass" in labels
    before = next(r for e in baseline["entries"]
                  if e["label"] == "before-perf-pass" for r in e["rows"]
                  if r["bench"] == "fig4" and r["scale"] == "default")
    after = next(r for e in baseline["entries"]
                 if e["label"] == "after-perf-pass" for r in e["rows"]
                 if r["bench"] == "fig4" and r["scale"] == "default")
    # The PR's acceptance bar: >= 1.5x events/sec on the canonical cell,
    # measured on the same machine that wrote both entries.
    assert after["events_per_s"] >= 1.5 * before["events_per_s"]
    # Same simulation, byte-for-byte: pure-overhead removal only.
    assert after["events"] == before["events"]
