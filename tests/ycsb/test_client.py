"""System tests for the YCSB client driver."""

import pytest

from repro.sim.distributions import RandomStream
from repro.ycsb.client import YcsbClient
from repro.ycsb.workload import (
    WORKLOAD_A,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
)

from tests.ramcloud.conftest import build_cluster


def run_ycsb(cluster, workload, client_index=0, until=300.0, **kwargs):
    table_id = cluster.create_table("usertable")
    cluster.preload(table_id, workload.num_records, workload.record_size)
    client = YcsbClient(cluster.sim, cluster.clients[client_index], table_id,
                        workload, RandomStream(9, "ycsb"), **kwargs)
    proc = cluster.sim.process(client.run(), name="ycsb")
    cluster.sim.run_process(proc, until=until)
    return client


class TestRunPhase:
    def test_executes_requested_op_count(self):
        cluster = build_cluster(num_servers=2, num_clients=1)
        wl = WORKLOAD_C.scaled(num_records=500, ops_per_client=200)
        client = run_ycsb(cluster, wl)
        assert client.stats.total_ops == 200
        assert len(client.stats.reads) == 200
        assert len(client.stats.updates) == 0

    def test_mixed_workload_roughly_balanced(self):
        cluster = build_cluster(num_servers=2, num_clients=1)
        wl = WORKLOAD_A.scaled(num_records=500, ops_per_client=400)
        client = run_ycsb(cluster, wl)
        reads, updates = len(client.stats.reads), len(client.stats.updates)
        assert reads + updates == 400
        assert 120 < reads < 280  # ~50/50 with sampling noise

    def test_throughput_positive(self):
        cluster = build_cluster(num_servers=2, num_clients=1)
        wl = WORKLOAD_C.scaled(num_records=500, ops_per_client=100)
        client = run_ycsb(cluster, wl)
        assert client.stats.throughput() > 1000

    def test_insert_workload_creates_new_records(self):
        cluster = build_cluster(num_servers=2, num_clients=1)
        wl = WORKLOAD_D.scaled(num_records=300, ops_per_client=300)
        client = run_ycsb(cluster, wl)
        assert len(client.stats.inserts) > 0
        total_records = sum(len(s.hashtable) for s in cluster.servers)
        assert total_records > 300

    def test_scan_workload_uses_multiread(self):
        cluster = build_cluster(num_servers=3, num_clients=1)
        wl = WORKLOAD_E.scaled(num_records=400, ops_per_client=100,
                               max_scan_length=20)
        client = run_ycsb(cluster, wl)
        assert len(client.stats.scans) > 0
        # Scans touched many records server-side: far more reads
        # completed than client scan ops issued.
        server_reads = sum(s.reads_completed for s in cluster.servers)
        assert server_reads > 3 * len(client.stats.scans)

    def test_scan_latency_grows_with_length(self):
        latencies = {}
        for max_len in (5, 50):
            cluster = build_cluster(num_servers=3, num_clients=1)
            wl = WORKLOAD_E.scaled(num_records=400, ops_per_client=80,
                                   max_scan_length=max_len)
            client = run_ycsb(cluster, wl)
            latencies[max_len] = client.stats.scans.mean()
        assert latencies[50] > latencies[5]

    def test_read_modify_write_counts_as_update(self):
        cluster = build_cluster(num_servers=2, num_clients=1)
        wl = WORKLOAD_F.scaled(num_records=300, ops_per_client=200)
        client = run_ycsb(cluster, wl)
        assert len(client.stats.updates) > 0
        assert client.stats.total_ops == 200


class TestThrottling:
    def test_throttle_caps_rate(self):
        """Fig. 13: client-side rate limiting."""
        cluster = build_cluster(num_servers=2, num_clients=1)
        wl = WORKLOAD_A.scaled(num_records=500, ops_per_client=100,
                               target_ops_per_second=200.0)
        client = run_ycsb(cluster, wl)
        assert client.stats.throughput() == pytest.approx(200.0, rel=0.1)

    def test_unthrottled_is_much_faster(self):
        cluster = build_cluster(num_servers=2, num_clients=1)
        wl = WORKLOAD_A.scaled(num_records=500, ops_per_client=100)
        client = run_ycsb(cluster, wl)
        assert client.stats.throughput() > 2000


class TestGiveUp:
    def test_client_gives_up_on_unserviceable_op(self):
        cluster = build_cluster(num_servers=3, num_clients=1)
        table_id = cluster.create_table("usertable")
        cluster.preload(table_id, 300, 128)
        wl = WORKLOAD_C.scaled(num_records=300, ops_per_client=1000)
        client = YcsbClient(cluster.sim, cluster.clients[0], table_id, wl,
                            RandomStream(9, "ycsb"), give_up_after=0.5)
        cluster.kill_server(0)  # no failure detection: data stays lost
        proc = cluster.sim.process(client.run(), name="ycsb")
        cluster.sim.run_process(proc, until=600.0)
        assert client.gave_up
        assert client.stats.total_ops < 1000
