"""Unit tests for workload specs and the standard core workloads."""

import pytest

from repro.ycsb.workload import (
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_F,
    WorkloadSpec,
)


class TestPresets:
    def test_workload_a_is_update_heavy(self):
        assert WORKLOAD_A.read_proportion == 0.5
        assert WORKLOAD_A.update_proportion == 0.5

    def test_workload_b_is_read_heavy(self):
        assert WORKLOAD_B.read_proportion == 0.95
        assert WORKLOAD_B.update_proportion == 0.05

    def test_workload_c_is_read_only(self):
        assert WORKLOAD_C.read_proportion == 1.0
        assert WORKLOAD_C.update_proportion == 0.0

    def test_paper_sizes(self):
        """§V: 100 K records of 1 KB, 100 K requests per client."""
        for wl in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C):
            assert wl.num_records == 100_000
            assert wl.record_size == 1024
            assert wl.ops_per_client == 100_000
            assert wl.request_distribution == "uniform"

    def test_workload_d_uses_latest_distribution(self):
        assert WORKLOAD_D.insert_proportion == 0.05
        assert WORKLOAD_D.request_distribution == "latest"

    def test_workload_f_read_modify_write(self):
        assert WORKLOAD_F.read_modify_write_proportion == 0.5


class TestValidation:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", read_proportion=0.5)

    def test_positive_sizes(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", read_proportion=1.0, num_records=0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", read_proportion=1.0, record_size=0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", read_proportion=1.0, ops_per_client=0)

    def test_negative_throttle_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", read_proportion=1.0,
                         target_ops_per_second=-1)


class TestDerivation:
    def test_scaled_overrides_sizes(self):
        scaled = WORKLOAD_A.scaled(num_records=100, ops_per_client=50)
        assert scaled.num_records == 100
        assert scaled.ops_per_client == 50
        assert scaled.read_proportion == 0.5  # unchanged
        # The original preset is untouched.
        assert WORKLOAD_A.num_records == 100_000

    def test_throttled(self):
        limited = WORKLOAD_A.throttled(200.0)
        assert limited.target_ops_per_second == 200.0
        assert WORKLOAD_A.target_ops_per_second == 0.0
