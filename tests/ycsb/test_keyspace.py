"""Unit tests for YCSB key choosers."""

import pytest

from repro.sim.distributions import RandomStream
from repro.ycsb.keyspace import (
    LatestKeyChooser,
    SequentialKeyChooser,
    UniformKeyChooser,
    ZipfianKeyChooser,
    format_key,
    make_key_chooser,
)


def stream():
    return RandomStream(42, "keys")


class TestUniform:
    def test_keys_in_range(self):
        chooser = UniformKeyChooser(100, stream())
        for _ in range(1000):
            key = chooser.next_key()
            assert key.startswith("user")
            assert 0 <= int(key[4:]) < 100

    def test_roughly_uniform(self):
        chooser = UniformKeyChooser(10, stream())
        counts = {}
        for _ in range(10000):
            counts[chooser.next_key()] = counts.get(chooser.next_key(), 0) + 1
        assert len(counts) == 10

    def test_needs_records(self):
        with pytest.raises(ValueError):
            UniformKeyChooser(0, stream())


class TestZipfian:
    def test_keys_in_range(self):
        chooser = ZipfianKeyChooser(1000, stream())
        for _ in range(2000):
            assert 0 <= int(chooser.next_key()[4:]) < 1000

    def test_skewed(self):
        chooser = ZipfianKeyChooser(1000, stream())
        counts = {}
        for _ in range(20000):
            key = chooser.next_key()
            counts[key] = counts.get(key, 0) + 1
        hottest = max(counts.values())
        assert hottest > 20000 / 1000 * 5  # much hotter than uniform


class TestLatest:
    def test_biased_toward_recent(self):
        chooser = LatestKeyChooser(1000, stream())
        indexes = [int(chooser.next_key()[4:]) for _ in range(5000)]
        assert sum(indexes) / len(indexes) > 700  # skews high (recent)

    def test_insert_extends_keyspace(self):
        chooser = LatestKeyChooser(10, stream())
        new_key = chooser.record_insert()
        assert new_key == "user10"
        assert chooser.num_records == 11


class TestSequential:
    def test_wraps_around(self):
        chooser = SequentialKeyChooser(3)
        keys = [chooser.next_key() for _ in range(5)]
        assert keys == ["user0", "user1", "user2", "user0", "user1"]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("uniform", UniformKeyChooser),
        ("zipfian", ZipfianKeyChooser),
        ("latest", LatestKeyChooser),
        ("sequential", SequentialKeyChooser),
    ])
    def test_factory_dispatch(self, name, cls):
        chooser = make_key_chooser(name, 10, stream())
        assert isinstance(chooser, cls)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            make_key_chooser("pareto", 10, stream())

    def test_format_key_matches_preload(self):
        from repro.cluster.deployment import default_key
        assert format_key(7) == default_key(7)
