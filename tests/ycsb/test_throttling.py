"""Tests for the client-side token-bucket pacing (Fig. 13's mechanism)."""

import pytest

from repro.sim.distributions import RandomStream
from repro.ycsb.client import YcsbClient
from repro.ycsb.workload import WORKLOAD_C

from tests.ramcloud.conftest import build_cluster


def run_throttled(rate, ops=100, stall_until=None):
    cluster = build_cluster(num_servers=2, num_clients=1)
    table_id = cluster.create_table("usertable")
    cluster.preload(table_id, 500, 256)
    wl = WORKLOAD_C.scaled(num_records=500, ops_per_client=ops,
                           target_ops_per_second=rate)
    client = YcsbClient(cluster.sim, cluster.clients[0], table_id, wl,
                        RandomStream(1, "t"))
    proc = cluster.sim.process(client.run())
    cluster.sim.run_process(proc, until=3600.0)
    return client


class TestThrottle:
    def test_rate_is_respected(self):
        client = run_throttled(rate=1000.0)
        assert client.stats.throughput() == pytest.approx(1000.0, rel=0.05)

    def test_slow_rate(self):
        client = run_throttled(rate=50.0, ops=20)
        assert client.stats.throughput() == pytest.approx(50.0, rel=0.1)

    def test_op_slots_are_deterministic(self):
        a = run_throttled(rate=500.0, ops=50)
        b = run_throttled(rate=500.0, ops=50)
        assert [t for t, _l in a.stats.reads.samples] == \
            [t for t, _l in b.stats.reads.samples]

    def test_latencies_exclude_pacing_delay(self):
        """Throttling must not inflate the recorded op latency — the
        paced wait happens before the op is 'issued'."""
        throttled = run_throttled(rate=200.0, ops=30)
        unthrottled = run_throttled(rate=0.0, ops=30)
        assert throttled.stats.reads.mean() == pytest.approx(
            unthrottled.stats.reads.mean(), rel=0.2)
