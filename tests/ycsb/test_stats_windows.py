"""Additional statistics tests: windowing and percentile edge cases."""

import pytest

from repro.ycsb.stats import LatencyRecorder


class TestWindowedMeans:
    def test_empty_recorder_gives_empty_windows(self):
        assert LatencyRecorder().windowed_means(1.0) == []

    def test_sparse_windows_skip_empty_buckets(self):
        rec = LatencyRecorder()
        rec.record(0.5, 1.0)
        rec.record(10.5, 3.0)
        windows = rec.windowed_means(1.0)
        assert windows == [(0.0, 1.0), (10.0, 3.0)]

    def test_window_larger_than_span(self):
        rec = LatencyRecorder()
        for t in range(5):
            rec.record(float(t), float(t))
        windows = rec.windowed_means(100.0)
        assert len(windows) == 1
        assert windows[0][1] == pytest.approx(2.0)


class TestPercentileEdges:
    def test_single_sample(self):
        rec = LatencyRecorder()
        rec.record(0.0, 5.0)
        assert rec.percentile(1) == 5.0
        assert rec.percentile(50) == 5.0
        assert rec.percentile(100) == 5.0

    def test_two_samples(self):
        rec = LatencyRecorder()
        rec.record(0.0, 1.0)
        rec.record(1.0, 9.0)
        assert rec.percentile(50) == 1.0
        assert rec.percentile(51) == 9.0

    def test_percentiles_monotone(self):
        rec = LatencyRecorder()
        for i in range(37):
            rec.record(float(i), float((i * 7) % 37))
        values = [rec.percentile(p) for p in (1, 25, 50, 75, 99, 100)]
        assert values == sorted(values)
