"""Unit tests for latency/throughput statistics."""

import pytest

from repro.ycsb.stats import LatencyRecorder, OperationStats


class TestLatencyRecorder:
    def test_mean(self):
        rec = LatencyRecorder()
        for i, lat in enumerate([1.0, 2.0, 3.0]):
            rec.record(float(i), lat)
        assert rec.mean() == pytest.approx(2.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(0.0, -1.0)

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean()

    def test_percentiles(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record(float(i), float(i + 1))
        assert rec.percentile(50) == 50.0
        assert rec.percentile(99) == 99.0
        assert rec.percentile(100) == 100.0

    def test_percentile_bounds(self):
        rec = LatencyRecorder()
        rec.record(0.0, 1.0)
        with pytest.raises(ValueError):
            rec.percentile(0)
        with pytest.raises(ValueError):
            rec.percentile(101)

    def test_windowed_means(self):
        rec = LatencyRecorder()
        rec.record(0.1, 10.0)
        rec.record(0.9, 20.0)
        rec.record(1.5, 30.0)
        windows = rec.windowed_means(1.0)
        assert windows == [(0.0, 15.0), (1.0, 30.0)]

    def test_windowed_means_invalid_window(self):
        with pytest.raises(ValueError):
            LatencyRecorder().windowed_means(0.0)


class TestOperationStats:
    def test_totals_and_throughput(self):
        stats = OperationStats()
        stats.started_at = 0.0
        for i in range(10):
            stats.reads.record(float(i) / 10, 0.001)
        for i in range(5):
            stats.updates.record(float(i) / 10, 0.002)
        stats.finished_at = 3.0
        assert stats.total_ops == 15
        assert stats.throughput() == pytest.approx(5.0)

    def test_runtime_requires_completion(self):
        stats = OperationStats()
        with pytest.raises(ValueError):
            _ = stats.runtime

    def test_all_latencies_merges_sorted(self):
        stats = OperationStats()
        stats.reads.record(2.0, 0.1)
        stats.updates.record(1.0, 0.2)
        stats.inserts.record(3.0, 0.3)
        merged = stats.all_latencies()
        assert [t for t, _l in merged.samples] == [1.0, 2.0, 3.0]
        assert len(merged) == 3
