"""Satellite 2: cross-process seed isolation.

A worker that mutates global state — flipping ``REPRO_SIM_DEBUG``,
planting env knobs a sibling reads, reseeding the global ``random``
module, writing module globals — must not leak into sibling cells
scheduled onto the same worker process, and digests must be
order-independent under shuffled cell scheduling.

The ``_selftest`` experiment makes leaks *digest-visible*: its workload
length reads ``REPRO_SWEEP_SELFTEST_BUMP`` from the environment, so an
undefended env leak changes a sibling's op count and therefore its
digest; ``require_debug`` cells additionally fail outright if the
pinned sanitizer mode arrives clobbered.
"""

import os

import pytest

from repro.experiments.scale import SMOKE
from repro.experiments.sweep import (
    SweepPlan,
    SweepPoint,
    _execute_cell,
    run_sweep,
)

pytestmark = pytest.mark.sweep

TINY = SMOKE.with_(num_records=500, ops_per_client=60)

# A leaky cell followed (in plan order) by clean cells that would see
# the pollution if it survived the cell boundary.  debug=False on
# purpose: these tests prove the env snapshot/restore CONTAINS a leak;
# under debug=True the cell-state sanitizer would fail the leaky cell
# outright instead (that detection path is tests/sweep/
# test_cell_state.py).
POINTS = (
    SweepPoint.of("leaky", servers=2, clients=1, leak=True),
    SweepPoint.of("clean", servers=2, clients=1, require_debug="0"),
    SweepPoint.of("clean2", servers=2, clients=1),
)
PLAN = SweepPlan("_selftest", POINTS, (1, 2), TINY, debug=False)


def test_env_leak_would_be_digest_visible():
    # Guard the guard: if REPRO_SWEEP_SELFTEST_BUMP actually reached a
    # sibling, its digest would change.  Otherwise the isolation
    # assertions below would pass vacuously.
    clean = _execute_cell("_selftest", {"servers": 2, "clients": 1}, 1,
                          TINY, True, 1)
    os.environ["REPRO_SWEEP_SELFTEST_BUMP"] = "50"
    try:
        polluted = _execute_cell("_selftest", {"servers": 2, "clients": 1},
                                 1, TINY, True, 1)
    finally:
        del os.environ["REPRO_SWEEP_SELFTEST_BUMP"]
    assert clean.digest != polluted.digest


def test_leaky_cell_cannot_pollute_siblings_on_the_same_worker():
    # workers=1 forces every cell through the SAME worker process, the
    # leaky one first — the strictest succession for a leak to survive.
    before = dict(os.environ)
    report = run_sweep(PLAN, workers=1)
    assert not report.failed()          # require_debug cells passed
    assert dict(os.environ) == before   # nothing leaked into the parent
    # The clean cells carry identical params, so their digests must be
    # equal per seed and unaffected by running after the leaky one.
    digests = report.digests()
    for seed in PLAN.seeds:
        assert digests[("clean", seed)] == digests[("clean2", seed)]


def test_digests_are_schedule_independent():
    cells = len(PLAN.cells())
    forward = run_sweep(PLAN, workers=1)
    shuffled = run_sweep(PLAN, workers=1,
                         schedule=list(reversed(range(cells))))
    assert not forward.failed() and not shuffled.failed()
    assert forward.digests() == shuffled.digests()
    assert forward.merged_digest() == shuffled.merged_digest()


def test_serial_path_contains_the_leak_too():
    # The serial reference path runs leaky cells in THIS process; the
    # _execute_cell snapshot/restore must still contain the pollution
    # and produce the same digests the workers did.
    before = dict(os.environ)
    serial = run_sweep(PLAN, parallel=False)
    assert dict(os.environ) == before
    parallel = run_sweep(PLAN, workers=1)
    assert serial.digests() == parallel.digests()
