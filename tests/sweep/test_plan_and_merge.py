"""Fast sweep-runner unit tests: plans, merging, reports — no
subprocesses (the multi-process properties live in the ``-m sweep``
files next door)."""

import json

import pytest

from repro.cluster.experiment import Aggregate
from repro.experiments.scale import SMOKE
from repro.experiments.sweep import (
    CellOutcome,
    CellResult,
    SweepCell,
    SweepPlan,
    SweepPoint,
    SweepReport,
    cell_registry,
    list_experiments,
    plan_for,
    run_sweep,
)


def test_sweep_point_canonical_param_order():
    a = SweepPoint.of("p", servers=2, clients=3)
    b = SweepPoint.of("p", clients=3, servers=2)
    assert a == b
    assert a.as_dict() == {"servers": 2, "clients": 3}


def test_plan_cells_are_points_times_seeds_in_plan_order():
    points = (SweepPoint.of("a"), SweepPoint.of("b"))
    plan = SweepPlan("_selftest", points, (1, 2), SMOKE)
    keys = [cell.key for cell in plan.cells()]
    assert keys == [("_selftest", "a", 1), ("_selftest", "a", 2),
                    ("_selftest", "b", 1), ("_selftest", "b", 2)]


def test_registry_lists_every_experiment_and_hides_selftest():
    names = list_experiments()
    assert {"fig1", "fig4", "fig5", "fig11", "energy"} <= set(names)
    assert not any(name.startswith("_") for name in names)
    # ...but the cell registry still resolves the hidden test runner.
    assert "_selftest" in cell_registry()
    for name in names:
        assert name in cell_registry()


def test_plan_for_unknown_experiment_raises():
    with pytest.raises(ValueError, match="unknown sweep experiment"):
        plan_for("nope", SMOKE)


def test_plan_factories_default_to_scale_seeds():
    assert plan_for("fig4", SMOKE).seeds == SMOKE.seeds
    assert plan_for("fig4", SMOKE, seeds=(5, 6)).seeds == (5, 6)
    # fig11 pins the serial runner's seed so a merged sweep renders the
    # exact table run_fig11_recovery_rf produces today.
    assert plan_for("fig11", SMOKE).seeds == (3,)


def test_plan_labels_match_grid_runner_labels():
    plan = plan_for("fig1", SMOKE, server_counts=(1, 5), client_counts=(10,))
    assert [p.label for p in plan.points] == [
        "1 servers / 10 clients", "5 servers / 10 clients"]
    plan = plan_for("fig4", SMOKE, client_counts=(30,),
                    workload_names=("A",))
    assert [p.label for p in plan.points] == ["workload A / 30 clients"]
    plan = plan_for("fig5", SMOKE, client_counts=(10,), rfs=(1, 2))
    assert [p.label for p in plan.points] == [
        "10 clients / RF 1", "10 clients / RF 2"]
    plan = plan_for("fig11", SMOKE, rfs=(1, 2))
    assert [p.label for p in plan.points] == ["RF 1", "RF 2"]


def test_run_sweep_validates_inputs():
    plan = SweepPlan("_selftest", (SweepPoint.of("a"),), (1,), SMOKE)
    with pytest.raises(ValueError, match="permutation"):
        run_sweep(plan, schedule=[1])
    with pytest.raises(ValueError, match="retries"):
        run_sweep(plan, retries=-1)
    with pytest.raises(ValueError, match="no cells"):
        run_sweep(SweepPlan("_selftest", (), (1,), SMOKE))


def _report(rows):
    """Build a SweepReport from (label, seed, metrics-or-None) rows."""
    labels = []
    for label, _seed, _metrics in rows:
        if label not in labels:
            labels.append(label)
    points = tuple(SweepPoint.of(label) for label in labels)
    seeds = tuple(sorted({seed for _l, seed, _m in rows}))
    plan = SweepPlan("_selftest", points, seeds, SMOKE)
    results = []
    for label, seed, metrics in rows:
        cell = SweepCell("_selftest", SweepPoint.of(label), seed)
        if metrics is None:
            results.append(CellResult(cell, None, attempts=2, error="boom"))
        else:
            results.append(CellResult(cell, CellOutcome(
                metrics=metrics, digest=f"d-{label}-{seed}")))
    return SweepReport(plan, results, parallel=True, workers=2)


def test_aggregates_match_aggregate_of_in_seed_order():
    report = _report([("a", 1, {"throughput": 10.0}),
                      ("a", 2, {"throughput": 30.0})])
    agg = report.aggregates()["a"]["throughput"]
    assert agg == Aggregate.of([10.0, 30.0])
    assert agg.values == (10.0, 30.0)


def test_aggregates_intersect_metric_keys_and_skip_failures():
    report = _report([
        ("a", 1, {"throughput": 1.0, "recovery_time": 5.0}),
        ("a", 2, {"throughput": 2.0}),          # no recovery_time
        ("b", 1, None), ("b", 2, None),          # every seed failed
    ])
    merged = report.aggregates()
    assert set(merged["a"]) == {"throughput"}
    assert "b" not in merged
    assert [r.cell.point.label for r in report.failed()] == ["b", "b"]


def test_checked_aggregates_refuses_a_partial_sweep():
    # The figure runners render through checked_aggregates(): a table
    # silently missing a failed point would be worse than an error.
    clean = _report([("a", 1, {"m": 1.0})])
    assert clean.checked_aggregates() == clean.aggregates()
    partial = _report([("a", 1, {"m": 1.0}), ("b", 1, None)])
    with pytest.raises(RuntimeError, match="failed cell"):
        partial.checked_aggregates()


def test_merged_digest_is_order_independent_and_failure_sensitive():
    rows = [("a", 1, {"m": 1.0}), ("a", 2, {"m": 2.0}),
            ("b", 1, {"m": 3.0}), ("b", 2, {"m": 4.0})]
    forward = _report(rows)
    backward = _report(list(reversed(rows)))
    assert forward.merged_digest() == backward.merged_digest()
    failed = _report(rows[:3] + [("b", 2, None)])
    assert failed.merged_digest() != forward.merged_digest()


def test_report_to_json_is_serializable_and_complete():
    report = _report([("a", 1, {"m": 1.0}), ("a", 2, {"m": 2.0}),
                      ("b", 1, None), ("b", 2, None)])
    payload = json.loads(json.dumps(report.to_json()))
    assert payload["experiment"] == "_selftest"
    assert payload["seeds"] == [1, 2]
    assert len(payload["cells"]) == 4
    ok = [c for c in payload["cells"] if c["digest"] is not None]
    bad = [c for c in payload["cells"] if c["digest"] is None]
    assert len(ok) == 2 and len(bad) == 2
    assert bad[0]["error"] == "boom"
    assert payload["aggregates"]["a"]["m"]["values"] == [1.0, 2.0]
    assert payload["merged_digest"] == report.merged_digest()
