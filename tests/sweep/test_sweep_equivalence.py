"""Satellite 1 + the acceptance property: for every experiment module,
a serial and a parallel sweep of the same ``SweepPlan`` yield identical
determinism digests and bit-identical merged statistics.

Parallel workers are spawn-context processes (fresh interpreters), so
any hidden dependency on parent-process state — module-level RNG, env
mutation mid-suite, import order — would fork the digests here.
"""

import pytest

from repro.cluster import repeat_experiment
from repro.experiments.scale import SMOKE
from repro.experiments.sweep import plan_for, run_sweep
from repro.experiments.workloads import WORKLOADS, _spec

pytestmark = pytest.mark.sweep

TINY = SMOKE.with_(num_records=500, ops_per_client=60, seeds=(1, 2),
                   recovery_bytes_per_server=24 * 1024 * 1024,
                   crash_timeline_bytes_per_server=24 * 1024 * 1024)

# One reduced grid per experiment module: peak, workloads, replication,
# recovery, energy — 2 seeds each.
PLANS = {
    "fig1": lambda: plan_for("fig1", TINY, server_counts=(2,),
                             client_counts=(2,)),
    "fig4": lambda: plan_for("fig4", TINY, client_counts=(2,), servers=2,
                             workload_names=("A",)),
    "fig5": lambda: plan_for("fig5", TINY, client_counts=(2,), rfs=(1,),
                             servers=2),
    "fig11": lambda: plan_for("fig11", TINY, rfs=(1,), servers=4,
                              seeds=(1, 2)),
    "energy": lambda: plan_for("energy", TINY, seeds=(1, 2),
                               governors=("static", "poll-adaptive"),
                               servers=2, clients=2, fractions=(0.5,)),
    "frontier": lambda: plan_for("frontier", TINY, rfs=(1,), servers=3,
                                 clients=2),
    "fig_index": lambda: plan_for("fig_index", TINY, indexlet_counts=(2,),
                                  servers=2, clients=2),
    "tenant_mix": lambda: plan_for("tenant_mix", TINY, servers=2,
                                   clients=2),
}


def _snapshot(report):
    """Everything that must be bit-identical across execution modes."""
    return (
        report.digests(),
        report.merged_digest(),
        {label: {metric: (agg.mean, agg.stddev, agg.values)
                 for metric, agg in metrics.items()}
         for label, metrics in report.aggregates().items()},
    )


@pytest.mark.parametrize("experiment", sorted(PLANS))
def test_serial_and_parallel_sweeps_are_bit_identical(experiment):
    plan = PLANS[experiment]()
    serial = run_sweep(plan, parallel=False)
    parallel = run_sweep(plan, workers=2)
    assert not serial.failed() and not parallel.failed()
    assert _snapshot(serial) == _snapshot(parallel)


def test_fig4_acceptance_four_seeds_parallel_equals_serial():
    # The ISSUE acceptance criterion: a parallel fig4 sweep across >=4
    # seeds produces digests identical to the serial run, and the
    # in-process serial-equivalence check passes on top.
    plan = plan_for("fig4", TINY, seeds=(1, 2, 3, 4), client_counts=(2,),
                    servers=2, workload_names=("A",))
    serial = run_sweep(plan, parallel=False)
    parallel = run_sweep(plan, workers=2, serial_check=2)  # must not raise
    assert len(parallel.results) == 4
    assert not parallel.failed()
    assert _snapshot(serial) == _snapshot(parallel)
    assert len(parallel.serial_checked) == 2
    # Different seeds genuinely diverge — the equality above is not
    # comparing constants.
    digests = set(parallel.digests().values())
    assert len(digests) == 4


def test_serial_check_catches_environment_dependent_results():
    # A cell whose digest depends on the execution environment (here:
    # the worker's PID) is exactly the fork serial_check exists to
    # catch — the in-process rerun sees a different digest and raises.
    from repro.experiments.sweep import (
        SerialEquivalenceError,
        SweepPlan,
        SweepPoint,
    )
    plan = SweepPlan("_selftest", (
        SweepPoint.of("salted", servers=2, clients=1, pid_salt=True),),
        (1,), TINY)
    with pytest.raises(SerialEquivalenceError, match="diverged"):
        run_sweep(plan, workers=1, serial_check=1)


def test_merged_aggregates_equal_repeat_experiment():
    # The merge contract: a parallel sweep reproduces repeat_experiment's
    # Aggregate values float-for-float for the same cells and seed order.
    plan = plan_for("fig4", TINY, client_counts=(2,), servers=2,
                    workload_names=("A",))
    report = run_sweep(plan, workers=2)
    metrics, _results = repeat_experiment(
        _spec(WORKLOADS["A"], 2, 2, TINY), TINY.seeds)
    merged = report.aggregates()["workload A / 2 clients"]
    for key in ("throughput", "avg_power_per_server",
                "total_energy_joules", "energy_efficiency", "makespan"):
        assert merged[key] == metrics[key], key
