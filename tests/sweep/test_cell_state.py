"""The debug-mode cell-state sanitizer — the runtime half of DET001.

Under ``debug=True`` every sweep cell is bracketed by a fingerprint of
the registered module-state watches (:func:`repro.sim.sanitize.
watch_cell_state`); a cell that leaves any watched state behind fails
with :class:`CellStateError` instead of silently poisoning the sibling
cells its worker runs next.  The deliberately-leaky ``_selftest`` cell
is the proof that the detector detects; the clean cells prove it stays
quiet.
"""

import random

import pytest

from repro.experiments.scale import SMOKE
from repro.experiments.sweep import (
    SweepPlan,
    SweepPoint,
    _execute_cell,
    run_sweep,
)
from repro.sim import sanitize
from repro.sim.sanitize import (
    CellStateError,
    cell_state_fingerprint,
    check_cell_state,
    watch_cell_state,
)

pytestmark = pytest.mark.sweep

TINY = SMOKE.with_(num_records=500, ops_per_client=60)
PARAMS = {"servers": 2, "clients": 1}


@pytest.fixture(autouse=True)
def _restore_polluted_globals():
    """Leaky cells run in-process here; put their targets back."""
    state = random.getstate()
    leak = sanitize._CELL_WATCHES["repro.experiments.sweep._SELFTEST_LEAK"]
    before = leak()
    yield
    random.setstate(state)
    import repro.experiments.sweep as sweep_mod
    sweep_mod._SELFTEST_LEAK = before


def test_debug_cell_catches_the_selftest_leak():
    with pytest.raises(CellStateError) as excinfo:
        _execute_cell("_selftest", dict(PARAMS, leak=True), 1, TINY,
                      debug=True, attempt=1)
    message = str(excinfo.value)
    assert "_SELFTEST_LEAK" in message
    assert "random.getstate" in message


def test_clean_cell_passes_under_debug():
    outcome = _execute_cell("_selftest", dict(PARAMS), 1, TINY,
                            debug=True, attempt=1)
    assert outcome.digest


def test_debug_off_skips_the_check():
    # The containment tests (test_seed_isolation.py) depend on leaky
    # cells *succeeding* with debug=False — only the debug mode pays
    # for (and gets) detection.
    outcome = _execute_cell("_selftest", dict(PARAMS, leak=True), 1, TINY,
                            debug=False, attempt=1)
    assert outcome.digest


def test_runner_exception_is_not_masked_by_the_check():
    # The state check runs only after a successful cell: a failing
    # runner must surface its own error, not a CellStateError about
    # state it happened to touch first.
    with pytest.raises(RuntimeError, match="asked to fail"):
        _execute_cell("_selftest", dict(PARAMS, fail=True), 1, TINY,
                      debug=True, attempt=1)


def test_parallel_sweep_fails_only_the_leaky_cell():
    points = (
        SweepPoint.of("leaky", leak=True, **PARAMS),
        SweepPoint.of("clean", **PARAMS),
    )
    plan = SweepPlan("_selftest", points, (1,), TINY, debug=True)
    report = run_sweep(plan, workers=1, retries=0)
    failed = report.failed()
    assert [r.cell.point.label for r in failed] == ["leaky"]
    assert "CellStateError" in failed[0].error
    assert ("clean", 1) in report.digests()


def test_watch_primitives_report_the_diverged_label():
    box = {"value": 0}
    watch_cell_state("tests.cell_state.box", lambda: box["value"])
    try:
        before = cell_state_fingerprint()
        check_cell_state(before)  # no divergence yet
        box["value"] = 7
        with pytest.raises(CellStateError, match="tests.cell_state.box"):
            check_cell_state(before)
    finally:
        del sanitize._CELL_WATCHES["tests.cell_state.box"]


def test_added_or_removed_watches_count_as_divergence():
    before = cell_state_fingerprint()
    watch_cell_state("tests.cell_state.new", lambda: 1)
    try:
        with pytest.raises(CellStateError, match="tests.cell_state.new"):
            check_cell_state(before)
    finally:
        del sanitize._CELL_WATCHES["tests.cell_state.new"]
