"""Satellite 3: worker-crash handling.

A SIGKILL'd worker breaks the whole ``ProcessPoolExecutor`` — every
in-flight cell raises ``BrokenProcessPool`` and the true culprit is
indistinguishable from collateral.  The runner must retry once,
report the cell as failed after the retry, and still produce a
complete merged report for the surviving cells (quarantine: broken
cells re-run alone in fresh single-worker pools, so innocent cells
win their budget back immediately).
"""

import pytest

from repro.experiments.scale import SMOKE
from repro.experiments.sweep import SweepPlan, SweepPoint, run_sweep

pytestmark = pytest.mark.sweep

TINY = SMOKE.with_(num_records=500, ops_per_client=60)


def _plan(points, seeds=(1,)):
    return SweepPlan("_selftest", points, seeds, TINY)


def test_persistent_crasher_fails_after_one_retry_survivors_complete():
    plan = _plan((
        SweepPoint.of("crasher", servers=2, clients=1, crash_attempts=99),
        SweepPoint.of("ok-a", servers=2, clients=1),
        SweepPoint.of("ok-b", servers=2, clients=1),
    ))
    streamed = []
    report = run_sweep(plan, workers=2, retries=1,
                       on_cell=lambda r: streamed.append(r.cell.key))
    # The merged report is complete and in plan order, failures included.
    assert [r.cell.point.label for r in report.results] == [
        "crasher", "ok-a", "ok-b"]
    assert sorted(streamed) == sorted(c.key for c in plan.cells())

    crasher = report.results[0]
    assert not crasher.ok
    assert crasher.attempts == 2          # first try + exactly one retry
    assert "crashed" in crasher.error
    assert [r.cell.point.label for r in report.failed()] == ["crasher"]

    survivors = report.results[1:]
    assert all(r.ok for r in survivors)
    merged = report.aggregates()
    assert set(merged) == {"ok-a", "ok-b"}  # crasher absent, not NaN'd
    assert merged["ok-a"]["throughput"].values \
        == merged["ok-b"]["throughput"].values


def test_crash_once_then_recover_on_the_retry():
    # crash_attempts=1: the worker dies on attempt 1 and succeeds on
    # attempt 2 — the retry must rescue the cell.
    plan = _plan((
        SweepPoint.of("flaky", servers=2, clients=1, crash_attempts=1),
        SweepPoint.of("steady", servers=2, clients=1),
    ), seeds=(1, 2))
    report = run_sweep(plan, workers=2, retries=1)
    assert not report.failed()
    for result in report.results:
        if result.cell.point.label == "flaky":
            assert result.attempts == 2
    # Crash-and-retry must not perturb the measurement: the flaky and
    # steady points share params, so their digests match per seed.
    digests = report.digests()
    for seed in (1, 2):
        assert digests[("flaky", seed)] == digests[("steady", seed)]


def test_retries_zero_still_rescues_the_innocent_bystander():
    # A batch break charges every in-flight cell (the culprit is
    # unknowable), so with retries=0 both cells exhaust their budget —
    # but quarantine still grants each one solo run to assign blame:
    # the bystander gets its result, only the crasher fails.
    plan = _plan((
        SweepPoint.of("crasher", servers=2, clients=1, crash_attempts=99),
        SweepPoint.of("ok", servers=2, clients=1),
    ))
    report = run_sweep(plan, workers=2, retries=0)
    crasher, ok = report.results
    assert not crasher.ok and crasher.attempts <= 2
    assert ok.ok


def test_plain_exception_also_respects_the_retry_budget():
    # A cell that raises (rather than killing its worker) consumes the
    # same budget but never breaks the pool for its siblings.
    plan = _plan((
        SweepPoint.of("failer", servers=2, clients=1, fail=True),
        SweepPoint.of("ok", servers=2, clients=1),
    ))
    report = run_sweep(plan, workers=2, retries=1)
    failer, ok = report.results
    assert not failer.ok
    assert failer.attempts == 2
    assert "selftest cell asked to fail" in failer.error
    assert ok.ok and ok.attempts == 1
