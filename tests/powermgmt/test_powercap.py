"""Unit tests for the admission throttle and power-cap controller."""

import math

import pytest

from repro.cluster import AdmissionThrottle, Cluster, ClusterSpec
from repro.cluster.powercap import PowerCapController
from repro.hardware.specs import MB
from repro.powermgmt import PowerPolicy
from repro.ramcloud.config import ServerConfig
from repro.sim.kernel import Simulator


class TestAdmissionThrottle:
    def test_disengaged_reserve_is_free(self):
        throttle = AdmissionThrottle(Simulator())
        assert math.isinf(throttle.rate)
        assert throttle.reserve() == 0.0
        assert throttle.reserve() == 0.0  # no slot state accumulates

    def test_rate_spaces_slots_evenly(self):
        throttle = AdmissionThrottle(Simulator())
        throttle.set_rate(100.0)
        # All claimed at t=0: the first slot is now, then 10 ms apart.
        delays = [throttle.reserve() for _ in range(3)]
        assert delays == pytest.approx([0.0, 0.01, 0.02])

    def test_slots_do_not_bank_idle_time(self):
        sim = Simulator()
        throttle = AdmissionThrottle(sim)
        throttle.set_rate(10.0)

        def scenario():
            throttle.reserve()
            yield sim.timeout(5.0)  # long idle gap
            return throttle.reserve()

        # After the gap the next slot is "now", not a burst of banked
        # slots — token-bucket depth is one.
        assert sim.run_process(sim.process(scenario())) == 0.0

    def test_rate_must_be_positive(self):
        throttle = AdmissionThrottle(Simulator())
        with pytest.raises(ValueError, match="positive"):
            throttle.set_rate(0.0)


def build_capped_cluster(cap_watts, num_servers=2, cap_interval=0.05):
    config = ServerConfig(log_memory_bytes=16 * MB, segment_size=1 * MB,
                          replication_factor=0)
    policy = PowerPolicy(power_cap_watts=cap_watts,
                         cap_interval=cap_interval)
    return Cluster(ClusterSpec(num_servers=num_servers, num_clients=0,
                               server_config=config, seed=1,
                               power_policy=policy))


class TestPowerCapController:
    def test_requires_a_cap(self):
        cluster = build_capped_cluster(200.0)
        with pytest.raises(ValueError, match="cap"):
            PowerCapController(cluster.sim, cluster.server_nodes,
                               cluster.servers, cluster.admission_throttle,
                               PowerPolicy())

    def test_unreachable_cap_throttles_to_the_floor(self):
        # Two idle servers draw ~149.5 W from busy-polling alone; a
        # 100 W cap can never be met, so the controller must bottom out
        # at the forward-progress floor instead of throttling to zero.
        cluster = build_capped_cluster(100.0)
        cluster.run(until=1.0)
        floor = PowerCapController.MIN_RATE_PER_SERVER * 2
        assert cluster.admission_throttle.rate == pytest.approx(floor)
        assert len(cluster.power_cap.watts_series) > 0
        assert min(v for _, v in cluster.power_cap.watts_series.items()) > 100.0
        cluster.shutdown()

    def test_generous_cap_stays_disengaged(self):
        # Idle draw is far below the cap: the throttle never engages.
        cluster = build_capped_cluster(400.0)
        cluster.run(until=1.0)
        assert math.isinf(cluster.admission_throttle.rate)
        cluster.shutdown()

    def test_set_power_cap_none_lifts_the_cap(self):
        cluster = build_capped_cluster(100.0)
        cluster.run(until=0.5)
        assert not math.isinf(cluster.admission_throttle.rate)
        cluster.set_power_cap(None)
        assert cluster.power_cap is None
        assert math.isinf(cluster.admission_throttle.rate)
        cluster.run(until=1.0)  # lifted controller stays gone
        assert cluster.power_cap is None
        cluster.shutdown()

    def test_set_power_cap_on_default_cluster_creates_controller(self):
        config = ServerConfig(log_memory_bytes=16 * MB, segment_size=1 * MB,
                              replication_factor=0)
        cluster = Cluster(ClusterSpec(num_servers=2, num_clients=0,
                                      server_config=config, seed=1))
        assert cluster.power_cap is None
        cluster.set_power_cap(100.0)
        assert cluster.power_cap is not None
        cluster.run(until=1.0)
        floor = PowerCapController.MIN_RATE_PER_SERVER * 2
        assert cluster.admission_throttle.rate == pytest.approx(floor)
        cluster.shutdown()
