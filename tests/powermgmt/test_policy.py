"""Unit tests for PowerPolicy validation and defaults."""

import pytest

from repro.powermgmt import GOVERNORS, PowerPolicy


class TestValidation:
    def test_defaults_are_the_paper_machine(self):
        policy = PowerPolicy()
        assert policy.governor == "static"
        assert policy.power_cap_watts is None
        assert policy.is_default

    def test_unknown_governor_rejected(self):
        with pytest.raises(ValueError, match="governor"):
            PowerPolicy(governor="turbo")

    def test_all_declared_governors_accepted(self):
        for name in GOVERNORS:
            assert PowerPolicy(governor=name).governor == name

    @pytest.mark.parametrize("field", ["sample_interval", "cap_interval"])
    def test_intervals_must_be_positive(self, field):
        with pytest.raises(ValueError, match="positive"):
            PowerPolicy(**{field: 0.0})

    @pytest.mark.parametrize("down,up", [
        (-1.0, 70.0),   # below range
        (70.0, 70.0),   # not strictly ordered
        (80.0, 70.0),   # inverted
        (30.0, 101.0),  # above range
    ])
    def test_threshold_ordering_enforced(self, down, up):
        with pytest.raises(ValueError, match="thresholds"):
            PowerPolicy(down_threshold=down, up_threshold=up)

    def test_power_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="cap"):
            PowerPolicy(power_cap_watts=0.0)

    def test_hysteresis_cannot_be_negative(self):
        with pytest.raises(ValueError, match="hysteresis"):
            PowerPolicy(cap_hysteresis_watts=-1.0)


class TestIsDefault:
    def test_nonstatic_governor_is_not_default(self):
        assert not PowerPolicy(governor="ondemand").is_default
        assert not PowerPolicy(governor="poll-adaptive").is_default

    def test_cap_alone_is_not_default(self):
        assert not PowerPolicy(power_cap_watts=200.0).is_default

    def test_tuning_knobs_do_not_break_default(self):
        # Threshold tweaks without an active governor or cap still need
        # no controller machinery.
        assert PowerPolicy(sample_interval=0.5, up_threshold=90.0).is_default


class TestWith:
    def test_with_replaces_and_preserves(self):
        base = PowerPolicy(up_threshold=80.0)
        derived = base.with_(governor="ondemand")
        assert derived.governor == "ondemand"
        assert derived.up_threshold == 80.0
        assert base.governor == "static"  # frozen original untouched

    def test_with_revalidates(self):
        with pytest.raises(ValueError):
            PowerPolicy().with_(governor="nope")
