"""Tests for the adaptive power-management subsystem (docs/POWER.md)."""
