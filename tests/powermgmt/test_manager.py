"""Unit tests for the per-node PowerManager governors."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.hardware.node import Node
from repro.hardware.specs import GRID5000_NANCY_NODE, MB
from repro.powermgmt import PowerManager, PowerPolicy
from repro.ramcloud.config import ServerConfig
from repro.sim.distributions import RandomStream
from repro.sim.kernel import Simulator


class StubServer:
    """Just enough server for a PowerManager: the power-mode knob."""

    def __init__(self):
        self.dispatch_mode = "poll"
        self.core_parking = False

    def set_power_mode(self, dispatch_mode=None, core_parking=None):
        if dispatch_mode is not None:
            self.dispatch_mode = dispatch_mode
        if core_parking is not None:
            self.core_parking = core_parking


def make_manager(governor="static", **policy_overrides):
    sim = Simulator()
    node = Node(sim, GRID5000_NANCY_NODE, "node0")
    server = StubServer()
    policy = PowerPolicy(governor=governor, **policy_overrides)
    manager = PowerManager(sim, node, server, policy,
                           RandomStream(1, "powermgmt-test"))
    return sim, node, server, manager


class TestStatic:
    def test_static_creates_no_process_and_touches_nothing(self):
        sim, node, server, manager = make_manager("static")
        sim.run(until=1.0)
        assert node.cpu.frequency_ratio == 1.0
        assert server.dispatch_mode == "poll"
        assert not server.core_parking
        assert len(manager.freq_series) == 0


class TestOndemand:
    def test_idle_node_walks_down_to_lowest_step(self):
        sim, node, _server, _manager = make_manager("ondemand")
        # An idle node (0 % utilization, below down_threshold) steps
        # down one P-state per 0.1 s sample: nominal -> floor by t=1.
        sim.run(until=1.0)
        assert node.cpu.frequency_ratio == pytest.approx(
            node.spec.cpu.freq_steps[0])

    def test_load_races_to_top_step(self):
        sim, node, _server, manager = make_manager("ondemand")
        cpu = node.cpu
        sim.run(until=0.6)  # settle at the floor first
        assert cpu.frequency_ratio < 1.0

        def burn():
            # Saturate all cores well past the next samples.  At the
            # floor ratio the wall time stretches, which is fine — the
            # governor reads utilization, not progress.
            yield from cpu.execute(1.0)

        for _ in range(cpu.cores):
            sim.process(burn())
        sim.run(until=0.9)
        # 100 % > up_threshold: one sample jumps straight to nominal
        # (race-to-idle), not one step at a time.
        assert cpu.frequency_ratio == 1.0
        ratios = [v for _, v in manager.freq_series.items()]
        assert ratios[-1] == 1.0
        assert 1.0 not in ratios[:-1]  # got there in a single jump

    def test_stop_halts_the_sampler(self):
        sim, node, _server, manager = make_manager("ondemand")
        sim.run(until=0.35)
        ratio = node.cpu.frequency_ratio
        manager.stop()
        sim.run(until=2.0)
        # No further decisions after stop (hardware left as-is).
        assert node.cpu.frequency_ratio == ratio


class TestPollAdaptive:
    def test_flips_server_power_mode(self):
        _sim, node, server, _manager = make_manager("poll-adaptive")
        assert server.dispatch_mode == "adaptive"
        assert server.core_parking
        assert node.cpu.frequency_ratio == 1.0  # DVFS untouched

    def test_policy_can_disable_parking(self):
        _sim, _node, server, _manager = make_manager("poll-adaptive",
                                                     core_parking=False)
        assert server.dispatch_mode == "adaptive"
        assert not server.core_parking


class TestGovernorSwitching:
    def test_switch_to_static_restores_defaults(self):
        sim, node, server, manager = make_manager("ondemand")
        sim.run(until=0.6)
        assert node.cpu.frequency_ratio < 1.0
        manager.set_governor("poll-adaptive")
        assert node.cpu.frequency_ratio == 1.0  # teardown reset DVFS
        assert server.dispatch_mode == "adaptive"
        manager.set_governor("static")
        assert server.dispatch_mode == "poll"
        assert not server.core_parking

    def test_switch_is_noop_when_already_active(self):
        sim, _node, server, manager = make_manager("poll-adaptive")
        server.dispatch_mode = "sentinel"  # would be clobbered by a re-apply
        manager.set_governor("poll-adaptive")
        assert server.dispatch_mode == "sentinel"

    def test_unknown_governor_rejected(self):
        _sim, _node, _server, manager = make_manager()
        with pytest.raises(ValueError, match="governor"):
            manager.set_governor("performance")


def build_cluster(num_servers=1, **spec_overrides):
    config = ServerConfig(log_memory_bytes=16 * MB, segment_size=1 * MB,
                          replication_factor=0)
    return Cluster(ClusterSpec(num_servers=num_servers, num_clients=0,
                               server_config=config, seed=1,
                               **spec_overrides))


class TestClusterWiring:
    def test_default_policy_builds_no_machinery(self):
        cluster = build_cluster()
        assert cluster.power_managers == []
        assert cluster.admission_throttle is None
        assert cluster.power_cap is None

    def test_ondemand_cluster_downclocks_idle_servers(self):
        cluster = build_cluster(
            num_servers=2, power_policy=PowerPolicy(governor="ondemand"))
        assert len(cluster.power_managers) == 2
        # The dispatch core busy-polls at 25 % on 4 cores — below the
        # 30 % down_threshold, so every node walks to the floor.
        cluster.run(until=1.0)
        for node in cluster.server_nodes:
            assert node.cpu.frequency_ratio == pytest.approx(
                node.spec.cpu.freq_steps[0])
        cluster.shutdown()

    def test_set_governor_lazily_creates_managers(self):
        cluster = build_cluster(num_servers=2)
        assert cluster.power_managers == []
        cluster.set_governor("poll-adaptive")
        assert len(cluster.power_managers) == 2
        assert all(s.dispatch_mode == "adaptive" for s in cluster.servers)

    def test_set_governor_single_index(self):
        cluster = build_cluster(num_servers=2)
        cluster.set_governor("poll-adaptive", index=1)
        assert cluster.servers[0].dispatch_mode == "poll"
        assert cluster.servers[1].dispatch_mode == "adaptive"
