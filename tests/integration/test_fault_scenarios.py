"""End-state invariants after canned fault schedules.

Each scenario arms a :class:`~repro.faults.schedule.FaultSchedule`,
lets it play out, then checks what must hold afterwards: recoveries
complete, no acknowledged write is lost, reads see writes again once a
partition heals, and — via :func:`drain_and_check` — the simulation
schedule drains to empty with zero sanitizer findings (the suite runs
with ``REPRO_SIM_DEBUG=1``, so a leaked event, a frozen process or a
lock held at death would surface here).

Marked ``faults``: these runs are heavier than unit tests and get
their own CI job (``pytest -m faults``).
"""

import hashlib
import warnings

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    CrashExperimentSpec,
    run_crash_experiment,
)
from repro.faults import (
    CrashServer,
    DegradeDisk,
    FaultEntry,
    FaultSchedule,
    HealAll,
    PartitionGroups,
)
from repro.hardware.specs import MB
from repro.ramcloud.config import ServerConfig
from repro.sim.sanitize import SanitizerWarning

pytestmark = pytest.mark.faults


def build_cluster(num_servers=3, num_clients=1, replication_factor=0,
                  seed=1, failure_detection=False, **config_overrides):
    config = ServerConfig(log_memory_bytes=16 * MB, segment_size=1 * MB,
                          replication_factor=replication_factor,
                          **config_overrides)
    return Cluster(ClusterSpec(num_servers=num_servers,
                               num_clients=num_clients,
                               server_config=config, seed=seed,
                               failure_detection=failure_detection))


def run_script(cluster, gen, until=120.0):
    proc = cluster.sim.process(gen, name="test-script")
    return cluster.sim.run_process(proc, until=until)


def run_until_recovered(cluster, expected=1, cap=120.0):
    """Advance until ``expected`` recoveries have completed (or fail)."""
    while cluster.sim.now < cap:
        cluster.run(until=cluster.sim.now + 2.0)
        recoveries = cluster.coordinator.recoveries
        if (len(recoveries) >= expected
                and all(r.finished_at is not None for r in recoveries)):
            return recoveries
    raise AssertionError(
        f"recoveries did not complete by t={cap}: "
        f"{[(r.crashed_id, r.finished_at) for r in cluster.coordinator.recoveries]}")


def drain_and_check(cluster):
    """Shut everything down and drain the schedule to empty.

    With ``REPRO_SIM_DEBUG=1`` the kernel checks for leaked events at
    drain time; escalating :class:`SanitizerWarning` to an error makes
    any leak (or lock-held-at-death emitted during the final kills)
    fail the test.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("error", SanitizerWarning)
        cluster.shutdown()
        cluster.sim.run()


class TestPartitionHeal:
    def test_read_your_writes_after_heal(self):
        cluster = build_cluster()
        table_id = cluster.create_table("t")
        client = cluster.clients[0]
        cluster.inject_faults(FaultSchedule((
            FaultEntry(at=1.0, action=PartitionGroups(
                ("client0",), (0, 1, 2))),
            FaultEntry(at=4.0, action=HealAll()),
        )))

        def script():
            version = yield from client.write(table_id, "k", 64,
                                              value=b"before-partition")
            yield cluster.sim.timeout(2.0)  # now inside the partition
            value, read_version, _size = yield from client.read(table_id,
                                                                "k")
            return version, value, read_version

        version, value, read_version = run_script(cluster, script())
        # The read issued mid-partition blocked (retry loop) until the
        # heal, then returned the acknowledged write.
        assert cluster.sim.now >= 4.0
        assert value == b"before-partition"
        assert read_version == version
        drain_and_check(cluster)

    def test_partition_alone_triggers_no_recovery(self):
        # The coordinator verifies a suspect is actually dead before
        # recovering it: a partitioned-but-alive server must keep its
        # tablets (recovering a live master would fork the data).
        cluster = build_cluster(failure_detection=True)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 30, 128)
        cluster.inject_faults(FaultSchedule((
            FaultEntry(at=0.5, action=PartitionGroups(
                ("coord",), ("server0",))),
            FaultEntry(at=4.0, action=HealAll()),
        )))
        cluster.run(until=8.0)
        assert cluster.coordinator.recoveries == []
        assert cluster.coordinator.is_live("server0")
        # The server still answers once the partition heals.
        client = cluster.clients[0]
        run_script(cluster, client.refresh_map())
        value, _version, size = run_script(cluster,
                                           client.read(table_id, "user0"))
        assert size == 128
        drain_and_check(cluster)


class TestCrashRecovery:
    def test_no_acknowledged_write_is_lost(self):
        cluster = build_cluster(num_servers=4, replication_factor=2,
                                failure_detection=True)
        table_id = cluster.create_table("t")
        client = cluster.clients[0]

        def write_all():
            versions = {}
            for i in range(60):
                versions[f"user{i}"] = yield from client.write(
                    table_id, f"user{i}", 64, value=f"v{i}".encode())
            return versions

        versions = run_script(cluster, write_all())
        cluster.inject_faults(FaultSchedule.single_crash(0.5, index=0))
        recoveries = run_until_recovered(cluster)
        assert recoveries[0].crashed_id == "server0"
        assert not recoveries[0].data_was_lost

        def read_all():
            seen = {}
            for i in range(60):
                value, version, _size = yield from client.read(
                    table_id, f"user{i}")
                seen[f"user{i}"] = (value, version)
            return seen

        seen = run_script(cluster, read_all())
        for i in range(60):
            key = f"user{i}"
            assert seen[key] == (f"v{i}".encode(), versions[key]), key
        drain_and_check(cluster)


def scenario_digest(cluster, injector) -> str:
    """A byte-exact digest of everything the scenario left behind."""
    h = hashlib.sha256()

    def feed(label, value):
        h.update(f"{label}={value!r}\n".encode())

    for t, description in injector.applied:
        feed("fault", (t, description))
    for i, stats in enumerate(cluster.coordinator.recoveries):
        feed(f"recovery[{i}]", (stats.crashed_id, stats.detected_at,
                                stats.started_at, stats.finished_at,
                                stats.partitions, stats.segments,
                                stats.bytes_to_recover,
                                stats.lost_segments,
                                tuple(stats.recovery_masters)))
    for server in cluster.servers:
        feed(f"server[{server.server_id}]",
             (server.killed, server.ops_completed, len(server.hashtable)))
    feed("net", (cluster.fabric.messages_delivered,
                 cluster.fabric.bytes_delivered))
    feed("now", cluster.sim.now)
    return h.hexdigest()


class TestAcceptanceScenario:
    """ISSUE 2's acceptance bar: a schedule combining a partition with
    a backup crash mid-recovery runs to a consistent end state and its
    rerun digest is byte-identical."""

    SCHEDULE = FaultSchedule((
        FaultEntry(at=0.5, action=PartitionGroups(("coord",),
                                                  ("server5",))),
        FaultEntry(at=1.0, action=CrashServer(index=0)),
        # 0.2 s into the first recovery, kill another (random) server —
        # some of the crashed master's backups are now gone too.
        FaultEntry(at=0.2, action=CrashServer(), anchor="recovery"),
        FaultEntry(at=1.0, action=HealAll(), anchor="recovery"),
    ))

    def _run(self, seed=11):
        cluster = build_cluster(num_servers=6, replication_factor=3,
                                failure_detection=True, seed=seed)
        table_id = cluster.create_table("t")
        cluster.preload(table_id, 600, 512)
        injector = cluster.inject_faults(self.SCHEDULE)
        run_until_recovered(cluster, expected=2)
        return cluster, injector, table_id

    def test_consistent_end_state_and_identical_rerun_digest(self):
        cluster, injector, table_id = self._run()
        recoveries = cluster.coordinator.recoveries
        assert len(recoveries) == 2
        assert len(injector.killed_servers) == 2
        # RF 3 tolerates both crashes: every segment kept a replica.
        for stats in recoveries:
            assert stats.finished_at is not None
            assert stats.lost_segments == 0
        # Every preloaded record is indexed on exactly one live master.
        total = sum(len(s.hashtable) for s in cluster.servers
                    if not s.killed)
        assert total == 600
        for server in injector.killed_servers:
            assert not cluster.coordinator.is_live(server.server_id)

        first = scenario_digest(cluster, injector)
        drain_and_check(cluster)

        rerun_cluster, rerun_injector, _ = self._run()
        second = scenario_digest(rerun_cluster, rerun_injector)
        drain_and_check(rerun_cluster)
        assert first == second

    def test_different_seed_diverges(self):
        # Guard the digest itself: a digest blind to the interesting
        # state would make the rerun test pass vacuously.
        cluster_a, injector_a, _ = self._run(seed=11)
        a = scenario_digest(cluster_a, injector_a)
        drain_and_check(cluster_a)
        cluster_b, injector_b, _ = self._run(seed=12)
        b = scenario_digest(cluster_b, injector_b)
        drain_and_check(cluster_b)
        assert a != b


class TestDegradedDiskRecovery:
    def test_degraded_backup_disks_slow_recovery(self):
        def spec(faults=None):
            return CrashExperimentSpec(
                cluster=ClusterSpec(
                    num_servers=4, num_clients=0,
                    server_config=ServerConfig(log_memory_bytes=64 * MB,
                                               segment_size=1 * MB,
                                               replication_factor=1)),
                num_records=2000,
                record_size=1024,
                kill_at=2.0,
                run_until=120.0,
                sample_interval=0.25,
                victim_index=0,
                faults=faults,
            )

        baseline = run_crash_experiment(spec())
        degraded = run_crash_experiment(spec(FaultSchedule((
            # Clamp every surviving backup's disk well below nominal
            # before the crash: recovery must read replicas from them.
            FaultEntry(at=0.0, action=DegradeDisk(1, 10 * MB)),
            FaultEntry(at=0.0, action=DegradeDisk(2, 10 * MB)),
            FaultEntry(at=0.0, action=DegradeDisk(3, 10 * MB)),
            FaultEntry(at=2.0, action=CrashServer(index=0)),
        ))))
        assert baseline.recovery_time is not None
        assert degraded.recovery_time is not None
        assert degraded.recovery_time > 1.5 * baseline.recovery_time
        assert [d for _, d in degraded.fault_log][-1] == \
            "crash-server server0"
